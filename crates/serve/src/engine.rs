//! The bounded worker pool behind the service.
//!
//! The engine owns the admission path (parse → cache probe → bounded
//! queue), the worker threads that execute simulation requests under a
//! per-request deadline, the content-addressed result cache, and the
//! server-level counters the `stats` request reports.
//!
//! Determinism contract: the response **line** for a request is a pure
//! function of the request object. Cache hits replay the stored payload
//! bytes, misses recompute them through the same renderer, and the
//! `"id"` is re-attached at assembly time — so cold/warm and 1-thread/
//! N-thread runs produce byte-identical payloads. Only the *order* in
//! which concurrent responses complete (and therefore the trace
//! completion indices) is scheduling-dependent.

use crate::cache::ResultCache;
use crate::protocol::{
    canonical_key, desugar_spice, parse_request, request_id, response_line, Body, Request,
};
use crate::work::execute;
use lcosc_campaign::{digest_bytes, Json};
use lcosc_trace::{ServeKind, ServeStatus, Trace, TraceEvent};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing simulation requests.
    pub threads: usize,
    /// Bounded queue depth; a full queue rejects with `overloaded`.
    pub queue_depth: usize,
    /// Content-addressed cache capacity in entries (0 disables).
    pub cache_entries: usize,
    /// Per-request compute deadline.
    pub deadline: Duration,
    /// Maximum accepted request-line length in bytes; longer lines are
    /// answered with a typed `line_too_long` error without buffering the
    /// excess, and the connection stays alive.
    pub max_line_bytes: usize,
    /// Trace handle receiving per-request events.
    pub trace: Trace,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 2,
            queue_depth: 64,
            cache_entries: 256,
            deadline: Duration::from_secs(30),
            max_line_bytes: 1 << 20,
            trace: Trace::off(),
        }
    }
}

/// Per-status request counters plus cache statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeCounters {
    /// Completed requests by [`ServeStatus`] index (ok, bad_request,
    /// timeout, overloaded, shutting_down, error).
    pub by_status: [u64; 6],
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Cacheable requests that had to compute.
    pub cache_misses: u64,
}

impl ServeCounters {
    /// Total requests answered.
    pub fn total(&self) -> u64 {
        self.by_status.iter().sum()
    }
}

fn status_index(s: ServeStatus) -> usize {
    match s {
        ServeStatus::Ok => 0,
        ServeStatus::BadRequest => 1,
        ServeStatus::Timeout => 2,
        ServeStatus::Overloaded => 3,
        ServeStatus::ShuttingDown => 4,
        ServeStatus::Error => 5,
    }
}

struct Shared {
    cache: Mutex<ResultCache>,
    counters: Mutex<ServeCounters>,
    completion_index: AtomicU64,
    queued: AtomicU64,
    draining: AtomicBool,
    deadline: Duration,
    trace: Trace,
    threads: usize,
    queue_depth: usize,
    max_line_bytes: usize,
}

impl Shared {
    /// Records a finished request: bumps counters, assigns the completion
    /// index, and emits the golden + timing trace events. The counter
    /// lock spans the emission so the golden stream's event order matches
    /// its completion indices.
    fn finish(
        &self,
        kind: ServeKind,
        digest: u64,
        status: ServeStatus,
        wall: Duration,
        queue_depth: u64,
    ) {
        let mut c = self
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        c.by_status[status_index(status)] += 1;
        let index = self.completion_index.fetch_add(1, Ordering::Relaxed);
        self.trace.emit(|| TraceEvent::ServeRequest {
            index,
            kind,
            digest,
            status,
        });
        self.trace.emit(|| TraceEvent::ServeRequestTiming {
            index,
            wall_ns: wall.as_nanos(),
            queue_depth,
        });
    }

    fn count_cache(&self, hit: bool) {
        let mut c = self
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if hit {
            c.cache_hits += 1;
        } else {
            c.cache_misses += 1;
        }
    }
}

struct Job {
    request: Request,
    id: Json,
    digest: u64,
    canonical: String,
    queue_depth: u64,
    admitted: Instant,
    reply: SyncSender<String>,
}

/// A response that is either already available or still computing.
///
/// [`Response::wait`] resolves it; for pending responses this blocks until
/// the worker delivers the line.
#[derive(Debug)]
pub enum Response {
    /// Answered at admission time (cache hit, rejection, stats, ...).
    Immediate(String),
    /// In flight on the worker pool.
    Pending(Receiver<String>),
}

impl Response {
    /// Blocks until the response line is available.
    pub fn wait(self) -> String {
        match self {
            Response::Immediate(line) => line,
            Response::Pending(rx) => rx.recv().unwrap_or_else(|_| {
                // The worker pool died before replying; report it as a
                // server-side error rather than panicking the connection.
                response_line(
                    &Json::Null,
                    ServeStatus::Error,
                    &Body::Error("worker pool terminated".to_string()),
                )
            }),
        }
    }
}

/// The batch simulation service engine.
pub struct ServeEngine {
    shared: Arc<Shared>,
    tx: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl ServeEngine {
    /// Starts the worker pool.
    pub fn start(config: &ServeConfig) -> Arc<ServeEngine> {
        let threads = config.threads.max(1);
        let queue_depth = config.queue_depth.max(1);
        let shared = Arc::new(Shared {
            cache: Mutex::new(ResultCache::new(config.cache_entries)),
            counters: Mutex::new(ServeCounters::default()),
            completion_index: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            deadline: config.deadline,
            trace: config.trace.clone(),
            threads,
            queue_depth,
            max_line_bytes: config.max_line_bytes.max(1),
        });
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(threads);
        for worker in 0..threads {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            let handle = thread::Builder::new()
                .name(format!("lcosc-serve-{worker}"))
                .spawn(move || worker_loop(&rx, &shared));
            match handle {
                Ok(h) => workers.push(h),
                Err(e) => {
                    // Degraded but functional: the pool runs with the
                    // workers that did spawn (at least attempt 0 usually
                    // succeeds; if none did, submissions time out at the
                    // queue and the caller sees overloaded).
                    eprintln!("lcosc-serve: failed to spawn worker {worker}: {e}");
                }
            }
        }
        Arc::new(ServeEngine {
            shared,
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
        })
    }

    /// The configured request-line length cap in bytes.
    pub fn max_line_bytes(&self) -> usize {
        self.shared.max_line_bytes
    }

    /// Answers an over-long request line with the typed `line_too_long`
    /// error, keeping the engine counters and trace stream consistent
    /// with every other rejection path.
    pub fn reject_oversized_line(&self) -> Response {
        self.reject(
            &Json::Null,
            ServeKind::Invalid,
            0,
            ServeStatus::BadRequest,
            &format!(
                "line_too_long: request line exceeds {} bytes",
                self.shared.max_line_bytes
            ),
            Instant::now(),
        )
    }

    /// Whether the engine is draining (refusing new simulation work).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Snapshot of the request/cache counters.
    pub fn counters(&self) -> ServeCounters {
        *self
            .shared
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Begins a graceful drain: already-admitted jobs keep running, every
    /// subsequent simulation request is refused with `shutting_down`.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Dropping the sender lets workers exit once the queue empties.
        let mut tx = self
            .tx
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *tx = None;
    }

    /// Drains and joins the worker pool, blocking until every in-flight
    /// job has delivered its response.
    pub fn shutdown(&self) {
        self.begin_drain();
        let handles: Vec<_> = {
            let mut workers = self
                .workers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            workers.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }

    /// Submits one raw request line. Always returns a [`Response`] — the
    /// protocol maps every failure (parse error, overload, drain) to a
    /// response line rather than dropping the request.
    pub fn submit_line(&self, line: &str) -> Response {
        let started = Instant::now();
        let decoded = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                return self.reject(
                    &Json::Null,
                    ServeKind::Invalid,
                    0,
                    ServeStatus::BadRequest,
                    &format!("invalid JSON: {e}"),
                    started,
                );
            }
        };
        let id = request_id(&decoded);
        // `"spice"` bodies desugar to their JSON-deck equivalent *before*
        // request parsing and canonicalization, so both spellings of a
        // circuit share one cache digest and one response byte stream.
        let decoded = match desugar_spice(&decoded) {
            Ok(v) => v,
            Err(e) => {
                return self.reject(
                    &id,
                    ServeKind::Invalid,
                    0,
                    ServeStatus::BadRequest,
                    &e,
                    started,
                );
            }
        };
        let request = match parse_request(&decoded) {
            Ok(r) => r,
            Err(e) => {
                return self.reject(
                    &id,
                    ServeKind::Invalid,
                    0,
                    ServeStatus::BadRequest,
                    &e,
                    started,
                );
            }
        };
        let kind = request.kind();
        match request {
            Request::Shutdown => {
                self.begin_drain();
                let line = response_line(
                    &id,
                    ServeStatus::Ok,
                    &Body::Payload("{\"draining\":true}".to_string()),
                );
                self.shared
                    .finish(kind, 0, ServeStatus::Ok, started.elapsed(), self.depth());
                Response::Immediate(line)
            }
            Request::Stats => {
                let line =
                    response_line(&id, ServeStatus::Ok, &Body::Payload(self.stats_payload()));
                self.shared
                    .finish(kind, 0, ServeStatus::Ok, started.elapsed(), self.depth());
                Response::Immediate(line)
            }
            simulation => self.submit_simulation(simulation, &decoded, id, started),
        }
    }

    fn submit_simulation(
        &self,
        request: Request,
        decoded: &Json,
        id: Json,
        started: Instant,
    ) -> Response {
        let kind = request.kind();
        let canonical = canonical_key(decoded);
        let digest = digest_bytes(canonical.as_bytes());
        // Cache probe happens at admission, before the queue: replayed
        // responses never occupy a worker slot, which is what makes the
        // warmed-cache throughput independent of simulation cost.
        let hit = {
            let cache = self
                .shared
                .cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            cache.get(digest, &canonical).map(str::to_string)
        };
        if let Some(payload) = hit {
            self.shared.count_cache(true);
            let line = response_line(&id, ServeStatus::Ok, &Body::Payload(payload));
            self.shared.finish(
                kind,
                digest,
                ServeStatus::Ok,
                started.elapsed(),
                self.depth(),
            );
            return Response::Immediate(line);
        }
        if self.is_draining() {
            return self.reject(
                &id,
                kind,
                digest,
                ServeStatus::ShuttingDown,
                "server is draining",
                started,
            );
        }
        self.shared.count_cache(false);
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let job = Job {
            request,
            id,
            digest,
            canonical,
            queue_depth: self.depth(),
            admitted: started,
            reply: reply_tx,
        };
        let tx = self
            .tx
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(sender) = tx.as_ref() else {
            let id = job.id.clone();
            return self.reject(
                &id,
                kind,
                digest,
                ServeStatus::ShuttingDown,
                "server is draining",
                started,
            );
        };
        match sender.try_send(job) {
            Ok(()) => {
                self.shared.queued.fetch_add(1, Ordering::SeqCst);
                Response::Pending(reply_rx)
            }
            Err(TrySendError::Full(job)) => {
                let id = job.id.clone();
                self.reject(
                    &id,
                    kind,
                    digest,
                    ServeStatus::Overloaded,
                    "queue full",
                    started,
                )
            }
            Err(TrySendError::Disconnected(job)) => {
                let id = job.id.clone();
                self.reject(
                    &id,
                    kind,
                    digest,
                    ServeStatus::ShuttingDown,
                    "server is draining",
                    started,
                )
            }
        }
    }

    fn reject(
        &self,
        id: &Json,
        kind: ServeKind,
        digest: u64,
        status: ServeStatus,
        message: &str,
        started: Instant,
    ) -> Response {
        let line = response_line(id, status, &Body::Error(message.to_string()));
        self.shared
            .finish(kind, digest, status, started.elapsed(), self.depth());
        Response::Immediate(line)
    }

    fn depth(&self) -> u64 {
        self.shared.queued.load(Ordering::SeqCst)
    }

    /// The `stats` result payload: counters and fixed configuration, as a
    /// compact JSON document with a fixed key order.
    fn stats_payload(&self) -> String {
        let c = self.counters();
        let cache_len = self
            .shared
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len();
        Json::obj([
            (
                "requests",
                Json::obj([
                    ("ok", Json::from(c.by_status[0] as i64)),
                    ("bad_request", Json::from(c.by_status[1] as i64)),
                    ("timeout", Json::from(c.by_status[2] as i64)),
                    ("overloaded", Json::from(c.by_status[3] as i64)),
                    ("shutting_down", Json::from(c.by_status[4] as i64)),
                    ("error", Json::from(c.by_status[5] as i64)),
                ]),
            ),
            (
                "cache",
                Json::obj([
                    ("hits", Json::from(c.cache_hits as i64)),
                    ("misses", Json::from(c.cache_misses as i64)),
                    ("entries", Json::from(cache_len)),
                    (
                        "capacity",
                        Json::from(
                            self.shared
                                .cache
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .capacity(),
                        ),
                    ),
                ]),
            ),
            (
                "config",
                Json::obj([
                    ("threads", Json::from(self.shared.threads)),
                    ("queue_depth", Json::from(self.shared.queue_depth)),
                    (
                        "deadline_ms",
                        Json::from(self.shared.deadline.as_millis() as i64),
                    ),
                    ("draining", Json::from(self.is_draining())),
                ]),
            ),
        ])
        .render()
    }
}

/// One worker: pull a job, execute it under the deadline, reply, repeat
/// until the queue closes.
fn worker_loop(rx: &Arc<Mutex<mpsc::Receiver<Job>>>, shared: &Arc<Shared>) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        let Ok(job) = job else {
            return;
        };
        shared.queued.fetch_sub(1, Ordering::SeqCst);
        run_job(&job, shared);
    }
}

fn run_job(job: &Job, shared: &Arc<Shared>) {
    let kind = job.request.kind();
    // The compute runs on a disposable thread so a deadline overrun frees
    // this worker slot immediately; the abandoned thread's late result is
    // sent into a dropped receiver and discarded.
    let (done_tx, done_rx) = mpsc::sync_channel(1);
    let request = job.request.clone();
    let spawned = thread::Builder::new()
        .name("lcosc-serve-job".to_string())
        .spawn(move || {
            let _ = done_tx.send(execute(&request));
        });
    let outcome = match spawned {
        Ok(_) => done_rx.recv_timeout(shared.deadline),
        Err(e) => Ok(Err(format!("failed to spawn compute thread: {e}"))),
    };
    let (status, body) = match outcome {
        Ok(Ok(payload)) => {
            let rendered = payload.render();
            let mut cache = shared
                .cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            cache.insert(job.digest, &job.canonical, rendered.clone());
            (ServeStatus::Ok, Body::Payload(rendered))
        }
        Ok(Err(message)) => (ServeStatus::Error, Body::Error(message)),
        Err(_) => (
            ServeStatus::Timeout,
            Body::Error("deadline exceeded".to_string()),
        ),
    };
    let line = response_line(&job.id, status, &body);
    shared.finish(
        kind,
        job.digest,
        status,
        job.admitted.elapsed(),
        job.queue_depth,
    );
    // The client may have hung up; a dead reply channel is not an error.
    let _ = job.reply.send(line);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(threads: usize) -> Arc<ServeEngine> {
        ServeEngine::start(&ServeConfig {
            threads,
            queue_depth: 8,
            cache_entries: 32,
            deadline: Duration::from_secs(10),
            max_line_bytes: 1 << 20,
            trace: Trace::off(),
        })
    }

    #[test]
    fn scenario_round_trip_hits_cache_on_repeat() {
        let e = engine(2);
        let line = r#"{"id":1,"kind":"scenario","fault":"open_coil","preset":"fast_test"}"#;
        let cold = e.submit_line(line).wait();
        assert!(cold.contains("\"status\":\"ok\""), "{cold}");
        let warm = e.submit_line(line).wait();
        assert_eq!(cold, warm);
        let c = e.counters();
        assert_eq!(c.cache_hits, 1);
        assert_eq!(c.cache_misses, 1);
        e.shutdown();
    }

    #[test]
    fn responses_differing_only_in_id_share_the_cache_slot() {
        let e = engine(1);
        let a = e
            .submit_line(r#"{"id":"a","kind":"scenario","fault":"driver_dead"}"#)
            .wait();
        let b = e
            .submit_line(r#"{"id":"b","kind":"scenario","fault":"driver_dead"}"#)
            .wait();
        assert_eq!(e.counters().cache_hits, 1);
        // Identical apart from the echoed id.
        assert_eq!(a.replace("\"id\":\"a\"", "\"id\":\"b\""), b);
        e.shutdown();
    }

    #[test]
    fn bad_lines_answer_immediately_without_touching_workers() {
        let e = engine(1);
        let garbage = e.submit_line("{not json").wait();
        assert!(garbage.contains("\"status\":\"bad_request\""), "{garbage}");
        let unknown = e.submit_line(r#"{"id":9,"kind":"warp"}"#).wait();
        assert!(unknown.contains("\"id\":9"), "{unknown}");
        assert!(unknown.contains("\"status\":\"bad_request\""), "{unknown}");
        assert_eq!(e.counters().by_status[1], 2);
        e.shutdown();
    }

    #[test]
    fn stats_reports_counters_and_config() {
        let e = engine(1);
        let _ = e
            .submit_line(r#"{"kind":"scenario","fault":"open_coil"}"#)
            .wait();
        let stats = e.submit_line(r#"{"id":0,"kind":"stats"}"#).wait();
        assert!(stats.contains("\"requests\":{\"ok\":1"), "{stats}");
        assert!(
            stats.contains("\"cache\":{\"hits\":0,\"misses\":1,\"entries\":1"),
            "{stats}"
        );
        assert!(stats.contains("\"threads\":1"), "{stats}");
        e.shutdown();
    }

    #[test]
    fn drain_refuses_new_work_but_finishes_nothing_in_flight_breaks() {
        let e = engine(1);
        let ok = e.submit_line(r#"{"kind":"scenario","fault":"open_coil"}"#);
        e.begin_drain();
        let refused = e
            .submit_line(r#"{"kind":"scenario","fault":"coil_short"}"#)
            .wait();
        assert!(
            refused.contains("\"status\":\"shutting_down\""),
            "{refused}"
        );
        // The job admitted before the drain still completes.
        assert!(ok.wait().contains("\"status\":\"ok\""));
        e.shutdown();
    }

    #[test]
    fn shutdown_request_drains_via_protocol() {
        let e = engine(1);
        let resp = e.submit_line(r#"{"id":5,"kind":"shutdown"}"#).wait();
        assert_eq!(resp, r#"{"id":5,"status":"ok","result":{"draining":true}}"#);
        assert!(e.is_draining());
        e.shutdown();
    }
}
