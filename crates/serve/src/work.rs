//! Request execution: maps each [`Request`] kind onto the workspace's
//! existing entry points and renders a deterministic result payload.
//!
//! Every payload is built from integers, strings and finite floats through
//! the byte-stable [`Json`] renderer, so `execute` is a pure function of
//! the request — the property the content-addressed cache and the
//! thread-count determinism guarantee both rest on.

use crate::protocol::{fault_token, CampaignSpec, Request};
use lcosc_campaign::Json;
use lcosc_circuit::{netlist_from_json, run_transient, TransientOptions};
use lcosc_dac::{yield_analysis_campaign, DacMismatchParams};
use lcosc_safety::scenario::{detector_id, run_scenario_with_trace};
use lcosc_safety::FmeaReport;
use lcosc_trace::Trace;

/// Executes one request, returning the result tree or an error message.
///
/// Campaign requests run **serially** (`threads = 1`) inside the calling
/// worker slot: the service's own worker pool is the parallelism layer,
/// and nested fan-out would oversubscribe the host without changing any
/// result (the campaign engine is thread-count invariant by design).
///
/// # Errors
///
/// Returns a human-readable message for the `"error"` field of an
/// `error` response (deck errors, simulation setup failures).
pub fn execute(request: &Request) -> Result<Json, String> {
    match request {
        Request::Transient {
            deck,
            dt,
            t_end,
            record_stride,
        } => {
            let nl = netlist_from_json(deck).map_err(|e| e.to_string())?;
            let mut opts = TransientOptions::new(*dt, *t_end);
            opts.record_stride = *record_stride;
            let result = run_transient(&nl, &opts).map_err(|e| e.to_string())?;
            let stats = result.stats();
            let last = result.len().saturating_sub(1);
            let final_v: Vec<Json> = result
                .voltages_at(last)
                .iter()
                .map(|&v| Json::from(v))
                .collect();
            Ok(Json::obj([
                ("samples", Json::from(result.len())),
                ("steps", Json::from(stats.steps as i64)),
                (
                    "newton_iterations",
                    Json::from(stats.newton_iterations as i64),
                ),
                ("factorizations", Json::from(stats.factorizations as i64)),
                ("factor_reuses", Json::from(stats.factor_reuses as i64)),
                ("used_sparse_path", Json::from(stats.used_sparse_path)),
                (
                    "symbolic_analyses",
                    Json::from(stats.symbolic_analyses as i64),
                ),
                ("symbolic_reuses", Json::from(stats.symbolic_reuses as i64)),
                ("steps_accepted", Json::from(stats.steps_accepted as i64)),
                ("steps_rejected", Json::from(stats.steps_rejected as i64)),
                ("mode_switches", Json::from(stats.mode_switches as i64)),
                (
                    "envelope_permille",
                    Json::from(stats.envelope_permille as i64),
                ),
                (
                    "final_time",
                    Json::from(result.times().last().copied().unwrap_or(0.0)),
                ),
                ("final_v", Json::Array(final_v)),
            ]))
        }
        Request::Scenario { fault, preset } => {
            // The inner simulation's per-tick stream stays detached from
            // the server trace: workers run concurrently and interleaved
            // tick events would not be attributable to a request.
            let result = run_scenario_with_trace(*fault, &preset.config(), &Trace::off())
                .map_err(|e| e.to_string())?;
            let detectors: Vec<Json> = result
                .triggered
                .iter()
                .map(|&k| Json::from(detector_id(k).label()))
                .collect();
            Ok(Json::obj([
                ("fault", Json::from(fault_token(*fault))),
                ("preset", Json::from(preset.token())),
                ("detectors", Json::Array(detectors)),
                ("detected", Json::from(result.detected)),
                ("code_saturated", Json::from(result.code_saturated)),
                ("vpp_before", Json::from(result.vpp_before)),
                ("final_vpp", Json::from(result.final_vpp)),
                ("safe", Json::from(result.is_safe())),
            ]))
        }
        Request::Campaign(CampaignSpec::Fmea { preset }) => {
            let run =
                FmeaReport::run_with_threads(&preset.config(), 1).map_err(|e| e.to_string())?;
            Ok(run.report.to_json())
        }
        Request::Campaign(CampaignSpec::Yield { dies, seed, window }) => {
            let run =
                yield_analysis_campaign(&DacMismatchParams::default(), *dies, *seed, *window, 1);
            Ok(run.report.to_json())
        }
        Request::Prove { preset } => {
            let outcome = lcosc_check::prove(&preset.config().prove_facts());
            Ok(Json::obj([
                ("preset", Json::from(preset.token())),
                ("prove", outcome.to_json()),
            ]))
        }
        // Stats and shutdown are answered by the engine itself — they
        // read or mutate server state no worker can see.
        Request::Stats | Request::Shutdown => {
            Err("stats/shutdown are engine-level requests".to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{parse_request, Preset};
    use lcosc_safety::Fault;

    fn rc_deck() -> Json {
        Json::parse(
            r#"{"elements":[
                {"kind":"vsource","p":"in","n":"gnd","wave":{"type":"dc","value":1.0}},
                {"kind":"resistor","a":"in","b":"out","ohms":1000.0},
                {"kind":"capacitor","a":"out","b":"gnd","farads":1e-6}
            ]}"#,
        )
        .expect("deck literal is valid JSON")
    }

    #[test]
    fn transient_payload_reports_solver_work_and_final_state() {
        let req = Request::Transient {
            deck: rc_deck(),
            dt: 1e-5,
            t_end: 5e-3,
            record_stride: 10,
        };
        let payload = execute(&req).expect("RC deck simulates");
        assert_eq!(payload.get("steps").and_then(Json::as_int), Some(500));
        let final_v = match payload.get("final_v") {
            Some(Json::Array(v)) => v.clone(),
            other => panic!("final_v missing: {other:?}"),
        };
        // After 5 time constants the capacitor node sits at ~1 V.
        let out = final_v[1].as_f64().expect("voltage is numeric");
        assert!((out - 1.0).abs() < 0.01, "v(out) = {out}");
        // Determinism: identical request, identical rendered payload.
        assert_eq!(payload.render(), execute(&req).expect("rerun").render());
    }

    #[test]
    fn scenario_payload_round_trips_through_the_renderer() {
        let req = Request::Scenario {
            fault: Fault::OpenCoil,
            preset: Preset::FastTest,
        };
        let payload = execute(&req).expect("scenario runs");
        assert_eq!(
            payload.get("fault").and_then(Json::as_str),
            Some("open_coil")
        );
        assert_eq!(payload.get("detected"), Some(&Json::Bool(true)));
        assert_eq!(payload.render(), execute(&req).expect("rerun").render());
    }

    #[test]
    fn yield_campaign_is_seeded_and_deterministic() {
        let line = r#"{"kind":"campaign","campaign":"yield","dies":16,"seed":7,"window":0.1}"#;
        let req = parse_request(&Json::parse(line).expect("valid JSON")).expect("parses");
        let a = execute(&req).expect("runs").render();
        let b = execute(&req).expect("runs").render();
        assert_eq!(a, b);
        assert!(a.contains("\"dies\":16"));
    }

    #[test]
    fn prove_payload_is_deterministic_and_proved_for_presets() {
        for preset in [Preset::FastTest, Preset::Datasheet3MHz, Preset::LowQ] {
            let req = Request::Prove { preset };
            let payload = execute(&req).expect("prover runs");
            assert_eq!(
                payload.get("preset").and_then(Json::as_str),
                Some(preset.token())
            );
            assert_eq!(
                payload.get("prove").and_then(|p| p.get("proved")).cloned(),
                Some(Json::Bool(true)),
                "{}",
                preset.token()
            );
            assert_eq!(payload.render(), execute(&req).expect("rerun").render());
        }
    }

    #[test]
    fn bad_deck_is_a_typed_error_not_a_panic() {
        let req = Request::Transient {
            deck: Json::parse(r#"{"elements":[{"kind":"warp_coil"}]}"#).expect("valid JSON"),
            dt: 1e-6,
            t_end: 1e-3,
            record_stride: 1,
        };
        let err = execute(&req).expect_err("unknown element type");
        assert!(err.contains("warp_coil"), "{err}");
    }
}
