//! The NDJSON request/response protocol and its canonical cache-key form.
//!
//! One request per line, one response per line, both JSON objects. The
//! grammar is documented in `DESIGN.md` §10; this module owns the three
//! protocol-level transformations:
//!
//! - **parse**: request line → [`Request`] (typed, validated);
//! - **canonicalize**: request object minus `"id"` → sorted-key compact
//!   rendering, the preimage of the content-addressed cache key;
//! - **assemble**: `(id, status, body)` → the byte-exact response line.
//!
//! The response for a given request is a pure function of the request
//! object, which is what makes responses byte-identical across worker
//! thread counts and cache states.

use lcosc_campaign::Json;
use lcosc_safety::Fault;
use lcosc_trace::{ServeKind, ServeStatus};

/// Oscillator configuration preset a scenario or FMEA request runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Scaled-down tank for fast tests (`OscillatorConfig::fast_test`).
    FastTest,
    /// The paper's 3 MHz datasheet tank.
    Datasheet3MHz,
    /// Degraded low-Q tank.
    LowQ,
}

impl Preset {
    /// Stable protocol token.
    pub fn token(self) -> &'static str {
        match self {
            Preset::FastTest => "fast_test",
            Preset::Datasheet3MHz => "datasheet_3mhz",
            Preset::LowQ => "low_q",
        }
    }

    /// Parses a protocol token.
    ///
    /// # Errors
    ///
    /// Returns the offending token when it names no preset.
    pub fn parse(token: &str) -> Result<Preset, String> {
        match token {
            "fast_test" => Ok(Preset::FastTest),
            "datasheet_3mhz" => Ok(Preset::Datasheet3MHz),
            "low_q" => Ok(Preset::LowQ),
            other => Err(format!("unknown preset {other:?}")),
        }
    }

    /// Builds the corresponding oscillator configuration.
    pub fn config(self) -> lcosc_core::config::OscillatorConfig {
        use lcosc_core::config::OscillatorConfig;
        match self {
            Preset::FastTest => OscillatorConfig::fast_test(),
            Preset::Datasheet3MHz => OscillatorConfig::datasheet_3mhz(),
            Preset::LowQ => OscillatorConfig::low_q(),
        }
    }
}

/// Stable protocol token for a fault (the inverse of [`parse_fault`];
/// pin / factor payloads travel in separate request fields).
pub fn fault_token(fault: Fault) -> &'static str {
    match fault {
        Fault::OpenCoil => "open_coil",
        Fault::CoilShort => "coil_short",
        Fault::PinShortToGround { .. } => "pin_short_gnd",
        Fault::PinShortToSupply { .. } => "pin_short_vdd",
        Fault::MissingCapacitor { .. } => "missing_cap",
        Fault::RsDrift { .. } => "rs_drift",
        Fault::SupplyLoss => "supply_loss",
        Fault::DriverDead => "driver_dead",
    }
}

/// Parses a fault from its protocol token plus the optional `pin` /
/// `factor` payload fields.
///
/// # Errors
///
/// Returns a message naming the missing or out-of-range field.
pub fn parse_fault(token: &str, pin: Option<i64>, factor: Option<f64>) -> Result<Fault, String> {
    let need_pin = || -> Result<usize, String> {
        match pin {
            Some(0) => Ok(0),
            Some(1) => Ok(1),
            Some(p) => Err(format!("fault {token:?}: pin must be 0 or 1, got {p}")),
            None => Err(format!("fault {token:?} requires a \"pin\" field")),
        }
    };
    match token {
        "open_coil" => Ok(Fault::OpenCoil),
        "coil_short" => Ok(Fault::CoilShort),
        "pin_short_gnd" => Ok(Fault::PinShortToGround { pin: need_pin()? }),
        "pin_short_vdd" => Ok(Fault::PinShortToSupply { pin: need_pin()? }),
        "missing_cap" => Ok(Fault::MissingCapacitor { pin: need_pin()? }),
        "rs_drift" => match factor {
            Some(f) if f.is_finite() && f > 0.0 => Ok(Fault::RsDrift { factor: f }),
            Some(f) => Err(format!(
                "fault \"rs_drift\": factor must be finite and positive, got {f}"
            )),
            None => Err("fault \"rs_drift\" requires a \"factor\" field".to_string()),
        },
        "supply_loss" => Ok(Fault::SupplyLoss),
        "driver_dead" => Ok(Fault::DriverDead),
        other => Err(format!("unknown fault {other:?}")),
    }
}

/// A campaign sub-request.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignSpec {
    /// Full FMEA sweep over the fault catalog.
    Fmea {
        /// Configuration preset the sweep runs on.
        preset: Preset,
    },
    /// Monte-Carlo DAC yield sweep.
    Yield {
        /// Dies to sample (must be positive).
        dies: u32,
        /// Base RNG seed.
        seed: u64,
        /// Relative regulation-window width (must be positive).
        window: f64,
    },
}

/// A parsed, validated protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Circuit-deck transient analysis.
    Transient {
        /// The circuit deck (see `lcosc_circuit::netlist_from_json`).
        deck: Json,
        /// Time step, seconds.
        dt: f64,
        /// End time, seconds.
        t_end: f64,
        /// Record every n-th step.
        record_stride: usize,
    },
    /// Single fault-injection scenario.
    Scenario {
        /// The injected fault.
        fault: Fault,
        /// Configuration preset.
        preset: Preset,
    },
    /// FMEA or yield campaign (runs serially inside one worker slot).
    Campaign(CampaignSpec),
    /// Static safety proof (`A0xx` obligations) of a preset.
    Prove {
        /// Configuration preset whose facts are proved.
        preset: Preset,
    },
    /// Server counter dump (never cached).
    Stats,
    /// Graceful-drain trigger (never cached).
    Shutdown,
}

impl Request {
    /// The trace-layer kind label of this request.
    pub fn kind(&self) -> ServeKind {
        match self {
            Request::Transient { .. } => ServeKind::Transient,
            Request::Scenario { .. } => ServeKind::Scenario,
            Request::Campaign(_) => ServeKind::Campaign,
            Request::Prove { .. } => ServeKind::Prove,
            Request::Stats => ServeKind::Stats,
            Request::Shutdown => ServeKind::Shutdown,
        }
    }

    /// Whether responses to this request may be served from the
    /// content-addressed cache. Only simulation kinds are cacheable;
    /// `stats` and `shutdown` answers depend on server state.
    pub fn cacheable(&self) -> bool {
        matches!(
            self,
            Request::Transient { .. }
                | Request::Scenario { .. }
                | Request::Campaign(_)
                | Request::Prove { .. }
        )
    }
}

/// Desugars a `"spice"` request body into its `"deck"` equivalent.
///
/// A transient request may carry `"spice": "<.sp text>"` instead of a
/// `"deck"` object. This rewrites the request *before* parsing and
/// canonicalization: the `.sp` text is parsed ([`lcosc_spice::parse_spice`]),
/// gated through `lcosc-check`, and replaced by the JSON deck it denotes;
/// `dt` / `t_end` fall back to the deck's `.tran` card when absent. A
/// request without a `"spice"` member passes through unchanged.
///
/// Because the rewrite happens ahead of [`canonical_key`], a spice request
/// and its JSON-deck equivalent share one cache digest and one response
/// byte stream — the protocol's determinism contract extends to `.sp`
/// input verbatim.
///
/// # Errors
///
/// Returns a `bad_request` message for `.sp` parse failures (with the
/// `P0xx` code and position), `lcosc-check` rejections (`E0xx` codes),
/// a missing analysis plan, or a request carrying both bodies.
pub fn desugar_spice(v: &Json) -> Result<Json, String> {
    let Json::Object(pairs) = v else {
        return Ok(v.clone());
    };
    let Some(Json::Str(text)) = v.get("spice") else {
        return Ok(v.clone());
    };
    if v.get("deck").is_some() {
        return Err("request carries both \"spice\" and \"deck\" bodies".to_string());
    }
    let deck = lcosc_spice::parse_spice(text).map_err(|e| format!("spice: {e}"))?;
    let report = deck.check();
    if report.error_count() > 0 {
        let first = report
            .diagnostics()
            .iter()
            .find(|d| d.severity == lcosc_check::Severity::Error)
            .map(|d| format!("{} {}", d.code, d.message))
            .unwrap_or_default();
        return Err(format!(
            "spice deck rejected by lcosc-check ({} errors; first: {first})",
            report.error_count()
        ));
    }
    let tran = deck.tran_options();
    let mut rewritten: Vec<(String, Json)> = Vec::with_capacity(pairs.len() + 1);
    for (k, val) in pairs {
        if k == "spice" {
            rewritten.push((
                "deck".to_string(),
                lcosc_circuit::netlist_to_json(&deck.netlist),
            ));
        } else {
            rewritten.push((k.clone(), val.clone()));
        }
    }
    if v.get("dt").is_none() {
        match &tran {
            Some(opts) => rewritten.push(("dt".to_string(), Json::Float(opts.dt))),
            None => {
                return Err(
                    "spice request needs a .tran card or explicit \"dt\"/\"t_end\"".to_string(),
                )
            }
        }
    }
    if v.get("t_end").is_none() {
        match &tran {
            Some(opts) => rewritten.push(("t_end".to_string(), Json::Float(opts.t_end))),
            None => {
                return Err(
                    "spice request needs a .tran card or explicit \"dt\"/\"t_end\"".to_string(),
                )
            }
        }
    }
    Ok(Json::Object(rewritten))
}

fn f64_field(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric \"{key}\" field"))
}

/// Parses a decoded request object into a typed [`Request`].
///
/// # Errors
///
/// Returns a human-readable message for the `"error"` field of a
/// `bad_request` response.
pub fn parse_request(v: &Json) -> Result<Request, String> {
    if !matches!(v, Json::Object(_)) {
        return Err("request must be a JSON object".to_string());
    }
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing or non-string \"kind\" field".to_string())?;
    match kind {
        "transient" => {
            let deck = v
                .get("deck")
                .ok_or_else(|| "transient request requires a \"deck\" field".to_string())?
                .clone();
            let dt = f64_field(v, "dt")?;
            let t_end = f64_field(v, "t_end")?;
            if !(dt > 0.0) || !(t_end > dt) || !t_end.is_finite() {
                return Err(format!(
                    "need 0 < dt < t_end (finite), got dt={dt}, t_end={t_end}"
                ));
            }
            let record_stride = match v.get("record_stride") {
                None => 1,
                Some(j) => match j.as_int() {
                    Some(s) if s > 0 => s as usize,
                    _ => return Err("\"record_stride\" must be a positive integer".to_string()),
                },
            };
            Ok(Request::Transient {
                deck,
                dt,
                t_end,
                record_stride,
            })
        }
        "scenario" => {
            let token = v
                .get("fault")
                .and_then(Json::as_str)
                .ok_or_else(|| "scenario request requires a string \"fault\" field".to_string())?;
            let pin = v.get("pin").and_then(Json::as_int);
            let factor = v.get("factor").and_then(Json::as_f64);
            let fault = parse_fault(token, pin, factor)?;
            let preset = match v.get("preset") {
                None => Preset::FastTest,
                Some(p) => Preset::parse(
                    p.as_str()
                        .ok_or_else(|| "\"preset\" must be a string".to_string())?,
                )?,
            };
            Ok(Request::Scenario { fault, preset })
        }
        "campaign" => {
            let name = v.get("campaign").and_then(Json::as_str).ok_or_else(|| {
                "campaign request requires a string \"campaign\" field".to_string()
            })?;
            match name {
                "fmea" => {
                    let preset = match v.get("preset") {
                        None => Preset::FastTest,
                        Some(p) => Preset::parse(
                            p.as_str()
                                .ok_or_else(|| "\"preset\" must be a string".to_string())?,
                        )?,
                    };
                    Ok(Request::Campaign(CampaignSpec::Fmea { preset }))
                }
                "yield" => {
                    let dies = match v.get("dies").and_then(Json::as_int) {
                        Some(d) if d > 0 && d <= i64::from(u32::MAX) => d as u32,
                        _ => return Err("\"dies\" must be a positive integer".to_string()),
                    };
                    let seed = match v.get("seed") {
                        None => 0,
                        Some(j) => match j.as_int() {
                            Some(s) if s >= 0 => s as u64,
                            _ => return Err("\"seed\" must be a non-negative integer".to_string()),
                        },
                    };
                    let window = match v.get("window") {
                        None => 0.1,
                        Some(j) => match j.as_f64() {
                            Some(w) if w.is_finite() && w > 0.0 => w,
                            _ => return Err("\"window\" must be a positive number".to_string()),
                        },
                    };
                    Ok(Request::Campaign(CampaignSpec::Yield {
                        dies,
                        seed,
                        window,
                    }))
                }
                other => Err(format!("unknown campaign {other:?}")),
            }
        }
        "prove" => {
            let preset = match v.get("preset") {
                None => Preset::FastTest,
                Some(p) => Preset::parse(
                    p.as_str()
                        .ok_or_else(|| "\"preset\" must be a string".to_string())?,
                )?,
            };
            Ok(Request::Prove { preset })
        }
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown request kind {other:?}")),
    }
}

/// The `"id"` field of a request object (`null` when absent or when the
/// line was not an object). Echoed verbatim into the response.
pub fn request_id(v: &Json) -> Json {
    v.get("id").cloned().unwrap_or(Json::Null)
}

/// The canonical cache-key preimage of a request object: the object with
/// its `"id"` member removed, keys sorted recursively, rendered compactly.
///
/// Two requests that differ only in `"id"` (or in member order) map to the
/// same preimage and therefore the same cache slot.
pub fn canonical_key(v: &Json) -> String {
    let stripped = match v {
        Json::Object(pairs) => {
            Json::Object(pairs.iter().filter(|(k, _)| k != "id").cloned().collect())
        }
        other => other.clone(),
    };
    stripped.canonicalize().render()
}

/// Response payload: either a pre-rendered JSON result document or an
/// error message (escaped at assembly time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Body {
    /// Rendered JSON of the `"result"` field (already byte-stable).
    Payload(String),
    /// Human-readable message for the `"error"` field.
    Error(String),
}

/// Assembles the byte-exact response line (no trailing newline):
/// `{"id":<id>,"status":"<status>","result":<payload>}` on success,
/// `{"id":<id>,"status":"<status>","error":"<message>"}` otherwise.
pub fn response_line(id: &Json, status: ServeStatus, body: &Body) -> String {
    let mut s = String::with_capacity(64);
    s.push_str("{\"id\":");
    s.push_str(&id.render());
    s.push_str(",\"status\":\"");
    s.push_str(status.label());
    match body {
        Body::Payload(payload) => {
            s.push_str("\",\"result\":");
            s.push_str(payload);
        }
        Body::Error(message) => {
            s.push_str("\",\"error\":");
            s.push_str(&Json::from(message.as_str()).render());
        }
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_line(line: &str) -> Json {
        Json::parse(line).expect("test line must be valid JSON")
    }

    #[test]
    fn canonical_key_ignores_id_and_member_order() {
        let a = parse_line(r#"{"id":1,"kind":"stats"}"#);
        let b = parse_line(r#"{"kind":"stats","id":"different"}"#);
        assert_eq!(canonical_key(&a), canonical_key(&b));
        assert_eq!(canonical_key(&a), r#"{"kind":"stats"}"#);
        let c = parse_line(r#"{"kind":"scenario","fault":"open_coil"}"#);
        let d = parse_line(r#"{"fault":"open_coil","kind":"scenario"}"#);
        assert_eq!(canonical_key(&c), canonical_key(&d));
    }

    #[test]
    fn parse_covers_every_kind() {
        let cases = [
            (r#"{"kind":"stats"}"#, ServeKind::Stats),
            (r#"{"kind":"shutdown"}"#, ServeKind::Shutdown),
            (
                r#"{"kind":"scenario","fault":"pin_short_gnd","pin":1,"preset":"low_q"}"#,
                ServeKind::Scenario,
            ),
            (
                r#"{"kind":"campaign","campaign":"yield","dies":8,"seed":3,"window":0.1}"#,
                ServeKind::Campaign,
            ),
            (
                r#"{"kind":"transient","deck":{"elements":[]},"dt":1e-6,"t_end":1e-3}"#,
                ServeKind::Transient,
            ),
            (
                r#"{"kind":"prove","preset":"datasheet_3mhz"}"#,
                ServeKind::Prove,
            ),
        ];
        for (line, kind) in cases {
            let req = parse_request(&parse_line(line)).expect(line);
            assert_eq!(req.kind(), kind, "{line}");
        }
    }

    #[test]
    fn parse_rejects_bad_requests_with_field_naming_messages() {
        let cases = [
            (r#"[1,2]"#, "object"),
            (r#"{"id":4}"#, "kind"),
            (r#"{"kind":"warp"}"#, "warp"),
            (r#"{"kind":"scenario","fault":"rs_drift"}"#, "factor"),
            (
                r#"{"kind":"scenario","fault":"missing_cap","pin":7}"#,
                "pin",
            ),
            (r#"{"kind":"scenario","fault":"flux"}"#, "flux"),
            (
                r#"{"kind":"transient","deck":{},"dt":0.0,"t_end":1.0}"#,
                "dt",
            ),
            (r#"{"kind":"campaign","campaign":"yield","dies":0}"#, "dies"),
            (r#"{"kind":"campaign","campaign":"sweep"}"#, "sweep"),
            (r#"{"kind":"prove","preset":"warp_tank"}"#, "warp_tank"),
        ];
        for (line, needle) in cases {
            let err = parse_request(&parse_line(line)).expect_err(line);
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn fault_tokens_round_trip_the_catalog() {
        for fault in Fault::catalog() {
            let token = fault_token(fault);
            let (pin, factor) = match fault {
                Fault::PinShortToGround { pin }
                | Fault::PinShortToSupply { pin }
                | Fault::MissingCapacitor { pin } => (Some(pin as i64), None),
                Fault::RsDrift { factor } => (None, Some(factor)),
                _ => (None, None),
            };
            assert_eq!(parse_fault(token, pin, factor), Ok(fault), "{token}");
        }
    }

    #[test]
    fn response_lines_are_byte_exact() {
        assert_eq!(
            response_line(
                &Json::Int(7),
                ServeStatus::Ok,
                &Body::Payload("{\"x\":1}".to_string())
            ),
            r#"{"id":7,"status":"ok","result":{"x":1}}"#
        );
        assert_eq!(
            response_line(
                &Json::Null,
                ServeStatus::BadRequest,
                &Body::Error("broken \"line\"".to_string())
            ),
            r#"{"id":null,"status":"bad_request","error":"broken \"line\""}"#
        );
    }

    #[test]
    fn only_simulation_kinds_are_cacheable() {
        assert!(
            parse_request(&parse_line(r#"{"kind":"scenario","fault":"open_coil"}"#))
                .map(|r| r.cacheable())
                .expect("parses")
        );
        assert!(Request::Prove {
            preset: Preset::FastTest
        }
        .cacheable());
        assert!(!Request::Stats.cacheable());
        assert!(!Request::Shutdown.cacheable());
    }
}
