//! # lcosc-campaign — deterministic parallel campaign engine
//!
//! Every statistical claim in the paper is a *campaign*: a batch of
//! independent simulation jobs whose results are reduced into one report —
//! Monte-Carlo DAC yield draws (§3/Fig 8), FMEA fault scenarios (§5/§7),
//! Q/L/C sweep points. This crate runs such campaigns on a pool of worker
//! threads while keeping the outcome **bit-identical to the serial run**:
//!
//! - per-job RNG seeds derive from `(campaign_seed, job_index)` only
//!   ([`seed::job_seed`]), never from scheduling;
//! - results are re-assembled and reduced in job-index order
//!   ([`Campaign::run_reduce`]), so even non-commutative reductions (float
//!   accumulation, first-error-wins) are thread-count invariant;
//! - the only machine-dependent output is the wall-clock in
//!   [`CampaignStats`], reported separately from the results.
//!
//! The crate is dependency-free (`std` only, `forbid(unsafe_code)` via the
//! workspace lints; parallelism is `std::thread::scope` + channels) and
//! also hosts the byte-stable [`json`] writer the golden-file regression
//! tests are built on.
//!
//! ```
//! use lcosc_campaign::Campaign;
//!
//! // A toy Monte-Carlo campaign: mean of 1000 seeded draws.
//! let (sum, stats) = Campaign::new("mc", (0u32..1000).collect())
//!     .seed(7)
//!     .threads(4)
//!     .run_reduce(
//!         |ctx, _die| (ctx.seed >> 11) as f64 / (1u64 << 53) as f64,
//!         0.0f64,
//!         |acc, x| acc + x,
//!     );
//! assert_eq!(stats.jobs, 1000);
//! // Identical for any thread count, including 1.
//! let (serial, _) = Campaign::new("mc", (0u32..1000).collect())
//!     .seed(7)
//!     .run_reduce(
//!         |ctx, _die| (ctx.seed >> 11) as f64 / (1u64 << 53) as f64,
//!         0.0f64,
//!         |acc, x| acc + x,
//!     );
//! assert_eq!(sum, serial);
//! ```

#![warn(missing_docs)]

pub mod batch;
mod engine;
pub mod json;
pub mod seed;

pub use batch::{BatchPlan, BatchStats, BatchUnit, CampaignBatch};
pub use engine::{Campaign, CampaignOutcome, CampaignStats, JobCtx};
pub use json::{Json, JsonParseError};
pub use seed::{digest_bytes, job_seed};
