//! The campaign execution engine: a dependency-free pool of worker threads
//! draining an indexed job queue, with results re-assembled (and reduced)
//! in job-index order.
//!
//! # Determinism contract
//!
//! For a fixed job list and campaign seed the produced [`CampaignOutcome`]
//! is **bit-identical for every thread count and every scheduling order**:
//!
//! - each job's RNG seed is [`crate::seed::job_seed`]`(campaign_seed,
//!   index)` — a pure function of campaign seed and job index, never of
//!   the executing thread or of other jobs;
//! - workers never share mutable state; a job sees only its own input and
//!   its [`JobCtx`];
//! - results come back tagged with their job index and are stored into a
//!   per-index slot, so reduction always folds them in index order — the
//!   same order the serial path produces.
//!
//! Only the wall-clock in [`CampaignStats`] depends on the machine.
//!
//! The same split governs tracing: when a [`lcosc_trace::Trace`] is
//! attached via [`Campaign::trace`], the engine emits one
//! [`TraceEvent::CampaignJob`] (index + seed — deterministic) and one
//! [`TraceEvent::CampaignJobTiming`] (wall-clock — machine-dependent) per
//! job, always **from the coordinator thread in job-index order** after
//! the results are assembled, so the golden event stream is identical for
//! every thread count.

use crate::seed::job_seed;
use lcosc_trace::{Trace, TraceEvent};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Per-job context handed to the worker closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCtx {
    /// Index of the job in the campaign's job list.
    pub index: usize,
    /// Deterministic RNG seed for this job (`job_seed(campaign_seed, index)`).
    pub seed: u64,
}

/// Execution statistics of one campaign run. Timing is machine-dependent;
/// everything else is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStats {
    /// Campaign label (used in reports).
    pub name: String,
    /// Number of jobs executed.
    pub jobs: usize,
    /// Worker threads used (1 = serial in-line execution).
    pub threads: usize,
    /// Wall-clock time of the whole campaign.
    pub wall: Duration,
}

impl CampaignStats {
    /// Throughput in jobs per second (`None` when the run was too fast to
    /// time meaningfully).
    pub fn jobs_per_second(&self) -> Option<f64> {
        let secs = self.wall.as_secs_f64();
        (secs > 0.0).then(|| self.jobs as f64 / secs)
    }
}

/// Results plus statistics of a completed campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome<R> {
    /// One result per job, in job-index order.
    pub results: Vec<R>,
    /// Execution statistics.
    pub stats: CampaignStats,
}

/// Builder for a parallel campaign over a list of independent jobs.
///
/// ```
/// use lcosc_campaign::Campaign;
///
/// let squares = Campaign::new("squares", (0u64..100).collect())
///     .seed(42)
///     .threads(4)
///     .run(|_ctx, &x| x * x);
/// assert_eq!(squares.results[7], 49);
/// ```
#[derive(Debug, Clone)]
pub struct Campaign<J> {
    name: String,
    jobs: Vec<J>,
    threads: usize,
    seed: u64,
    trace: Trace,
}

impl<J: Sync> Campaign<J> {
    /// Creates a campaign named `name` over `jobs`. Defaults: 1 thread
    /// (serial), seed 0, tracing off.
    pub fn new(name: impl Into<String>, jobs: Vec<J>) -> Self {
        Campaign {
            name: name.into(),
            jobs,
            threads: 1,
            seed: 0,
            trace: Trace::off(),
        }
    }

    /// Attaches a trace handle. Per-job [`TraceEvent::CampaignJob`] and
    /// [`TraceEvent::CampaignJobTiming`] events are emitted in job-index
    /// order from the coordinator thread once the run completes.
    #[must_use]
    pub fn trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the worker-thread count. `0` means "all available cores";
    /// `1` (the default) executes jobs in-line on the calling thread.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            threads
        };
        self
    }

    /// Sets the campaign seed from which every job seed is derived.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the campaign has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Executes every job and returns the results in job-index order.
    ///
    /// `worker` must be a pure function of `(ctx, job)` for the
    /// determinism contract to hold; the engine guarantees the rest.
    pub fn run<R, F>(self, worker: F) -> CampaignOutcome<R>
    where
        R: Send,
        F: Fn(JobCtx, &J) -> R + Sync,
    {
        let start = Instant::now();
        let n = self.jobs.len();
        let threads = self.threads.min(n.max(1));
        let (results, walls) = if threads <= 1 {
            // Serial fast path: no pool, no channel — identical to a plain
            // loop (and to what the workspace did before this crate).
            let mut walls = Vec::with_capacity(n);
            let results = self
                .jobs
                .iter()
                .enumerate()
                .map(|(i, job)| {
                    let t0 = Instant::now();
                    let r = worker(
                        JobCtx {
                            index: i,
                            seed: job_seed(self.seed, i as u64),
                        },
                        job,
                    );
                    walls.push(t0.elapsed().as_nanos());
                    r
                })
                .collect();
            (results, walls)
        } else {
            run_pool(&self.jobs, self.seed, threads, &worker)
        };
        // Trace emission happens here, on the coordinator thread, after
        // every slot is filled — index order by construction, regardless
        // of which worker finished when.
        for (i, wall_ns) in walls.into_iter().enumerate() {
            let index = i as u64;
            let seed = job_seed(self.seed, index);
            self.trace.emit(|| TraceEvent::CampaignJob { index, seed });
            self.trace
                .emit(|| TraceEvent::CampaignJobTiming { index, wall_ns });
        }
        CampaignOutcome {
            results,
            stats: CampaignStats {
                name: self.name,
                jobs: n,
                threads,
                wall: start.elapsed(),
            },
        }
    }

    /// Executes every job, then folds the results **in job-index order**
    /// with `reduce` starting from `init`.
    ///
    /// Because the fold order is the job order (never the completion
    /// order), non-commutative reductions — float accumulation, "first
    /// failure wins" — still give thread-count-invariant answers.
    pub fn run_reduce<R, A, F, G>(self, worker: F, init: A, mut reduce: G) -> (A, CampaignStats)
    where
        R: Send,
        F: Fn(JobCtx, &J) -> R + Sync,
        G: FnMut(A, R) -> A,
    {
        let outcome = self.run(worker);
        let mut acc = init;
        for r in outcome.results {
            acc = reduce(acc, r);
        }
        (acc, outcome.stats)
    }

    /// Executes fallible jobs; on failure returns the error of the
    /// *lowest-indexed* failing job (deterministic regardless of which
    /// failure was observed first in wall-clock time).
    ///
    /// # Errors
    ///
    /// Returns the first (by job index) worker error.
    pub fn try_run<R, E, F>(self, worker: F) -> Result<CampaignOutcome<R>, E>
    where
        R: Send,
        E: Send,
        F: Fn(JobCtx, &J) -> Result<R, E> + Sync,
    {
        let outcome = self.run(worker);
        let stats = outcome.stats;
        let mut results = Vec::with_capacity(outcome.results.len());
        for r in outcome.results {
            results.push(r?);
        }
        Ok(CampaignOutcome { results, stats })
    }
}

/// The parallel path: `threads` scoped workers drain an atomic job counter
/// and send `(index, wall_ns, result)` triples back over a channel; the
/// calling thread stores each into its slot. Returns results and per-job
/// wall-clock durations, both in job-index order.
fn run_pool<J, R, F>(jobs: &[J], seed: u64, threads: usize, worker: &F) -> (Vec<R>, Vec<u128>)
where
    J: Sync,
    R: Send,
    F: Fn(JobCtx, &J) -> R + Sync,
{
    let n = jobs.len();
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<(R, u128)>> = (0..n).map(|_| None).collect();
    let (tx, rx) = mpsc::channel::<(usize, u128, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || {
                loop {
                    // Claim the next unclaimed job; the counter is the whole
                    // scheduler, so an idle worker "steals" whatever a busy
                    // one has not yet claimed.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let ctx = JobCtx {
                        index: i,
                        seed: job_seed(seed, i as u64),
                    };
                    let t0 = Instant::now();
                    let result = worker(ctx, &jobs[i]);
                    if tx.send((i, t0.elapsed().as_nanos(), result)).is_err() {
                        break; // receiver gone: abandon quietly
                    }
                }
            });
        }
        drop(tx);
        for (i, wall_ns, result) in rx {
            slots[i] = Some((result, wall_ns));
        }
    });
    let mut results = Vec::with_capacity(n);
    let mut walls = Vec::with_capacity(n);
    for s in slots {
        let (r, w) = s.expect("pool delivered every job result");
        results.push(r);
        walls.push(w);
    }
    (results, walls)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let jobs: Vec<u64> = (0..257).collect();
        let serial = Campaign::new("t", jobs.clone())
            .seed(9)
            .run(|ctx, &j| (ctx.seed ^ j, ctx.index));
        for threads in [2, 3, 8] {
            let par = Campaign::new("t", jobs.clone())
                .seed(9)
                .threads(threads)
                .run(|ctx, &j| (ctx.seed ^ j, ctx.index));
            assert_eq!(serial.results, par.results, "threads = {threads}");
        }
    }

    #[test]
    fn reduce_folds_in_job_order() {
        // A non-commutative reduction (string concat) must match serial.
        let jobs: Vec<usize> = (0..64).collect();
        let fold = |acc: String, s: String| acc + &s;
        let (serial, _) = Campaign::new("t", jobs.clone()).run_reduce(
            |_, j| format!("{j},"),
            String::new(),
            fold,
        );
        let (par, stats) = Campaign::new("t", jobs).threads(8).run_reduce(
            |_, j| format!("{j},"),
            String::new(),
            fold,
        );
        assert_eq!(serial, par);
        assert_eq!(stats.threads, 8);
        assert_eq!(stats.jobs, 64);
    }

    #[test]
    fn try_run_reports_lowest_indexed_error() {
        let jobs: Vec<usize> = (0..100).collect();
        let res: Result<CampaignOutcome<usize>, usize> = Campaign::new("t", jobs)
            .threads(4)
            .try_run(|ctx, &j| if j % 30 == 7 { Err(ctx.index) } else { Ok(j) });
        assert_eq!(res.err(), Some(7));
    }

    #[test]
    fn traced_campaign_golden_events_are_thread_invariant() {
        use lcosc_trace::MemorySink;
        use std::sync::Arc;
        let run = |threads: usize| {
            let sink = Arc::new(MemorySink::new());
            Campaign::new("t", (0u64..33).collect())
                .seed(5)
                .threads(threads)
                .trace(Trace::new(sink.clone()))
                .run(|ctx, &j| ctx.seed ^ j);
            sink.snapshot()
        };
        let serial: Vec<TraceEvent> = run(1).into_iter().filter(TraceEvent::is_golden).collect();
        assert_eq!(serial.len(), 33, "one golden CampaignJob event per job");
        for threads in [2, 8] {
            let all = run(threads);
            assert_eq!(all.len(), 66, "job + timing event per job");
            let golden: Vec<TraceEvent> = all.into_iter().filter(TraceEvent::is_golden).collect();
            assert_eq!(golden, serial, "threads = {threads}");
        }
    }

    #[test]
    fn empty_campaign_is_fine() {
        let out = Campaign::new("t", Vec::<u8>::new())
            .threads(8)
            .run(|_, _| 1);
        assert!(out.results.is_empty());
        assert_eq!(out.stats.jobs, 0);
    }

    #[test]
    fn threads_zero_means_available_cores() {
        let c = Campaign::new("t", vec![(); 4]).threads(0);
        assert!(c.threads >= 1);
    }

    #[test]
    fn single_job_runs_once() {
        let out = Campaign::new("t", vec![5u32]).threads(8).run(|ctx, &j| {
            assert_eq!(ctx.index, 0);
            j * 2
        });
        assert_eq!(out.results, vec![10]);
        // Thread count is clamped to the job count.
        assert_eq!(out.stats.threads, 1);
    }

    #[test]
    fn stats_throughput_is_positive() {
        let out = Campaign::new("t", vec![(); 8]).run(|_, _| ());
        if let Some(jps) = out.stats.jobs_per_second() {
            assert!(jps > 0.0);
        }
    }
}
