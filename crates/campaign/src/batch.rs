//! Batched campaign scheduling: groups same-structure jobs so a worker can
//! solve a whole batch together, while keeping the engine's determinism
//! contract.
//!
//! [`CampaignBatch`] is the batching sibling of [`crate::Campaign`]. The
//! caller supplies a **group key** (typically a structural digest of the
//! job's deck); jobs sharing a key are scheduled as multi-job *units*
//! handed to the worker in one call, and odd lots fall back to width-1
//! units running the ordinary per-job path. The worker receives every
//! job's [`JobCtx`] with seeds hoisted at **planning** time
//! (`job_seed(campaign_seed, index)`), so batching can never reorder RNG
//! draws: a job's seed depends only on its index, exactly as in the
//! per-job engine.
//!
//! # Determinism contract
//!
//! For a fixed job list, campaign seed and group key, results are
//! bit-identical for every thread count, every unit width and every
//! scheduling order — provided the worker upholds its half: each job's
//! result must depend only on `(ctx, job)` (batched workers such as the
//! batched transient solver are bit-identical per lane by construction).
//! Golden trace events ([`TraceEvent::CampaignJob`]) are emitted from the
//! coordinator in job-index order, so the golden stream is byte-identical
//! to the per-job engine's for any schedule.
//!
//! The `LCOSC_BATCH=off` environment hatch (or the [`CampaignBatch::solo`]
//! builder, which tests prefer to avoid environment races) forces an
//! all-solo plan: every job becomes a width-1 unit, pinning the per-job
//! path while keeping scheduling, seeding and tracing identical.

use crate::engine::{CampaignOutcome, CampaignStats, JobCtx};
use crate::json::Json;
use crate::seed::job_seed;
use lcosc_trace::{Trace, TraceEvent};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Whether the `LCOSC_BATCH=off` hatch disables batched scheduling.
fn batching_disabled() -> bool {
    std::env::var_os("LCOSC_BATCH").is_some_and(|v| v == "off")
}

/// One schedulable unit: a slice of jobs sharing a group key, solved in a
/// single worker call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchUnit {
    /// Group key shared by every job in the unit.
    pub key: u64,
    /// Per-job contexts (index + seed hoisted at planning time), in job
    /// index order.
    pub ctxs: Vec<JobCtx>,
}

impl BatchUnit {
    /// Number of jobs in the unit.
    pub fn width(&self) -> usize {
        self.ctxs.len()
    }
}

/// Deterministic counters describing a batch plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Distinct group keys observed.
    pub groups: usize,
    /// Jobs scheduled in units of width ≥ 2.
    pub batched_jobs: usize,
    /// Jobs scheduled as width-1 units (odd lots, solo mode).
    pub solo_jobs: usize,
    /// Widest unit in the plan.
    pub max_width: usize,
}

/// An ordered schedule of [`BatchUnit`]s covering every job exactly once.
///
/// Units are ordered by their group's first appearance in the job list and
/// chunked in index order, so the plan is a pure function of (jobs, key,
/// seed, knobs) — stable across machines and runs, which is what the
/// `batch_grouping` golden fixture pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    /// Schedulable units in deterministic order.
    pub units: Vec<BatchUnit>,
    /// Plan-level counters.
    pub stats: BatchStats,
}

impl BatchPlan {
    /// Renders the plan as byte-stable JSON (keys as fixed-width hex so
    /// 64-bit digests survive exactly; [`Json::Int`] is `i64`).
    pub fn to_json(&self) -> Json {
        let units: Vec<Json> = self
            .units
            .iter()
            .map(|u| {
                Json::obj([
                    ("key", Json::from(format!("{:016x}", u.key))),
                    (
                        "indices",
                        Json::Array(u.ctxs.iter().map(|c| Json::from(c.index)).collect()),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("groups", Json::from(self.stats.groups)),
            ("batched_jobs", Json::from(self.stats.batched_jobs)),
            ("solo_jobs", Json::from(self.stats.solo_jobs)),
            ("max_width", Json::from(self.stats.max_width)),
            ("units", Json::Array(units)),
        ])
    }
}

/// Builder for a batched campaign over a list of jobs.
///
/// ```
/// use lcosc_campaign::CampaignBatch;
///
/// // Jobs group by value parity; each unit is squared in one call.
/// let out = CampaignBatch::new("squares", (0u64..10).collect())
///     .threads(2)
///     .run(|&x| x % 2, |_ctxs, jobs| jobs.iter().map(|&&x| x * x).collect());
/// assert_eq!(out.results[7], 49);
/// ```
#[derive(Debug, Clone)]
pub struct CampaignBatch<J> {
    name: String,
    jobs: Vec<J>,
    threads: usize,
    seed: u64,
    trace: Trace,
    min_batch: usize,
    max_width: usize,
    solo: bool,
}

impl<J: Sync> CampaignBatch<J> {
    /// Creates a batched campaign named `name` over `jobs`. Defaults:
    /// 1 thread, seed 0, tracing off, minimum batch width 2, maximum unit
    /// width 64, solo mode from the `LCOSC_BATCH=off` hatch.
    pub fn new(name: impl Into<String>, jobs: Vec<J>) -> Self {
        CampaignBatch {
            name: name.into(),
            jobs,
            threads: 1,
            seed: 0,
            trace: Trace::off(),
            min_batch: 2,
            max_width: 64,
            solo: batching_disabled(),
        }
    }

    /// Attaches a trace handle (golden `CampaignJob` + timing events are
    /// emitted from the coordinator in job-index order, as in
    /// [`crate::Campaign`]).
    #[must_use]
    pub fn trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the worker-thread count. `0` means "all available cores".
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            threads
        };
        self
    }

    /// Sets the campaign seed from which every job seed is derived.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Groups smaller than `min` are scheduled as width-1 units (odd
    /// lots). Minimum 2.
    #[must_use]
    pub fn min_batch(mut self, min: usize) -> Self {
        self.min_batch = min.max(2);
        self
    }

    /// Caps unit width; larger groups are chunked in index order.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn max_width(mut self, width: usize) -> Self {
        assert!(width > 0, "max_width must be nonzero");
        self.max_width = width;
        self
    }

    /// Forces (or un-forces) all-solo scheduling, overriding the
    /// `LCOSC_BATCH` hatch. Tests use this to compare batched and per-job
    /// scheduling in-process without racing on environment variables.
    #[must_use]
    pub fn solo(mut self, solo: bool) -> Self {
        self.solo = solo;
        self
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the campaign has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Builds the deterministic batch plan for `key` without running
    /// anything: jobs group by key in first-appearance order; groups reach
    /// the worker as units chunked at the width cap; undersized groups
    /// (and everything, in solo mode) become width-1 units. Seeds are
    /// derived here — at planning time — so execution cannot perturb them.
    pub fn plan<K>(&self, key: K) -> BatchPlan
    where
        K: Fn(&J) -> u64,
    {
        let ctx = |i: usize| JobCtx {
            index: i,
            seed: job_seed(self.seed, i as u64),
        };
        // Group job indices by key, groups ordered by first appearance.
        let mut order: Vec<u64> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, job) in self.jobs.iter().enumerate() {
            let k = key(job);
            match order.iter().position(|&o| o == k) {
                Some(g) => groups[g].push(i),
                None => {
                    order.push(k);
                    groups.push(vec![i]);
                }
            }
        }
        let mut stats = BatchStats {
            groups: order.len(),
            ..BatchStats::default()
        };
        let mut units = Vec::new();
        for (k, indices) in order.into_iter().zip(groups) {
            if self.solo || indices.len() < self.min_batch {
                stats.solo_jobs += indices.len();
                stats.max_width = stats.max_width.max(1);
                units.extend(indices.into_iter().map(|i| BatchUnit {
                    key: k,
                    ctxs: vec![ctx(i)],
                }));
            } else {
                stats.batched_jobs += indices.len();
                for chunk in indices.chunks(self.max_width) {
                    stats.max_width = stats.max_width.max(chunk.len());
                    units.push(BatchUnit {
                        key: k,
                        ctxs: chunk.iter().map(|&i| ctx(i)).collect(),
                    });
                }
            }
        }
        BatchPlan { units, stats }
    }

    /// Executes the plan for `key`, calling `worker` once per unit with
    /// the unit's contexts and jobs, and returns per-job results in job
    /// index order.
    ///
    /// # Panics
    ///
    /// Panics if the worker returns a result count different from the
    /// unit width.
    pub fn run<R, K, F>(self, key: K, worker: F) -> CampaignOutcome<R>
    where
        R: Send,
        K: Fn(&J) -> u64,
        F: Fn(&[JobCtx], &[&J]) -> Vec<R> + Sync,
    {
        let start = Instant::now();
        let n = self.jobs.len();
        let plan = self.plan(key);
        let threads = self.threads.min(plan.units.len().max(1));
        let (results, walls) = run_units(&self.jobs, &plan.units, threads, &worker);
        for (i, wall_ns) in walls.into_iter().enumerate() {
            let index = i as u64;
            let seed = job_seed(self.seed, index);
            self.trace.emit(|| TraceEvent::CampaignJob { index, seed });
            self.trace
                .emit(|| TraceEvent::CampaignJobTiming { index, wall_ns });
        }
        CampaignOutcome {
            results,
            stats: CampaignStats {
                name: self.name,
                jobs: n,
                threads,
                wall: start.elapsed(),
            },
        }
    }

    /// Executes the plan, then folds the results **in job-index order**
    /// with `reduce` starting from `init` (non-commutative reductions stay
    /// thread-count-invariant, as in [`crate::Campaign::run_reduce`]).
    pub fn run_reduce<R, A, K, F, G>(
        self,
        key: K,
        worker: F,
        init: A,
        mut reduce: G,
    ) -> (A, CampaignStats)
    where
        R: Send,
        K: Fn(&J) -> u64,
        F: Fn(&[JobCtx], &[&J]) -> Vec<R> + Sync,
        G: FnMut(A, R) -> A,
    {
        let outcome = self.run(key, worker);
        let mut acc = init;
        for r in outcome.results {
            acc = reduce(acc, r);
        }
        (acc, outcome.stats)
    }

    /// Executes fallible units; on failure returns the error of the
    /// *lowest-indexed* failing job, regardless of completion order.
    ///
    /// # Errors
    ///
    /// Returns the first (by job index) per-job error.
    pub fn try_run<R, E, K, F>(self, key: K, worker: F) -> Result<CampaignOutcome<R>, E>
    where
        R: Send,
        E: Send,
        K: Fn(&J) -> u64,
        F: Fn(&[JobCtx], &[&J]) -> Vec<Result<R, E>> + Sync,
    {
        let outcome = self.run(key, worker);
        let stats = outcome.stats;
        let mut results = Vec::with_capacity(outcome.results.len());
        for r in outcome.results {
            results.push(r?);
        }
        Ok(CampaignOutcome { results, stats })
    }

    /// Runs with a uniform group key (every job in one group): the whole
    /// campaign batches by width cap alone. Used by workloads whose jobs
    /// are structurally identical by construction.
    pub fn run_uniform<R, F>(self, worker: F) -> CampaignOutcome<R>
    where
        R: Send,
        F: Fn(&[JobCtx], &[&J]) -> Vec<R> + Sync,
    {
        self.run(|_| 0, worker)
    }
}

/// Executes `units` over a worker pool (serial when `threads <= 1`),
/// reassembling per-job results and wall-clock attributions in job-index
/// order. Every job in a unit is attributed the unit's wall time.
fn run_units<J, R, F>(
    jobs: &[J],
    units: &[BatchUnit],
    threads: usize,
    worker: &F,
) -> (Vec<R>, Vec<u128>)
where
    J: Sync,
    R: Send,
    F: Fn(&[JobCtx], &[&J]) -> Vec<R> + Sync,
{
    let n = jobs.len();
    let run_unit = |unit: &BatchUnit| -> (Vec<R>, u128) {
        let unit_jobs: Vec<&J> = unit.ctxs.iter().map(|c| &jobs[c.index]).collect();
        let t0 = Instant::now();
        let rs = worker(&unit.ctxs, &unit_jobs);
        assert_eq!(
            rs.len(),
            unit.width(),
            "batch worker must return one result per job"
        );
        (rs, t0.elapsed().as_nanos())
    };
    let mut slots: Vec<Option<(R, u128)>> = (0..n).map(|_| None).collect();
    if threads <= 1 {
        for unit in units {
            let (rs, wall) = run_unit(unit);
            for (ctx, r) in unit.ctxs.iter().zip(rs) {
                slots[ctx.index] = Some((r, wall));
            }
        }
    } else {
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Vec<R>, u128)>();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let next = &next;
                let run_unit = &run_unit;
                scope.spawn(move || loop {
                    let u = next.fetch_add(1, Ordering::Relaxed);
                    if u >= units.len() {
                        break;
                    }
                    let (rs, wall) = run_unit(&units[u]);
                    if tx.send((u, rs, wall)).is_err() {
                        break; // receiver gone: abandon quietly
                    }
                });
            }
            drop(tx);
            for (u, rs, wall) in rx {
                for (ctx, r) in units[u].ctxs.iter().zip(rs) {
                    slots[ctx.index] = Some((r, wall));
                }
            }
        });
    }
    let mut results = Vec::with_capacity(n);
    let mut walls = Vec::with_capacity(n);
    for s in slots {
        let (r, w) = s.expect("batch plan covered every job");
        results.push(r);
        walls.push(w);
    }
    (results, walls)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Worker echoing `(index, seed, unit_width, job)` so tests can see
    /// exactly how each job was scheduled and seeded.
    fn echo(ctxs: &[JobCtx], jobs: &[&u64]) -> Vec<(usize, u64, usize, u64)> {
        ctxs.iter()
            .zip(jobs)
            .map(|(c, &&j)| (c.index, c.seed, ctxs.len(), j))
            .collect()
    }

    #[test]
    fn plan_groups_by_first_appearance_and_chunks() {
        let jobs: Vec<u64> = vec![3, 5, 3, 3, 5, 9, 3, 3];
        let plan = CampaignBatch::new("t", jobs)
            .solo(false)
            .max_width(3)
            .plan(|&j| j);
        // Group 3: indices [0,2,3,6,7] chunked at 3; group 5: [1,4];
        // group 9: [5] is an odd lot.
        let widths: Vec<usize> = plan.units.iter().map(BatchUnit::width).collect();
        assert_eq!(widths, vec![3, 2, 2, 1]);
        assert_eq!(plan.units[0].key, 3);
        assert_eq!(
            plan.units[0]
                .ctxs
                .iter()
                .map(|c| c.index)
                .collect::<Vec<_>>(),
            vec![0, 2, 3]
        );
        assert_eq!(plan.stats.groups, 3);
        assert_eq!(plan.stats.batched_jobs, 7);
        assert_eq!(plan.stats.solo_jobs, 1);
        assert_eq!(plan.stats.max_width, 3);
    }

    #[test]
    fn seeds_are_hoisted_at_plan_time_and_schedule_invariant() {
        let jobs: Vec<u64> = (0..40).map(|i| i % 4).collect();
        let solo = CampaignBatch::new("t", jobs.clone())
            .seed(11)
            .solo(true)
            .run(|&j| j, echo);
        for (threads, max_width) in [(1, 8), (4, 8), (4, 3), (8, 64)] {
            let batched = CampaignBatch::new("t", jobs.clone())
                .seed(11)
                .solo(false)
                .threads(threads)
                .max_width(max_width)
                .run(|&j| j, echo);
            for (s, b) in solo.results.iter().zip(&batched.results) {
                assert_eq!(s.0, b.0, "index");
                assert_eq!(s.1, b.1, "seed must not depend on scheduling");
                assert_eq!(s.3, b.3, "job payload");
            }
        }
        // And the seeds are the engine's own schedule.
        for r in &solo.results {
            assert_eq!(r.1, job_seed(11, r.0 as u64));
        }
    }

    #[test]
    fn solo_mode_forces_width_one_units() {
        let jobs: Vec<u64> = vec![1; 10];
        let out = CampaignBatch::new("t", jobs).solo(true).run(|&j| j, echo);
        assert!(out.results.iter().all(|r| r.2 == 1), "all units width 1");
    }

    #[test]
    fn odd_lots_run_solo_and_everything_is_covered() {
        let jobs: Vec<u64> = vec![7, 7, 8, 9, 9, 9];
        let out = CampaignBatch::new("t", jobs)
            .solo(false)
            .min_batch(3)
            .threads(3)
            .run(|&j| j, echo);
        let widths: Vec<usize> = out.results.iter().map(|r| r.2).collect();
        // Group 7 (2 jobs) is under min_batch=3 → solo; 8 solo; 9 batched.
        assert_eq!(widths, vec![1, 1, 1, 3, 3, 3]);
        let indices: Vec<usize> = out.results.iter().map(|r| r.0).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn try_run_reports_lowest_indexed_error() {
        let jobs: Vec<u64> = (0..30).collect();
        let res: Result<CampaignOutcome<u64>, usize> = CampaignBatch::new("t", jobs)
            .solo(false)
            .threads(4)
            .try_run(
                |&j| j % 3,
                |ctxs, jobs| {
                    ctxs.iter()
                        .zip(jobs)
                        .map(|(c, &&j)| if j % 10 == 7 { Err(c.index) } else { Ok(j) })
                        .collect()
                },
            );
        assert_eq!(res.err(), Some(7));
    }

    #[test]
    fn reduce_folds_in_job_order() {
        let jobs: Vec<u64> = (0..20).collect();
        let fold = |acc: String, s: String| acc + &s;
        let (serial, _) = CampaignBatch::new("t", jobs.clone()).solo(true).run_reduce(
            |&j| j % 2,
            |_, jobs| jobs.iter().map(|j| format!("{j},")).collect(),
            String::new(),
            fold,
        );
        let (batched, _) = CampaignBatch::new("t", jobs)
            .solo(false)
            .threads(4)
            .run_reduce(
                |&j| j % 2,
                |_, jobs| jobs.iter().map(|j| format!("{j},")).collect(),
                String::new(),
                fold,
            );
        assert_eq!(serial, batched);
    }

    #[test]
    fn traced_golden_events_match_the_per_job_engine() {
        use lcosc_trace::MemorySink;
        use std::sync::Arc;
        let jobs: Vec<u64> = (0..17).map(|i| i % 2).collect();
        let run = |threads: usize, solo: bool| {
            let sink = Arc::new(MemorySink::new());
            CampaignBatch::new("t", jobs.clone())
                .seed(5)
                .solo(solo)
                .threads(threads)
                .trace(Trace::new(sink.clone()))
                .run(|&j| j, echo);
            sink.snapshot()
                .into_iter()
                .filter(TraceEvent::is_golden)
                .collect::<Vec<_>>()
        };
        let reference = run(1, true);
        assert_eq!(reference.len(), 17);
        for (threads, solo) in [(1, false), (4, false), (4, true)] {
            assert_eq!(
                run(threads, solo),
                reference,
                "threads={threads} solo={solo}"
            );
        }
    }

    #[test]
    fn plan_json_is_ordered_and_stable() {
        let jobs: Vec<u64> = vec![2, 1, 2];
        let plan = CampaignBatch::new("t", jobs).solo(false).plan(|&j| j);
        let json = plan.to_json().render();
        assert_eq!(
            json,
            r#"{"groups":2,"batched_jobs":2,"solo_jobs":1,"max_width":2,"units":[{"key":"0000000000000002","indices":[0,2]},{"key":"0000000000000001","indices":[1]}]}"#
        );
    }

    #[test]
    fn empty_campaign_is_fine() {
        let out = CampaignBatch::new("t", Vec::<u64>::new())
            .threads(8)
            .run_uniform(|_, _| Vec::<u8>::new());
        assert!(out.results.is_empty());
        assert_eq!(out.stats.jobs, 0);
    }

    #[test]
    #[should_panic(expected = "one result per job")]
    fn short_worker_output_panics() {
        let _ = CampaignBatch::new("t", vec![1u64, 1])
            .solo(false)
            .run_uniform(|_, _| vec![0u8]);
    }
}
