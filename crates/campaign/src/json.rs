//! A minimal, byte-stable JSON value tree, renderer and parser.
//!
//! The golden-file regression layer compares serialized campaign results
//! *byte for byte* between runs and between thread counts, so the writer
//! must be deterministic down to the last character:
//!
//! - objects keep their insertion order (no hash-map reordering),
//! - floats render with Rust's shortest-round-trip formatting (`{:?}`),
//!   which is a pure function of the bit pattern,
//! - non-finite floats render as `null` (JSON has no NaN/Infinity),
//! - no locale, no platform-dependent whitespace.
//!
//! [`Json::parse`] is the matching reader: it accepts RFC 8259 documents
//! (the serving layer's request protocol) and round-trips the renderer —
//! `parse(render(v)) == v` for every finite tree, which
//! `crates/campaign/tests/json_roundtrip.rs` pins as a property.
//! [`Json::canonicalize`] produces the ordered-key form the serving
//! layer's content-addressed result cache hashes.

use std::fmt::Write as _;

/// An ordered JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (rendered without a decimal point).
    Int(i64),
    /// Float (shortest-round-trip decimal; non-finite renders as `null`).
    Float(f64),
    /// String (escaped per RFC 8259).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, keeping their order.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with newlines and `indent`-space indentation — the format
    /// used for golden fixtures, where reviewable diffs matter.
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let pad = |out: &mut String, level: usize| {
            if let Some(w) = indent {
                out.push('\n');
                for _ in 0..w * level {
                    out.push(' ');
                }
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    pad(out, depth);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (k, (key, value)) in pairs.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str(if indent.is_some() { "\": " } else { "\":" });
                    value.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    pad(out, depth);
                }
                out.push('}');
            }
        }
    }
}

/// A syntax error produced by [`Json::parse`], pointing at the byte
/// offset where parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// 0-based byte offset of the offending input position.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Maximum container nesting [`Json::parse`] accepts. The serving layer
/// feeds the parser untrusted request lines; a fixed depth cap turns a
/// deeply-nested bomb into a typed error instead of a stack overflow.
pub const MAX_PARSE_DEPTH: usize = 128;

impl Json {
    /// Parses an RFC 8259 JSON document.
    ///
    /// Numbers without a fraction, exponent or overflow parse as
    /// [`Json::Int`]; everything else numeric parses as [`Json::Float`].
    /// Object keys keep their document order (duplicates included), so
    /// rendering the result reproduces the writer's byte-stable form:
    /// `parse(render(v)) == v` for every tree with finite floats.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] carrying the byte offset of the first
    /// syntax error, trailing garbage, or a container nested deeper than
    /// [`MAX_PARSE_DEPTH`].
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// The canonical form of this value: every object's keys sorted
    /// (bytewise ascending, later duplicates dropped), recursively.
    ///
    /// Rendering the canonical form compactly gives the cache key string
    /// the serving layer hashes: two requests that differ only in key
    /// order or duplicate keys address the same cache entry.
    #[must_use]
    pub fn canonicalize(&self) -> Json {
        match self {
            Json::Array(items) => Json::Array(items.iter().map(Json::canonicalize).collect()),
            Json::Object(pairs) => {
                let mut sorted: Vec<(String, Json)> = Vec::with_capacity(pairs.len());
                for (k, v) in pairs {
                    let canon = v.canonicalize();
                    match sorted.binary_search_by(|(sk, _)| sk.as_str().cmp(k)) {
                        // Later duplicates win, matching the common
                        // last-key-wins object semantics.
                        Ok(i) => sorted[i].1 = canon,
                        Err(i) => sorted.insert(i, (k.clone(), canon)),
                    }
                }
                Json::Object(sorted)
            }
            other => other.clone(),
        }
    }

    /// Looks up a key in an object (first occurrence). `None` when the
    /// value is not an object or lacks the key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The integer payload, when this is a [`Json::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric payload as `f64` ([`Json::Int`] or [`Json::Float`]).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }
}

/// Recursive-descent parser state over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", char::from(b))))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_PARSE_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", char::from(c)))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low half must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("invalid escape \\{}", char::from(other))))
                        }
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // boundaries are already valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| (b & 0xc0) == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|b| char::from(b).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits after \\u"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
            return Err(self.err("expected a digit"));
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(self.err("expected a digit after '.'"));
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(self.err("expected a digit in exponent"));
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans ascii bytes");
        if integral {
            // Integers wider than i64 fall back to the float
            // representation rather than erroring.
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        let v: f64 = text
            .parse()
            .map_err(|_| self.err(format!("malformed number {text:?}")))?;
        Ok(Json::Float(v))
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(i64::from(v))
    }
}
impl From<u8> for Json {
    fn from(v: u8) -> Json {
        Json::Int(i64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

/// Escapes a string per RFC 8259.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_matches_expectation() {
        let v = Json::obj([
            ("a", Json::Int(1)),
            ("b", Json::Array(vec![Json::Float(0.5), Json::Null])),
            ("c", Json::from("x\"y")),
        ]);
        assert_eq!(v.render(), r#"{"a":1,"b":[0.5,null],"c":"x\"y"}"#);
    }

    #[test]
    fn floats_render_shortest_roundtrip() {
        assert_eq!(Json::Float(1.0).render(), "1.0");
        assert_eq!(Json::Float(0.1).render(), "0.1");
        assert_eq!(Json::Float(-0.0).render(), "-0.0");
        assert_eq!(Json::Float(1e-9).render(), "1e-9");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn pretty_rendering_is_stable_and_parsable_shape() {
        let v = Json::obj([("k", Json::Array(vec![Json::Int(1), Json::Int(2)]))]);
        let pretty = v.render_pretty(2);
        assert_eq!(pretty, "{\n  \"k\": [\n    1,\n    2\n  ]\n}\n");
    }

    #[test]
    fn empty_containers_render_tight() {
        assert_eq!(Json::Array(vec![]).render_pretty(2), "[]\n");
        assert_eq!(Json::Object(vec![]).render(), "{}");
    }

    #[test]
    fn control_characters_escape() {
        assert_eq!(Json::from("a\u{1}b\tc").render(), "\"a\\u0001b\\tc\"");
    }

    #[test]
    fn object_order_is_insertion_order() {
        let v = Json::obj([("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("0.5").unwrap(), Json::Float(0.5));
        assert_eq!(Json::parse("1e-9").unwrap(), Json::Float(1e-9));
        assert_eq!(Json::parse("-0.0").unwrap(), Json::Float(-0.0));
        assert_eq!(Json::parse(r#""x\"y""#).unwrap(), Json::from("x\"y"));
    }

    #[test]
    fn parse_nested_structures_and_whitespace() {
        let v = Json::parse("{\n  \"a\": [1, 2.5, null],\n  \"b\": {\"c\": \"d\"}\n}").unwrap();
        assert_eq!(
            v,
            Json::obj([
                (
                    "a",
                    Json::Array(vec![Json::Int(1), Json::Float(2.5), Json::Null])
                ),
                ("b", Json::obj([("c", Json::from("d"))])),
            ])
        );
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            Json::parse(r#""a\u0001b\tc\n\r\b\f\/\\""#).unwrap(),
            Json::from("a\u{1}b\tc\n\r\u{8}\u{c}/\\")
        );
        // Surrogate pair for U+1F600.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::from("\u{1f600}")
        );
        // Non-ascii passes through unescaped.
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::from("héllo"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "tru",
            "nulll",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\"1}",
            "01x",
            "1.",
            "1e",
            "\"\\q\"",
            "\"\u{1}\"",
            "\"unterminated",
            "[1] tail",
            r#""\ud83d""#,
            r#""\ud83d\u0020""#,
            "--1",
            "+1",
            ".5",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_reports_error_offsets() {
        let e = Json::parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"), "{e}");
    }

    #[test]
    fn parse_enforces_depth_cap() {
        let deep = "[".repeat(MAX_PARSE_DEPTH + 2) + &"]".repeat(MAX_PARSE_DEPTH + 2);
        let e = Json::parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting"), "{e}");
        let ok = "[".repeat(MAX_PARSE_DEPTH) + &"]".repeat(MAX_PARSE_DEPTH);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn parse_keeps_duplicate_keys_in_order() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.render(), r#"{"a":1,"a":2}"#);
    }

    #[test]
    fn oversized_integers_fall_back_to_float() {
        let v = Json::parse("99999999999999999999").unwrap();
        assert_eq!(v, Json::Float(1e20));
        assert_eq!(
            Json::parse(&i64::MAX.to_string()).unwrap(),
            Json::Int(i64::MAX)
        );
        assert_eq!(
            Json::parse(&i64::MIN.to_string()).unwrap(),
            Json::Int(i64::MIN)
        );
    }

    #[test]
    fn canonicalize_sorts_keys_recursively_and_dedups() {
        let v = Json::parse(r#"{"z":{"b":1,"a":2},"a":[{"y":0,"x":1}],"z":3}"#).unwrap();
        assert_eq!(v.canonicalize().render(), r#"{"a":[{"x":1,"y":0}],"z":3}"#);
        // Canonicalization is idempotent.
        assert_eq!(v.canonicalize().canonicalize(), v.canonicalize());
    }

    #[test]
    fn accessors_read_objects() {
        let v = Json::parse(r#"{"k":"s","n":3,"f":0.5}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_str), Some("s"));
        assert_eq!(v.get("n").and_then(Json::as_int), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(0.5));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("k"), None);
    }

    #[test]
    fn render_parse_round_trips_the_escape_corpus() {
        for v in [
            Json::from("a\u{1}b\tc"),
            Json::from("x\"y\\z"),
            Json::from("line\nbreak\rtab\t"),
            Json::obj([("k", Json::Array(vec![Json::Int(1), Json::Int(2)]))]),
            Json::Array(vec![]),
            Json::Object(vec![]),
            Json::Float(1e-9),
            Json::Float(-0.0),
        ] {
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{}", v.render());
            assert_eq!(Json::parse(&v.render_pretty(2)).unwrap(), v);
        }
    }
}
