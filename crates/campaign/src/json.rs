//! A minimal, byte-stable JSON value tree and renderer.
//!
//! The golden-file regression layer compares serialized campaign results
//! *byte for byte* between runs and between thread counts, so the writer
//! must be deterministic down to the last character:
//!
//! - objects keep their insertion order (no hash-map reordering),
//! - floats render with Rust's shortest-round-trip formatting (`{:?}`),
//!   which is a pure function of the bit pattern,
//! - non-finite floats render as `null` (JSON has no NaN/Infinity),
//! - no locale, no platform-dependent whitespace.

use std::fmt::Write as _;

/// An ordered JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (rendered without a decimal point).
    Int(i64),
    /// Float (shortest-round-trip decimal; non-finite renders as `null`).
    Float(f64),
    /// String (escaped per RFC 8259).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, keeping their order.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with newlines and `indent`-space indentation — the format
    /// used for golden fixtures, where reviewable diffs matter.
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let pad = |out: &mut String, level: usize| {
            if let Some(w) = indent {
                out.push('\n');
                for _ in 0..w * level {
                    out.push(' ');
                }
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    pad(out, depth);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (k, (key, value)) in pairs.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str(if indent.is_some() { "\": " } else { "\":" });
                    value.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    pad(out, depth);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(i64::from(v))
    }
}
impl From<u8> for Json {
    fn from(v: u8) -> Json {
        Json::Int(i64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

/// Escapes a string per RFC 8259.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_matches_expectation() {
        let v = Json::obj([
            ("a", Json::Int(1)),
            ("b", Json::Array(vec![Json::Float(0.5), Json::Null])),
            ("c", Json::from("x\"y")),
        ]);
        assert_eq!(v.render(), r#"{"a":1,"b":[0.5,null],"c":"x\"y"}"#);
    }

    #[test]
    fn floats_render_shortest_roundtrip() {
        assert_eq!(Json::Float(1.0).render(), "1.0");
        assert_eq!(Json::Float(0.1).render(), "0.1");
        assert_eq!(Json::Float(-0.0).render(), "-0.0");
        assert_eq!(Json::Float(1e-9).render(), "1e-9");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn pretty_rendering_is_stable_and_parsable_shape() {
        let v = Json::obj([("k", Json::Array(vec![Json::Int(1), Json::Int(2)]))]);
        let pretty = v.render_pretty(2);
        assert_eq!(pretty, "{\n  \"k\": [\n    1,\n    2\n  ]\n}\n");
    }

    #[test]
    fn empty_containers_render_tight() {
        assert_eq!(Json::Array(vec![]).render_pretty(2), "[]\n");
        assert_eq!(Json::Object(vec![]).render(), "{}");
    }

    #[test]
    fn control_characters_escape() {
        assert_eq!(Json::from("a\u{1}b\tc").render(), "\"a\\u0001b\\tc\"");
    }

    #[test]
    fn object_order_is_insertion_order() {
        let v = Json::obj([("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }
}
