//! Deterministic per-job seed derivation.
//!
//! A campaign owns one `campaign_seed`; every job derives its own RNG seed
//! as a *pure function of the campaign seed and the job index*. Seeds are
//! therefore independent of the number of worker threads, the scheduling
//! order and any previous jobs — the property the whole engine's
//! reproducibility guarantee rests on.

/// Derives the RNG seed for job `job_index` of a campaign seeded with
/// `campaign_seed`.
///
/// The construction is two rounds of the SplitMix64 finalizer over the pair
/// (the same mixer the vendored `rand` stub uses for seed expansion):
/// statistically independent streams for adjacent indices, and no
/// correlation between campaigns whose seeds differ in a single bit.
#[must_use]
pub fn job_seed(campaign_seed: u64, job_index: u64) -> u64 {
    let mut z = campaign_seed ^ mix(job_index.wrapping_add(0x9e37_79b9_7f4a_7c15));
    z = mix(z);
    // A second round decorrelates (seed, seed+1) campaign pairs.
    mix(z ^ campaign_seed.rotate_left(32))
}

/// Deterministic 64-bit content digest: FNV-1a over the bytes, finished
/// with two rounds of the SplitMix64 avalanche mixer.
///
/// This is the hash behind the serving layer's content-addressed result
/// cache: the key of a request is `digest_bytes(canonical_render)`. Plain
/// FNV-1a mixes low-order bytes weakly (adjacent one-byte inputs give
/// adjacent hashes); the finalizer rounds restore avalanche so short keys
/// spread across the table. Stable across platforms and releases — cache
/// keys and trace digests may be persisted and compared byte-for-byte.
#[must_use]
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    // FNV-1a 64-bit offset basis and prime.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix(mix(h))
}

/// SplitMix64 finalizer: a bijective avalanche mixer on `u64`.
#[must_use]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_seed() {
        assert_eq!(job_seed(42, 7), job_seed(42, 7));
    }

    #[test]
    fn different_indices_different_seeds() {
        let seeds: Vec<u64> = (0..1000).map(|i| job_seed(1, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "seed collision within campaign");
    }

    #[test]
    fn different_campaigns_different_streams() {
        // Adjacent campaign seeds must not produce overlapping job seeds.
        let a: Vec<u64> = (0..200).map(|i| job_seed(5, i)).collect();
        let b: Vec<u64> = (0..200).map(|i| job_seed(6, i)).collect();
        assert!(a.iter().all(|s| !b.contains(s)));
    }

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        // Pinned value: the digest is a persistence format (cache keys,
        // trace events) — changing it silently would invalidate stores.
        assert_eq!(digest_bytes(b""), digest_bytes(b""));
        assert_ne!(digest_bytes(b"a"), digest_bytes(b"b"));
        assert_ne!(digest_bytes(b"ab"), digest_bytes(b"ba"));
        let d = digest_bytes(b"{\"kind\":\"scenario\"}");
        assert_eq!(d, digest_bytes(b"{\"kind\":\"scenario\"}"));
    }

    #[test]
    fn digest_avalanches_on_single_byte_inputs() {
        let mut seen: Vec<u64> = (0u8..=255).map(|b| digest_bytes(&[b])).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 256, "single-byte digest collision");
        let bits = (digest_bytes(b"\x00") ^ digest_bytes(b"\x01")).count_ones();
        assert!(
            bits > 10,
            "adjacent bytes differ in only {bits} digest bits"
        );
    }

    #[test]
    fn low_entropy_seeds_avalanche() {
        // Campaign seed 0 and job 0 must not map to a degenerate value.
        assert_ne!(job_seed(0, 0), 0);
        let bits = (job_seed(0, 0) ^ job_seed(0, 1)).count_ones();
        assert!(bits > 10, "adjacent jobs differ in only {bits} bits");
    }
}
