//! Deterministic per-job seed derivation.
//!
//! A campaign owns one `campaign_seed`; every job derives its own RNG seed
//! as a *pure function of the campaign seed and the job index*. Seeds are
//! therefore independent of the number of worker threads, the scheduling
//! order and any previous jobs — the property the whole engine's
//! reproducibility guarantee rests on.

/// Derives the RNG seed for job `job_index` of a campaign seeded with
/// `campaign_seed`.
///
/// The construction is two rounds of the SplitMix64 finalizer over the pair
/// (the same mixer the vendored `rand` stub uses for seed expansion):
/// statistically independent streams for adjacent indices, and no
/// correlation between campaigns whose seeds differ in a single bit.
#[must_use]
pub fn job_seed(campaign_seed: u64, job_index: u64) -> u64 {
    let mut z = campaign_seed ^ mix(job_index.wrapping_add(0x9e37_79b9_7f4a_7c15));
    z = mix(z);
    // A second round decorrelates (seed, seed+1) campaign pairs.
    mix(z ^ campaign_seed.rotate_left(32))
}

/// SplitMix64 finalizer: a bijective avalanche mixer on `u64`.
#[must_use]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_seed() {
        assert_eq!(job_seed(42, 7), job_seed(42, 7));
    }

    #[test]
    fn different_indices_different_seeds() {
        let seeds: Vec<u64> = (0..1000).map(|i| job_seed(1, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "seed collision within campaign");
    }

    #[test]
    fn different_campaigns_different_streams() {
        // Adjacent campaign seeds must not produce overlapping job seeds.
        let a: Vec<u64> = (0..200).map(|i| job_seed(5, i)).collect();
        let b: Vec<u64> = (0..200).map(|i| job_seed(6, i)).collect();
        assert!(a.iter().all(|s| !b.contains(s)));
    }

    #[test]
    fn low_entropy_seeds_avalanche() {
        // Campaign seed 0 and job 0 must not map to a degenerate value.
        assert_ne!(job_seed(0, 0), 0);
        let bits = (job_seed(0, 0) ^ job_seed(0, 1)).count_ones();
        assert!(bits > 10, "adjacent jobs differ in only {bits} bits");
    }
}
