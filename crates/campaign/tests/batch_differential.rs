//! Differential harness for the batched campaign scheduler (PR 7).
//!
//! Every test here renders an ordered, bit-exact textual report of a
//! campaign's results (floats via `f64::to_bits`, so `-0.0 != 0.0` and NaN
//! payloads count) and byte-compares the rendering across every scheduling
//! path that must not change results:
//!
//! * batched units vs. all-solo units (`.solo(true)`),
//! * 1 thread vs. 4 threads,
//! * the batched transient solver vs. the per-job reference solver.
//!
//! The deck-level test is hatch-aware: under `LCOSC_SOLVER=reference` the
//! batched path falls back to per-job solves internally, so the comparison
//! still holds (trivially) and the suite stays green in the escape-hatch CI
//! leg.

use lcosc_campaign::CampaignBatch;
use lcosc_circuit::{run_transient, run_transient_batch, Netlist, TransientOptions};
use lcosc_core::OscillatorConfig;
use lcosc_dac::{yield_analysis_campaign, DacMismatchParams, LinearityReport, MismatchedDac};
use lcosc_safety::{run_scenario, Fault, FmeaReport, ScenarioResult};

/// Renders a scenario result with every float as its exact bit pattern.
fn render_scenario(r: &ScenarioResult) -> String {
    format!(
        "{:?}|{:?}|{}|{}|{:016x}|{:016x}",
        r.fault,
        r.triggered,
        r.detected,
        r.code_saturated,
        r.final_vpp.to_bits(),
        r.vpp_before.to_bits()
    )
}

/// Runs the full FMEA fault catalog through `CampaignBatch` with the given
/// schedule knobs and renders the ordered results.
fn fmea_rendering(threads: usize, solo: bool) -> String {
    let base = OscillatorConfig::fast_test();
    let outcome = CampaignBatch::new("fmea-differential", Fault::catalog())
        .threads(threads)
        .solo(solo)
        .try_run(
            |_| 0,
            |_ctxs, unit| unit.iter().map(|f| run_scenario(**f, &base)).collect(),
        )
        .expect("every cataloged fault must simulate");
    let lines: Vec<String> = outcome.results.iter().map(render_scenario).collect();
    lines.join("\n")
}

#[test]
fn fmea_catalog_is_schedule_invariant() {
    let reference = fmea_rendering(1, true);
    for (threads, solo) in [(1, false), (4, false), (4, true)] {
        let got = fmea_rendering(threads, solo);
        assert_eq!(
            got, reference,
            "FMEA results diverged at threads={threads} solo={solo}"
        );
    }
    // The public entry point must agree with itself across thread counts.
    let serial = FmeaReport::run_with_threads(&OscillatorConfig::fast_test(), 1)
        .expect("serial FMEA run")
        .report
        .to_json()
        .render();
    let parallel = FmeaReport::run_with_threads(&OscillatorConfig::fast_test(), 4)
        .expect("parallel FMEA run")
        .report
        .to_json()
        .render();
    assert_eq!(serial, parallel, "FmeaReport JSON diverged across threads");
}

/// Renders the sampled-die population for a seeded yield campaign, drawing
/// each die from its `JobCtx` seed exactly as the production campaign does.
fn die_population_rendering(threads: usize, solo: bool) -> String {
    let params = DacMismatchParams::default();
    let outcome = CampaignBatch::new("die-differential", (0..48u32).collect::<Vec<u32>>())
        .seed(7)
        .threads(threads)
        .solo(solo)
        .run(
            |_| 0,
            |ctxs, unit| {
                ctxs.iter()
                    .zip(unit.iter())
                    .map(|(ctx, &&die)| {
                        let dac = MismatchedDac::sampled(&params, ctx.seed);
                        let lin = LinearityReport::analyze(&dac);
                        format!(
                            "die={die} seed={:016x} inl={:016x} dnl={:016x} nonmono={:?}",
                            ctx.seed,
                            lin.inl_worst_rel.to_bits(),
                            lin.dnl_worst.to_bits(),
                            lin.non_monotonic
                        )
                    })
                    .collect()
            },
        );
    outcome.results.join("\n")
}

#[test]
fn seeded_yield_population_is_schedule_invariant() {
    let reference = die_population_rendering(1, true);
    for (threads, solo) in [(1, false), (4, false), (4, true)] {
        let got = die_population_rendering(threads, solo);
        assert_eq!(
            got, reference,
            "die population diverged at threads={threads} solo={solo}"
        );
    }
    // The public yield campaign must agree with itself across thread counts.
    let params = DacMismatchParams::default();
    let serial = yield_analysis_campaign(&params, 64, 1, 0.15, 1)
        .report
        .to_json()
        .render();
    let parallel = yield_analysis_campaign(&params, 64, 1, 0.15, 4)
        .report
        .to_json()
        .render();
    assert_eq!(
        serial, parallel,
        "yield report JSON diverged across threads"
    );
}

/// A parameterized LC tank ring-down deck; every `scale` shares one
/// structural digest so the scheduler batches them together.
fn tank_deck(scale: f64) -> Netlist {
    let mut nl = Netlist::default();
    let top = nl.node("top");
    nl.capacitor_ic(top, Netlist::GROUND, 2e-9 * scale, 1.0);
    nl.inductor(top, Netlist::GROUND, 25e-6 * scale);
    nl.resistor(top, Netlist::GROUND, 5.0e3);
    nl
}

/// Renders a transient result with every sample as its exact bit pattern.
fn render_waveform(r: &lcosc_circuit::TransientResult) -> String {
    let mut out = String::new();
    for (label, series) in [
        ("t", r.times()),
        ("v", r.voltages_flat()),
        ("i", r.currents_flat()),
    ] {
        out.push_str(label);
        for x in series {
            out.push_str(&format!(" {:016x}", x.to_bits()));
        }
        out.push('\n');
    }
    out
}

#[test]
fn deck_campaign_batched_solver_matches_per_job_reference() {
    let decks: Vec<Netlist> = (0..12).map(|k| tank_deck(1.0 + 0.03 * k as f64)).collect();
    let opts = TransientOptions::new(5e-9, 2e-6);

    let batched = CampaignBatch::new("decks-batched", decks.clone())
        .try_run(Netlist::structural_digest, |_ctxs, unit| {
            run_transient_batch(unit, &opts)
        })
        .expect("batched deck campaign");
    let solo = CampaignBatch::new("decks-solo", decks)
        .solo(true)
        .try_run(Netlist::structural_digest, |_ctxs, unit| {
            unit.iter().map(|deck| run_transient(deck, &opts)).collect()
        })
        .expect("per-job deck campaign");

    assert_eq!(batched.results.len(), solo.results.len());
    for (k, (b, s)) in batched.results.iter().zip(solo.results.iter()).enumerate() {
        assert_eq!(
            render_waveform(b),
            render_waveform(s),
            "lane {k}: batched waveform diverged from the per-job solve"
        );
    }
}
