//! Round-trip property tests for the JSON parser against the byte-stable
//! renderer: `parse(render(v)) == v` for every tree with finite floats,
//! including the RFC 8259 escape corpus the renderer's unit tests pin.

use lcosc_campaign::Json;
use proptest::prelude::*;

/// Builds a deterministic pseudo-random `Json` tree from an integer seed.
///
/// The vendored proptest stub has no recursive strategy combinators, so
/// the tree shape is derived from a SplitMix-style walk over the seed —
/// still a pure function of the generated input, so failures reproduce.
fn tree_from_seed(seed: u64, depth: usize) -> Json {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let z = mix(seed);
    let pick = if depth == 0 { z % 6 } else { z % 8 };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(z & 1 == 0),
        2 => Json::Int(z as i64),
        3 => {
            // A finite float with a wide dynamic range (mantissa / 2^k).
            let mantissa = (mix(z) >> 11) as i64 - (1 << 52);
            let scale = (z % 64) as i32 - 32;
            Json::Float((mantissa as f64) * 2f64.powi(scale))
        }
        4 => Json::Str(string_from_seed(z)),
        5 => Json::Str(String::new()),
        6 => Json::Array(
            (0..(z % 4))
                .map(|i| tree_from_seed(mix(z ^ i), depth - 1))
                .collect(),
        ),
        _ => Json::Object(
            (0..(z % 4))
                .map(|i| {
                    (
                        string_from_seed(mix(z ^ (i << 8))),
                        tree_from_seed(mix(z ^ i ^ 0xff), depth - 1),
                    )
                })
                .collect(),
        ),
    }
}

/// Strings exercising the full escape surface: control chars, quotes,
/// backslashes, multi-byte UTF-8 and astral-plane scalars.
fn string_from_seed(z: u64) -> String {
    const ALPHABET: &[char] = &[
        'a',
        'Z',
        '0',
        ' ',
        '"',
        '\\',
        '/',
        '\n',
        '\r',
        '\t',
        '\u{1}',
        '\u{8}',
        '\u{c}',
        '\u{1f}',
        'é',
        'λ',
        '\u{2028}',
        '\u{1f600}',
        '中',
        '\u{7f}',
    ];
    let mut s = String::new();
    let mut state = z;
    for _ in 0..(z % 12) {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        s.push(ALPHABET[(state >> 33) as usize % ALPHABET.len()]);
    }
    s
}

proptest! {
    #[test]
    fn parse_inverts_render(seed in 0u64..u64::MAX) {
        let v = tree_from_seed(seed, 3);
        let compact = v.render();
        prop_assert_eq!(Json::parse(&compact).unwrap(), v.clone());
        // Pretty rendering parses back to the same tree too.
        prop_assert_eq!(Json::parse(&v.render_pretty(2)).unwrap(), v);
    }

    #[test]
    fn render_parse_render_is_a_fixpoint(seed in 0u64..u64::MAX) {
        // Byte-level idempotence: render(parse(render(v))) == render(v),
        // the property the content-addressed cache keys rely on.
        let v = tree_from_seed(seed, 3);
        let first = v.render();
        let reparsed = Json::parse(&first).unwrap();
        prop_assert_eq!(reparsed.render(), first);
    }

    #[test]
    fn canonicalize_is_stable_under_round_trip(seed in 0u64..u64::MAX) {
        let v = tree_from_seed(seed, 3);
        let canon = v.canonicalize();
        let round = Json::parse(&canon.render()).unwrap();
        prop_assert_eq!(round.canonicalize().render(), canon.render());
    }

    #[test]
    fn escape_corpus_strings_round_trip(seed in 0u64..u64::MAX) {
        let s = string_from_seed(seed);
        let v = Json::Str(s);
        prop_assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }
}

#[test]
fn renderer_unit_corpus_round_trips() {
    // The exact documents the renderer's unit tests pin, read back.
    for (text, expect) in [
        (
            r#"{"a":1,"b":[0.5,null],"c":"x\"y"}"#,
            Json::obj([
                ("a", Json::Int(1)),
                ("b", Json::Array(vec![Json::Float(0.5), Json::Null])),
                ("c", Json::from("x\"y")),
            ]),
        ),
        (r#""a\u0001b\tc""#, Json::from("a\u{1}b\tc")),
        (
            r#"{"z":1,"a":2}"#,
            Json::obj([("z", Json::Int(1)), ("a", Json::Int(2))]),
        ),
    ] {
        let parsed = Json::parse(text).unwrap();
        assert_eq!(parsed, expect);
        assert_eq!(parsed.render(), text);
    }
}
