//! Property tests for the batched LU kernels: for random well-conditioned
//! systems and every batch width 1–17, the SIMD-shaped wide kernel, the
//! scalar-batched fallback and the per-system reference [`LuFactors`] must
//! agree **bitwise**, and a deliberately singular lane must fail with a
//! typed per-lane error without corrupting its siblings.
//!
//! [`LuFactors`]: lcosc_num::linalg::LuFactors

use lcosc_num::batched::{
    BatchedLuFactors, BatchedLuSolver, BatchedMatrix, BatchedRhs, LaneStatus, ScalarKernel,
    WideKernel,
};
use lcosc_num::linalg::{LuFactors, Matrix};
use proptest::prelude::*;

const MAX_LANES: usize = 17;
const MAX_N: usize = 6;

/// Builds one lane's matrix from the flat value pool: off-diagonal noise
/// plus a diagonal boost for conditioning, with a shifted off-diagonal
/// spike so partial pivoting actually swaps rows.
fn lane_matrix(n: usize, lane: usize, vals: &[f64]) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = vals[(lane * MAX_N + i) * MAX_N + j];
        }
        m[(i, (i + 1) % n)] += 3.0;
        m[(i, i)] += 0.5;
    }
    m
}

fn lane_rhs(n: usize, lane: usize, vals: &[f64]) -> Vec<f64> {
    (0..n).map(|i| vals[lane * MAX_N + i]).collect()
}

fn kernels() -> [&'static dyn BatchedLuSolver; 2] {
    static SCALAR: ScalarKernel = ScalarKernel;
    static WIDE: WideKernel = WideKernel;
    [&SCALAR, &WIDE]
}

proptest! {
    /// Wide, scalar-batched and per-system reference solves agree bitwise
    /// for every lane, every batch width 1–17 and every system size.
    #[test]
    fn kernels_and_reference_agree_bitwise(
        lanes in 1usize..=MAX_LANES,
        n in 1usize..=MAX_N,
        mat_vals in proptest::collection::vec(-1.0f64..1.0, MAX_LANES * MAX_N * MAX_N),
        rhs_vals in proptest::collection::vec(-10.0f64..10.0, MAX_LANES * MAX_N),
    ) {
        let mut a = BatchedMatrix::zeros(n, lanes);
        let mut b = BatchedRhs::zeros(n, lanes);
        for lane in 0..lanes {
            a.set_lane(lane, &lane_matrix(n, lane, &mat_vals));
            b.set_lane(lane, &lane_rhs(n, lane, &rhs_vals));
        }
        let mut per_kernel: Vec<Vec<Vec<f64>>> = Vec::new();
        for kernel in kernels() {
            let mut f = BatchedLuFactors::with_dims(n, lanes);
            let mut x = BatchedRhs::zeros(n, lanes);
            kernel.factor(&a, &mut f);
            prop_assert!(f.all_ok(), "{} kernel: unexpected lane failure", kernel.name());
            kernel.solve(&f, &b, &mut x);
            let mut solutions = Vec::new();
            for lane in 0..lanes {
                let mut xlane = vec![0.0; n];
                x.lane_copy_into(lane, &mut xlane);
                solutions.push(xlane);
            }
            per_kernel.push(solutions);
        }
        for lane in 0..lanes {
            let mut reference = LuFactors::with_dim(n);
            reference
                .factor_into(&lane_matrix(n, lane, &mat_vals))
                .expect("well conditioned by construction");
            let xref = reference.solve(&lane_rhs(n, lane, &rhs_vals)).expect("solvable");
            for (kernel, solutions) in kernels().iter().zip(&per_kernel) {
                for (p, q) in xref.iter().zip(&solutions[lane]) {
                    prop_assert_eq!(
                        p.to_bits(),
                        q.to_bits(),
                        "{} kernel, lanes={} n={} lane {}: {} vs {}",
                        kernel.name(), lanes, n, lane, p, q
                    );
                }
            }
        }
    }

    /// A rank-deficient lane fails with exactly the reference path's typed
    /// error; every sibling lane still solves bit-identically to the
    /// reference.
    #[test]
    fn singular_lane_poisoning_is_isolated(
        lanes in 1usize..=MAX_LANES,
        n in 2usize..=MAX_N,
        bad_pick in 0usize..MAX_LANES,
        mat_vals in proptest::collection::vec(-1.0f64..1.0, MAX_LANES * MAX_N * MAX_N),
        rhs_vals in proptest::collection::vec(-10.0f64..10.0, MAX_LANES * MAX_N),
    ) {
        let bad_lane = bad_pick % lanes;
        let mut mats: Vec<Matrix> = (0..lanes)
            .map(|lane| lane_matrix(n, lane, &mat_vals))
            .collect();
        // Duplicate row 0 into row 1 of the victim lane: rank deficient.
        for c in 0..n {
            let v = mats[bad_lane][(0, c)];
            mats[bad_lane][(1, c)] = v;
        }
        let mut a = BatchedMatrix::zeros(n, lanes);
        let mut b = BatchedRhs::zeros(n, lanes);
        for (lane, m) in mats.iter().enumerate() {
            a.set_lane(lane, m);
            b.set_lane(lane, &lane_rhs(n, lane, &rhs_vals));
        }
        let expected = mats[bad_lane].lu().expect_err("duplicated row is singular");
        for kernel in kernels() {
            let mut f = BatchedLuFactors::with_dims(n, lanes);
            let mut x = BatchedRhs::zeros(n, lanes);
            kernel.factor(&a, &mut f);
            kernel.solve(&f, &b, &mut x);
            prop_assert_eq!(
                f.status(bad_lane),
                &LaneStatus::Failed(expected.clone()),
                "{} kernel: wrong failure for the singular lane",
                kernel.name()
            );
            for (lane, m) in mats.iter().enumerate() {
                if lane == bad_lane {
                    continue;
                }
                prop_assert!(f.status(lane).is_ok(), "{} kernel: sibling lane {} poisoned",
                    kernel.name(), lane);
                let rhs = lane_rhs(n, lane, &rhs_vals);
                let want = m.lu().expect("sibling well conditioned").solve(&rhs).expect("solvable");
                let mut got = vec![0.0; n];
                x.lane_copy_into(lane, &mut got);
                for (p, q) in want.iter().zip(&got) {
                    prop_assert_eq!(
                        p.to_bits(), q.to_bits(),
                        "{} kernel: sibling lane {} diverged: {} vs {}",
                        kernel.name(), lane, p, q
                    );
                }
            }
        }
    }
}
