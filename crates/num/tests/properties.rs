//! Property-based tests for the numerical substrate.

use std::sync::Arc;

use lcosc_num::filter::{EnvelopeFollower, MovingRms, OnePoleLowPass};
use lcosc_num::interp::PwlTable;
use lcosc_num::linalg::Matrix;
use lcosc_num::roots::{bisect, brent};
use lcosc_num::sparse::{SparseLu, SparseMatrix, SparseSymbolic};
use lcosc_num::stats::{mean, percentile, rms};
use lcosc_num::NumError;
use proptest::prelude::*;

proptest! {
    /// LU solve of a diagonally dominant system reproduces the solution.
    #[test]
    fn lu_solves_diagonally_dominant(
        vals in proptest::collection::vec(-1.0f64..1.0, 16),
        x_true in proptest::collection::vec(-10.0f64..10.0, 4),
    ) {
        let n = 4;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = vals[i * n + j];
            }
            a[(i, i)] += 4.0; // dominance -> invertible
        }
        let b = a.mul_vec(&x_true);
        let x = a.solve(&b).expect("well conditioned");
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-8, "{xi} vs {ti}");
        }
    }

    /// Determinant is multiplicative under row scaling.
    #[test]
    fn det_scales_linearly_with_row(scale in 0.1f64..10.0) {
        let mut a = Matrix::identity(3);
        a[(0, 1)] = 0.5;
        a[(2, 0)] = -0.25;
        let d0 = a.det();
        for j in 0..3 {
            a[(1, j)] *= scale;
        }
        prop_assert!((a.det() / (d0 * scale) - 1.0).abs() < 1e-10);
    }

    /// One-pole low-pass output never overshoots a monotone input's range.
    #[test]
    fn lowpass_stays_in_input_hull(
        xs in proptest::collection::vec(-5.0f64..5.0, 1..200),
        tau_us in 1.0f64..100.0,
    ) {
        let mut f = OnePoleLowPass::new(tau_us * 1e-6, 1e-6);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min).min(0.0);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max).max(0.0);
        for &x in &xs {
            let y = f.update(x);
            prop_assert!(y >= lo - 1e-12 && y <= hi + 1e-12, "y {y} outside [{lo}, {hi}]");
        }
    }

    /// Moving RMS is bounded by the max |x| in the window and non-negative.
    #[test]
    fn moving_rms_bounded(
        xs in proptest::collection::vec(-100.0f64..100.0, 1..100),
        len in 1usize..32,
    ) {
        let mut r = MovingRms::new(len);
        let mut peak = 0.0f64;
        for &x in &xs {
            peak = peak.max(x.abs());
            let y = r.update(x);
            prop_assert!((0.0..=peak + 1e-9).contains(&y));
        }
    }

    /// Envelope follower upper-bounds the rectified signal up to one
    /// release factor (a sample just below the held peak still decays).
    #[test]
    fn envelope_dominates_signal(xs in proptest::collection::vec(-10.0f64..10.0, 1..200)) {
        let mut e = EnvelopeFollower::new(1e-3, 1e-6);
        let release = (-1e-6f64 / 1e-3).exp();
        for &x in &xs {
            let y = e.update(x);
            prop_assert!(y >= x.abs() * release - 1e-12);
        }
    }

    /// PWL evaluation is within the y hull and exact at the breakpoints.
    #[test]
    fn pwl_within_hull(
        ys in proptest::collection::vec(-10.0f64..10.0, 2..20),
        t in 0.0f64..1.0,
    ) {
        let points: Vec<(f64, f64)> =
            ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect();
        let table = PwlTable::new(points.clone()).expect("strictly increasing x");
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let x = t * (ys.len() - 1) as f64;
        let y = table.eval(x);
        prop_assert!((lo - 1e-9..=hi + 1e-9).contains(&y));
        for (bx, by) in points {
            prop_assert_eq!(table.eval(bx), by);
        }
    }

    /// Bisect and Brent find the same root of a monotone cubic.
    #[test]
    fn bisect_and_brent_agree(c in -5.0f64..5.0) {
        let f = |x: f64| x * x * x + x - c; // strictly increasing
        let a = bisect(f, -10.0, 10.0, 1e-12).expect("bracketed");
        let b = brent(f, -10.0, 10.0, 1e-12).expect("bracketed");
        prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        prop_assert!(f(a).abs() < 1e-6);
    }

    /// RMS >= |mean| (Cauchy–Schwarz) and percentile stays within range.
    #[test]
    fn rms_dominates_mean(xs in proptest::collection::vec(-50.0f64..50.0, 1..100), p in 0.0f64..100.0) {
        let m = mean(&xs).expect("non-empty");
        let r = rms(&xs).expect("non-empty");
        prop_assert!(r >= m.abs() - 1e-9);
        let q = percentile(&xs, p).expect("valid");
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((lo..=hi).contains(&q));
    }

    /// Engineering formatting round-trips the order of magnitude.
    #[test]
    fn engineering_format_never_empty(v in -1e12f64..1e12) {
        let s = lcosc_num::units::format_engineering(v);
        prop_assert!(!s.is_empty());
    }

    /// Cross-solver agreement: on random diagonally dominant systems the
    /// sparse LU (fixed pivot order, fill-reducing permutation) and the
    /// dense LU (partial pivoting) must both solve, and agree to tight
    /// tolerance. Both share one singular-pivot threshold, so neither can
    /// call a system singular that the other solves.
    #[test]
    fn sparse_and_dense_agree_on_dominant_systems(
        vals in proptest::collection::vec(-1.0f64..1.0, 36),
        x_true in proptest::collection::vec(-10.0f64..10.0, 6),
        mask in proptest::collection::vec(0u8..2, 36),
    ) {
        let n = 6;
        let mut dense = Matrix::zeros(n, n);
        let mut entries = Vec::new();
        for i in 0..n {
            for j in 0..n {
                // Random sparsity: keep the diagonal, drop ~half the rest.
                if i == j || mask[i * n + j] == 1 {
                    dense[(i, j)] = vals[i * n + j];
                    entries.push((i, j));
                }
            }
            dense[(i, i)] += 6.0; // dominance -> invertible for both paths
        }
        let mut sp = SparseMatrix::from_pattern(n, &entries).unwrap();
        for &(i, j) in &entries {
            prop_assert!(sp.add(i, j, dense[(i, j)]));
        }
        let sym = Arc::new(SparseSymbolic::analyze(&sp).expect("diag present"));
        let mut lu = SparseLu::new(sym);
        lu.factor_into(&sp).expect("dominant system factors");
        let b = dense.mul_vec(&x_true);
        let xs = lu.solve(&b).expect("solve");
        let xd = dense.solve(&b).expect("solve");
        for ((s, d), t) in xs.iter().zip(&xd).zip(&x_true) {
            prop_assert!((s - d).abs() < 1e-8, "sparse {s} vs dense {d}");
            prop_assert!((s - t).abs() < 1e-8, "sparse {s} vs truth {t}");
        }
    }

    /// Cross-solver singularity agreement: scaling a whole row toward zero
    /// eventually trips the singular-pivot threshold; dense and sparse must
    /// agree on whether each scaled system is singular, because they share
    /// one threshold constant.
    #[test]
    fn sparse_and_dense_agree_on_singularity(scale_exp in 0u32..40) {
        let n = 3;
        // Row 2 shrinks by 16^-k: crosses the shared threshold around
        // k == 77 in the fully degenerate limit; sweep the healthy range
        // and the first decades of degradation.
        let s = 16f64.powi(-(scale_exp as i32));
        let rows = [[4.0, 1.0, 0.0], [1.0, 5.0, 1.0], [0.0, s, s * 2.0]];
        let mut dense = Matrix::zeros(n, n);
        let mut entries = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 || i == j {
                    dense[(i, j)] = v;
                    entries.push((i, j));
                }
            }
        }
        let mut sp = SparseMatrix::from_pattern(n, &entries).unwrap();
        for &(i, j) in &entries {
            prop_assert!(sp.add(i, j, dense[(i, j)]));
        }
        let sym = Arc::new(SparseSymbolic::analyze(&sp).unwrap());
        let mut lu = SparseLu::new(sym);
        let sparse_verdict = lu.factor_into(&sp);
        let dense_verdict = dense.solve(&[1.0, 1.0, 1.0]);
        match (&sparse_verdict, &dense_verdict) {
            (Ok(()), Ok(_)) => {}
            (Err(NumError::SingularMatrix { .. }), Err(NumError::SingularMatrix { .. })) => {}
            other => prop_assert!(false, "solvers disagree on singularity: {other:?}"),
        }
    }
}
