//! Descriptive statistics for measurement post-processing: moments, RMS,
//! percentiles, histograms and least-squares line fits.

use crate::{NumError, Result};

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Unbiased sample variance (n − 1 denominator). Returns `None` with fewer
/// than two samples.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Sample standard deviation. Returns `None` with fewer than two samples.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Root-mean-square value. Returns `None` for an empty slice.
pub fn rms(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some((xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt())
    }
}

/// Peak-to-peak span (max − min). Returns `None` for an empty slice.
pub fn peak_to_peak(xs: &[f64]) -> Option<f64> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if xs.is_empty() {
        None
    } else {
        Some(hi - lo)
    }
}

/// Linear-interpolated percentile, `p` in `[0, 100]`.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] for an empty slice, `p` outside
/// `[0, 100]`, or any non-finite sample. Non-finite samples are rejected
/// rather than sorted into place: `total_cmp` orders NaN above +inf, so a
/// single NaN would otherwise make high percentiles silently return (or
/// interpolate against) NaN instead of erroring.
pub fn percentile(xs: &[f64], p: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(NumError::InvalidInput("percentile of empty slice"));
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(NumError::InvalidInput("percentile must be in [0, 100]"));
    }
    if xs.iter().any(|x| !x.is_finite()) {
        return Err(NumError::InvalidInput("percentile of non-finite sample"));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Result of a least-squares line fit `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
}

/// Ordinary least-squares fit of `y` against `x`.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] when slices differ in length, hold
/// fewer than two points, or `x` has zero variance.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Result<LineFit> {
    if x.len() != y.len() {
        return Err(NumError::InvalidInput("x and y lengths differ"));
    }
    if x.len() < 2 {
        return Err(NumError::InvalidInput("need at least two points"));
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|xi| (xi - mx) * (xi - mx)).sum();
    let sxy: f64 = x.iter().zip(y).map(|(xi, yi)| (xi - mx) * (yi - my)).sum();
    let syy: f64 = y.iter().map(|yi| (yi - my) * (yi - my)).sum();
    if sxx == 0.0 {
        return Err(NumError::InvalidInput("x has zero variance"));
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Ok(LineFit {
        slope,
        intercept,
        r_squared,
    })
}

/// A simple equal-width histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    outliers: usize,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "hi must exceed lo");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            outliers: 0,
        }
    }

    /// Adds one sample; values outside the range count as outliers.
    pub fn add(&mut self, x: f64) {
        if x < self.lo || x >= self.hi || !x.is_finite() {
            self.outliers += 1;
            return;
        }
        let bin = ((x - self.lo) / (self.hi - self.lo) * self.counts.len() as f64) as usize;
        let bin = bin.min(self.counts.len() - 1);
        self.counts[bin] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Number of samples outside the histogram range.
    pub fn outliers(&self) -> usize {
        self.outliers
    }

    /// Total in-range samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), Some(2.5));
        assert!((variance(&xs).unwrap() - 5.0 / 3.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_give_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[1.0]), None);
        assert_eq!(rms(&[]), None);
        assert_eq!(peak_to_peak(&[]), None);
    }

    #[test]
    fn rms_of_sine_samples() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 1000.0).sin())
            .collect();
        assert!((rms(&xs).unwrap() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
    }

    #[test]
    fn peak_to_peak_of_cosine_is_two() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 1000.0).cos())
            .collect();
        assert!((peak_to_peak(&xs).unwrap() - 2.0).abs() < 1e-4);
    }

    #[test]
    fn percentile_median_and_bounds() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 50.0).unwrap(), 3.0);
        assert_eq!(percentile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&xs, 100.0).unwrap(), 5.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 25.0).unwrap(), 2.5);
    }

    #[test]
    fn percentile_rejects_bad_input() {
        assert!(percentile(&[], 50.0).is_err());
        assert!(percentile(&[1.0], 101.0).is_err());
    }

    #[test]
    fn percentile_rejects_non_finite_samples() {
        // A NaN sorts above +inf under total_cmp, so before the finiteness
        // guard p=100 returned NaN instead of an error. Pin the typed error
        // for NaN and both infinities, at low and high percentiles alike.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let xs = [1.0, 2.0, bad, 3.0];
            for p in [0.0, 50.0, 99.0, 100.0] {
                let e = percentile(&xs, p).unwrap_err();
                assert!(matches!(e, NumError::InvalidInput(_)), "p={p} bad={bad}");
            }
        }
    }

    #[test]
    fn histogram_counts_infinities_as_outliers() {
        // ±inf must land in the outlier bucket, not a bin: +inf fails the
        // `x >= hi` range check and -inf fails `x < lo`, and the explicit
        // finiteness clause keeps NaN out even if the range tests change.
        let mut h = Histogram::new(0.0, 10.0, 4);
        h.add(f64::INFINITY);
        h.add(f64::NEG_INFINITY);
        h.add(5.0);
        assert_eq!(h.outliers(), 2);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|xi| 3.0 * xi - 7.0).collect();
        let fit = linear_fit(&x, &y).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 7.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_rejects_degenerate_x() {
        let e = linear_fit(&[1.0, 1.0], &[0.0, 5.0]).unwrap_err();
        assert!(matches!(e, NumError::InvalidInput(_)));
    }

    #[test]
    fn linear_fit_r_squared_below_one_for_noise() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [0.0, 1.5, 1.4, 3.2];
        let fit = linear_fit(&x, &y).unwrap();
        assert!(fit.r_squared < 1.0 && fit.r_squared > 0.5);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.add(i as f64 + 0.5);
        }
        h.add(-1.0);
        h.add(10.0); // hi is exclusive
        h.add(f64::NAN);
        assert_eq!(h.counts(), &[1; 10]);
        assert_eq!(h.outliers(), 3);
        assert_eq!(h.total(), 10);
    }

    #[test]
    #[should_panic(expected = "hi must exceed lo")]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
