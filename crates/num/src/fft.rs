//! Radix-2 FFT and derived spectral measurements (power spectrum, dominant
//! frequency, total harmonic distortion).
//!
//! Used to verify the oscillator's spectral purity and to cross-check the
//! zero-crossing frequency estimator.

/// Minimal complex number for FFT work.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from rectangular parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude, cheaper than [`Complex::abs`].
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl std::ops::Div for Complex {
    type Output = Complex;
    fn div(self, o: Complex) -> Complex {
        let d = o.norm_sq();
        Complex::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

impl std::ops::Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl std::ops::Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Complex {
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Phase angle in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Panics
///
/// Panics unless `data.len()` is a power of two (and non-zero).
pub fn fft_in_place(data: &mut [Complex]) {
    let n = data.len();
    assert!(
        n.is_power_of_two() && n > 0,
        "fft length must be a power of two"
    );
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wl = Complex::new(ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2] * w;
                data[start + k] = a + b;
                data[start + k + len / 2] = a - b;
                w = w * wl;
            }
        }
        len <<= 1;
    }
}

/// One bin of a real-signal power spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumBin {
    /// Bin center frequency in hertz.
    pub frequency: f64,
    /// One-sided power in the bin (arbitrary units, amplitude²/2 scaling).
    pub power: f64,
}

/// Computes the one-sided power spectrum of a real signal sampled at `fs`.
///
/// The input is truncated to the largest power-of-two length and windowed
/// with a Hann window. DC is bin 0.
///
/// # Panics
///
/// Panics if fewer than 2 samples are supplied.
pub fn power_spectrum(samples: &[f64], fs: f64) -> Vec<SpectrumBin> {
    assert!(samples.len() >= 2, "need at least two samples");
    let n = 1usize << (usize::BITS - 1 - samples.len().leading_zeros());
    let mut buf: Vec<Complex> = (0..n)
        .map(|i| {
            let w = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * i as f64 / n as f64).cos());
            Complex::new(samples[i] * w, 0.0)
        })
        .collect();
    fft_in_place(&mut buf);
    let scale = 2.0 / (n as f64 * n as f64 / 4.0); // Hann coherent gain 0.5
    (0..n / 2)
        .map(|k| SpectrumBin {
            frequency: k as f64 * fs / n as f64,
            power: buf[k].norm_sq() * scale,
        })
        .collect()
}

/// Finds the dominant (largest-power, non-DC) frequency of a real signal.
///
/// Uses parabolic interpolation around the peak bin for sub-bin resolution.
/// Returns `None` when the spectrum is empty or flat (all-zero signal).
pub fn dominant_frequency(samples: &[f64], fs: f64) -> Option<f64> {
    let spec = power_spectrum(samples, fs);
    if spec.len() < 3 {
        return None;
    }
    let (k, peak) = spec
        .iter()
        .enumerate()
        .skip(1)
        .max_by(|a, b| a.1.power.total_cmp(&b.1.power))?;
    if peak.power <= 0.0 {
        return None;
    }
    if k == 0 || k + 1 >= spec.len() {
        return Some(peak.frequency);
    }
    // Parabolic interpolation on log power.
    let (pl, pc, pr) = (
        spec[k - 1].power.max(1e-300).ln(),
        spec[k].power.max(1e-300).ln(),
        spec[k + 1].power.max(1e-300).ln(),
    );
    let denom = pl - 2.0 * pc + pr;
    let delta = if denom.abs() > 1e-12 {
        0.5 * (pl - pr) / denom
    } else {
        0.0
    };
    let bin = k as f64 + delta.clamp(-0.5, 0.5);
    // Bin spacing is fs / n with n == 2 * spec.len().
    Some(bin * fs / (2.0 * spec.len() as f64))
}

/// Total harmonic distortion of a real signal, as the ratio of the RMS of
/// harmonics 2..=`n_harmonics` to the fundamental RMS.
///
/// Returns `None` when the fundamental cannot be identified.
pub fn thd(samples: &[f64], fs: f64, n_harmonics: usize) -> Option<f64> {
    let spec = power_spectrum(samples, fs);
    let n = spec.len();
    if n < 4 {
        return None;
    }
    let (kf, fundamental) = spec
        .iter()
        .enumerate()
        .skip(1)
        .max_by(|a, b| a.1.power.total_cmp(&b.1.power))?;
    if fundamental.power <= 0.0 {
        return None;
    }
    // Sum power in a small neighborhood of each harmonic bin (window leakage).
    let band = 2usize;
    let power_at = |k: usize| -> f64 {
        let lo = k.saturating_sub(band);
        let hi = (k + band).min(n - 1);
        spec[lo..=hi].iter().map(|b| b.power).sum()
    };
    let p1 = power_at(kf);
    let mut ph = 0.0;
    for h in 2..=n_harmonics {
        let k = kf * h;
        if k >= n {
            break;
        }
        ph += power_at(k);
    }
    Some((ph / p1).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(f: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut d = vec![Complex::default(); 8];
        d[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut d);
        for z in d {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_dc_concentrates_in_bin_zero() {
        let mut d = vec![Complex::new(1.0, 0.0); 16];
        fft_in_place(&mut d);
        assert!((d[0].re - 16.0).abs() < 1e-9);
        for z in &d[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_parseval_holds() {
        let x = sine(5.0, 64.0, 64);
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let mut d: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        fft_in_place(&mut d);
        let freq_energy: f64 = d.iter().map(|z| z.norm_sq()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut d = vec![Complex::default(); 6];
        fft_in_place(&mut d);
    }

    #[test]
    fn dominant_frequency_of_pure_sine() {
        let fs = 1.0e6;
        let f = 37_500.0;
        let x = sine(f, fs, 4096);
        let est = dominant_frequency(&x, fs).unwrap();
        assert!((est - f).abs() < fs / 4096.0, "est {est}");
    }

    #[test]
    fn dominant_frequency_of_silence_is_none() {
        let x = vec![0.0; 1024];
        assert!(dominant_frequency(&x, 1e6).is_none());
    }

    #[test]
    fn dominant_frequency_off_bin_interpolates() {
        let fs = 1.0e6;
        // deliberately between bins for n = 4096
        let f = 37_987.3;
        let x = sine(f, fs, 4096);
        let est = dominant_frequency(&x, fs).unwrap();
        assert!((est - f).abs() < 0.6 * fs / 4096.0, "est {est}");
    }

    #[test]
    fn thd_of_pure_sine_is_small() {
        let fs = 1.0e6;
        let x = sine(31_250.0, fs, 8192); // exactly on a bin
        let t = thd(&x, fs, 5).unwrap();
        assert!(t < 1e-3, "thd {t}");
    }

    #[test]
    fn thd_of_square_wave_near_48_percent() {
        let fs = 1.0e6;
        let f = 31_250.0;
        let x: Vec<f64> = (0..8192)
            .map(|i| {
                if (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin() >= 0.0 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        // Ideal square wave THD (first 9 harmonics) ~ sqrt(1/9+1/25+1/49+1/81) ~ 0.43;
        // all harmonics -> ~0.483.
        let t = thd(&x, fs, 9).unwrap();
        assert!((t - 0.43).abs() < 0.06, "thd {t}");
    }

    #[test]
    fn power_spectrum_peak_is_at_signal_frequency() {
        let fs = 1.0e6;
        let f = 62_500.0;
        let spec = power_spectrum(&sine(f, fs, 2048), fs);
        let peak = spec
            .iter()
            .skip(1)
            .max_by(|a, b| a.power.total_cmp(&b.power))
            .unwrap();
        assert!((peak.frequency - f).abs() <= fs / 2048.0);
    }
}
