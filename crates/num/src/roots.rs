//! Scalar root finding: bisection, Brent's method and a damped Newton
//! iteration.
//!
//! Used for solving implicit device equations (diode operating points) and
//! inverting monotone transfer curves.

use crate::{NumError, Result};

/// Default iteration budget for the bracketing methods.
const MAX_ITER: usize = 200;

/// Finds a root of `f` in `[a, b]` by bisection.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] when the bracket is invalid or does not
/// straddle a sign change, and [`NumError::NoConvergence`] if the interval
/// fails to shrink below `tol` within the iteration budget.
pub fn bisect<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, tol: f64) -> Result<f64> {
    if !(b > a) || !tol.is_finite() || tol <= 0.0 {
        return Err(NumError::InvalidInput("bisect needs a < b and tol > 0"));
    }
    let (mut lo, mut hi) = (a, b);
    let (mut flo, fhi) = (f(lo), f(hi));
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(NumError::InvalidInput("bracket does not straddle a root"));
    }
    for _ in 0..MAX_ITER {
        let mid = 0.5 * (lo + hi);
        let fm = f(mid);
        if fm == 0.0 || (hi - lo) < tol {
            return Ok(mid);
        }
        if fm.signum() == flo.signum() {
            lo = mid;
            flo = fm;
        } else {
            hi = mid;
        }
    }
    Err(NumError::NoConvergence {
        iterations: MAX_ITER,
        residual: hi - lo,
    })
}

/// Finds a root of `f` in `[a, b]` with Brent's method (inverse quadratic
/// interpolation with bisection fallback).
///
/// # Errors
///
/// Same contract as [`bisect`], but typically converges in far fewer
/// function evaluations.
pub fn brent<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, tol: f64) -> Result<f64> {
    if !(b > a) || !tol.is_finite() || tol <= 0.0 {
        return Err(NumError::InvalidInput("brent needs a < b and tol > 0"));
    }
    let (mut xa, mut xb) = (a, b);
    let (mut fa, mut fb) = (f(xa), f(xb));
    if fa == 0.0 {
        return Ok(xa);
    }
    if fb == 0.0 {
        return Ok(xb);
    }
    if fa.signum() == fb.signum() {
        return Err(NumError::InvalidInput("bracket does not straddle a root"));
    }
    let (mut xc, mut fc) = (xa, fa);
    let mut d = xb - xa;
    let mut e = d;
    for _ in 0..MAX_ITER {
        if fb.abs() > fc.abs() {
            // Ensure b is the best iterate.
            xa = xb;
            xb = xc;
            xc = xa;
            fa = fb;
            fb = fc;
            fc = fa;
        }
        let tol1 = 2.0 * f64::EPSILON * xb.abs() + 0.5 * tol;
        let xm = 0.5 * (xc - xb);
        if xm.abs() <= tol1 || fb == 0.0 {
            return Ok(xb);
        }
        if e.abs() >= tol1 && fa.abs() > fb.abs() {
            // Attempt inverse quadratic interpolation.
            let s = fb / fa;
            let (mut p, mut q);
            if xa == xc {
                p = 2.0 * xm * s;
                q = 1.0 - s;
            } else {
                let qq = fa / fc;
                let r = fb / fc;
                p = s * (2.0 * xm * qq * (qq - r) - (xb - xa) * (r - 1.0));
                q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
            }
            if p > 0.0 {
                q = -q;
            }
            p = p.abs();
            if 2.0 * p < (3.0 * xm * q - (tol1 * q).abs()).min((e * q).abs()) {
                e = d;
                d = p / q;
            } else {
                d = xm;
                e = d;
            }
        } else {
            d = xm;
            e = d;
        }
        xa = xb;
        fa = fb;
        xb += if d.abs() > tol1 { d } else { tol1.copysign(xm) };
        fb = f(xb);
        if (fb > 0.0) == (fc > 0.0) {
            xc = xa;
            fc = fa;
            d = xb - xa;
            e = d;
        }
    }
    Err(NumError::NoConvergence {
        iterations: MAX_ITER,
        residual: fb.abs(),
    })
}

/// Damped Newton iteration for `f(x) = 0` given the derivative `df`.
///
/// Halves the step up to 20 times whenever a full step fails to reduce
/// `|f|`, which keeps exponential device equations (diodes) from diverging.
///
/// # Errors
///
/// Returns [`NumError::NoConvergence`] when `|f|` does not fall below `tol`
/// within `max_iter` iterations, and [`NumError::InvalidInput`] for a
/// non-finite starting point or a vanishing derivative.
pub fn newton<F, D>(mut f: F, mut df: D, x0: f64, tol: f64, max_iter: usize) -> Result<f64>
where
    F: FnMut(f64) -> f64,
    D: FnMut(f64) -> f64,
{
    if !x0.is_finite() {
        return Err(NumError::InvalidInput("starting point must be finite"));
    }
    let mut x = x0;
    let mut fx = f(x);
    for _ in 0..max_iter {
        if fx.abs() < tol {
            return Ok(x);
        }
        let d = df(x);
        if d == 0.0 || !d.is_finite() {
            return Err(NumError::InvalidInput("derivative vanished"));
        }
        let mut step = fx / d;
        // Damping: backtrack until |f| decreases. Non-finite trial values
        // (exponential overflow) shrink the step much harder than a plain
        // halving so diode-style equations recover from huge first steps.
        let mut xn = x - step;
        let mut fn_ = f(xn);
        let mut reductions = 0;
        while (!fn_.is_finite() || fn_.abs() > fx.abs()) && reductions < 200 {
            step *= if fn_.is_finite() { 0.5 } else { 1e-3 };
            xn = x - step;
            fn_ = f(xn);
            reductions += 1;
        }
        x = xn;
        fx = fn_;
    }
    if fx.abs() < tol {
        Ok(x)
    } else {
        Err(NumError::NoConvergence {
            iterations: max_iter,
            residual: fx.abs(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_sqrt_two() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_exact_endpoint_root() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12).unwrap(), 0.0);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9).is_err());
        assert!(bisect(|x| x, 1.0, 0.0, 1e-9).is_err());
    }

    #[test]
    fn brent_sqrt_two() {
        let r = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-14).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn brent_beats_bisect_on_evaluations() {
        let mut nb = 0usize;
        let _ = brent(
            |x| {
                nb += 1;
                x.exp() - 3.0
            },
            0.0,
            2.0,
            1e-12,
        )
        .unwrap();
        let mut ni = 0usize;
        let _ = bisect(
            |x| {
                ni += 1;
                x.exp() - 3.0
            },
            0.0,
            2.0,
            1e-12,
        )
        .unwrap();
        assert!(nb < ni, "brent {nb} vs bisect {ni}");
    }

    #[test]
    fn brent_cubic_with_flat_region() {
        let r = brent(|x| (x - 1.0).powi(3), 0.0, 3.0, 1e-12).unwrap();
        assert!((r - 1.0).abs() < 1e-4);
    }

    #[test]
    fn newton_converges_quadratically() {
        let r = newton(|x| x * x - 2.0, |x| 2.0 * x, 1.0, 1e-14, 50).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn newton_damping_tames_exponential() {
        // f(x) = exp(20 x) - 1, start far away: raw Newton from x=2 is fine,
        // but from the flat side x=-5 the first step is enormous.
        let r = newton(
            |x| (20.0 * x).exp() - 1.0,
            |x| 20.0 * (20.0 * x).exp(),
            -5.0,
            1e-12,
            200,
        );
        let r = r.unwrap();
        assert!(r.abs() < 1e-6, "root {r}");
    }

    #[test]
    fn newton_reports_vanishing_derivative() {
        let e = newton(|_| 1.0, |_| 0.0, 0.0, 1e-9, 10).unwrap_err();
        assert!(matches!(e, NumError::InvalidInput(_)));
    }

    #[test]
    fn newton_no_convergence_reports_budget() {
        let e = newton(|x| x * x + 1.0, |x| 2.0 * x, 3.0, 1e-12, 5).unwrap_err();
        assert!(matches!(e, NumError::NoConvergence { iterations: 5, .. }));
    }
}
