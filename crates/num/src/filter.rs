//! Discrete-time filters used by the amplitude-detection chain: one-pole
//! low-pass, biquad, moving RMS and a diode-style envelope follower.

/// First-order (one-pole) discrete low-pass filter.
///
/// Discretized with the exact zero-order-hold mapping
/// `alpha = 1 - exp(-dt / tau)`, so the step response matches the continuous
/// RC filter at the sample instants.
///
/// # Example
///
/// ```
/// use lcosc_num::filter::OnePoleLowPass;
///
/// let mut lpf = OnePoleLowPass::new(1e-3, 1e-5);
/// for _ in 0..1000 { lpf.update(1.0); }
/// assert!((lpf.output() - 1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OnePoleLowPass {
    alpha: f64,
    y: f64,
}

impl OnePoleLowPass {
    /// Creates a low-pass with time constant `tau` seconds sampled every
    /// `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `tau` or `dt` is not positive.
    pub fn new(tau: f64, dt: f64) -> Self {
        assert!(tau > 0.0 && dt > 0.0, "tau and dt must be positive");
        OnePoleLowPass {
            alpha: 1.0 - (-dt / tau).exp(),
            y: 0.0,
        }
    }

    /// Creates the filter from a -3 dB cutoff frequency in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `f_cut` or `dt` is not positive.
    pub fn from_cutoff(f_cut: f64, dt: f64) -> Self {
        assert!(f_cut > 0.0, "cutoff must be positive");
        Self::new(1.0 / (2.0 * std::f64::consts::PI * f_cut), dt)
    }

    /// Pre-loads the internal state (e.g. to start at a DC operating point).
    pub fn reset_to(&mut self, y0: f64) {
        self.y = y0;
    }

    /// Processes one sample and returns the new output.
    pub fn update(&mut self, x: f64) -> f64 {
        self.y += self.alpha * (x - self.y);
        self.y
    }

    /// Current output without advancing the filter.
    pub fn output(&self) -> f64 {
        self.y
    }
}

/// Biquad (second-order IIR) filter in direct form I, with a Butterworth
/// low-pass designer.
#[derive(Debug, Clone, PartialEq)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
    x1: f64,
    x2: f64,
    y1: f64,
    y2: f64,
}

impl Biquad {
    /// Creates a biquad from normalized coefficients (`a0 == 1`).
    pub fn from_coefficients(b0: f64, b1: f64, b2: f64, a1: f64, a2: f64) -> Self {
        Biquad {
            b0,
            b1,
            b2,
            a1,
            a2,
            x1: 0.0,
            x2: 0.0,
            y1: 0.0,
            y2: 0.0,
        }
    }

    /// Designs a second-order Butterworth low-pass via the bilinear transform.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < f_cut < fs / 2`.
    pub fn butterworth_lowpass(f_cut: f64, fs: f64) -> Self {
        assert!(
            f_cut > 0.0 && f_cut < fs / 2.0,
            "cutoff must be in (0, fs/2)"
        );
        let k = (std::f64::consts::PI * f_cut / fs).tan();
        let q = std::f64::consts::FRAC_1_SQRT_2;
        let norm = 1.0 / (1.0 + k / q + k * k);
        let b0 = k * k * norm;
        Biquad::from_coefficients(
            b0,
            2.0 * b0,
            b0,
            2.0 * (k * k - 1.0) * norm,
            (1.0 - k / q + k * k) * norm,
        )
    }

    /// Processes one sample.
    pub fn update(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.b1 * self.x1 + self.b2 * self.x2
            - self.a1 * self.y1
            - self.a2 * self.y2;
        self.x2 = self.x1;
        self.x1 = x;
        self.y2 = self.y1;
        self.y1 = y;
        y
    }

    /// Current output without advancing the filter.
    pub fn output(&self) -> f64 {
        self.y1
    }
}

/// Sliding-window RMS detector.
#[derive(Debug, Clone)]
pub struct MovingRms {
    window: Vec<f64>,
    head: usize,
    filled: usize,
    sum_sq: f64,
}

impl MovingRms {
    /// Creates a detector over the last `len` samples.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "window length must be non-zero");
        MovingRms {
            window: vec![0.0; len],
            head: 0,
            filled: 0,
            sum_sq: 0.0,
        }
    }

    /// Pushes a sample and returns the RMS over the (possibly partial)
    /// window.
    pub fn update(&mut self, x: f64) -> f64 {
        let old = self.window[self.head];
        self.sum_sq += x * x - old * old;
        self.window[self.head] = x;
        self.head = (self.head + 1) % self.window.len();
        if self.filled < self.window.len() {
            self.filled += 1;
        }
        self.output()
    }

    /// Current RMS value.
    pub fn output(&self) -> f64 {
        if self.filled == 0 {
            return 0.0;
        }
        // Guard against tiny negative drift from cancellation.
        (self.sum_sq.max(0.0) / self.filled as f64).sqrt()
    }
}

/// Peak/envelope follower modeling a rectifier with a hold capacitor:
/// instant attack, exponential release.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopeFollower {
    release: f64,
    y: f64,
}

impl EnvelopeFollower {
    /// Creates a follower whose held peak decays with time constant
    /// `tau_release` seconds, sampled every `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `tau_release` or `dt` is not positive.
    pub fn new(tau_release: f64, dt: f64) -> Self {
        assert!(tau_release > 0.0 && dt > 0.0, "tau and dt must be positive");
        EnvelopeFollower {
            release: (-dt / tau_release).exp(),
            y: 0.0,
        }
    }

    /// Processes the absolute value of one sample.
    pub fn update(&mut self, x: f64) -> f64 {
        let a = x.abs();
        self.y = if a > self.y { a } else { self.y * self.release };
        self.y
    }

    /// Current envelope estimate.
    pub fn output(&self) -> f64 {
        self.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_pole_step_response_matches_rc() {
        let tau = 1e-3;
        let dt = 1e-6;
        let mut f = OnePoleLowPass::new(tau, dt);
        let steps = (tau / dt) as usize; // one time constant
        let mut y = 0.0;
        for _ in 0..steps {
            y = f.update(1.0);
        }
        let expect = 1.0 - (-1.0f64).exp();
        assert!((y - expect).abs() < 1e-3, "{y} vs {expect}");
    }

    #[test]
    fn one_pole_from_cutoff_equivalent_to_tau() {
        let dt = 1e-6;
        let f_cut = 1000.0;
        let a = OnePoleLowPass::from_cutoff(f_cut, dt);
        let b = OnePoleLowPass::new(1.0 / (2.0 * std::f64::consts::PI * f_cut), dt);
        assert_eq!(a, b);
    }

    #[test]
    fn one_pole_attenuates_fast_sine() {
        let dt = 1e-6;
        let mut f = OnePoleLowPass::from_cutoff(1e3, dt);
        // 100 kHz sine, two decades above cutoff -> ~40 dB attenuation.
        let mut peak = 0.0f64;
        for i in 0..100_000 {
            let x = (2.0 * std::f64::consts::PI * 1e5 * i as f64 * dt).sin();
            let y = f.update(x);
            if i > 50_000 {
                peak = peak.max(y.abs());
            }
        }
        assert!(peak < 0.02, "peak {peak}");
    }

    #[test]
    fn one_pole_reset_to_sets_state() {
        let mut f = OnePoleLowPass::new(1.0, 0.1);
        f.reset_to(5.0);
        assert_eq!(f.output(), 5.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn one_pole_rejects_zero_tau() {
        let _ = OnePoleLowPass::new(0.0, 1e-6);
    }

    #[test]
    fn butterworth_passes_dc() {
        let mut f = Biquad::butterworth_lowpass(1e3, 1e6);
        let mut y = 0.0;
        for _ in 0..100_000 {
            y = f.update(1.0);
        }
        assert!((y - 1.0).abs() < 1e-6);
    }

    #[test]
    fn butterworth_attenuates_above_cutoff() {
        let fs = 1e6;
        let mut f = Biquad::butterworth_lowpass(1e3, fs);
        let mut peak = 0.0f64;
        for i in 0..200_000 {
            let x = (2.0 * std::f64::consts::PI * 1e4 * i as f64 / fs).sin();
            let y = f.update(x);
            if i > 100_000 {
                peak = peak.max(y.abs());
            }
        }
        // Second order: 40 dB/decade -> one decade above cutoff ~ 0.01.
        assert!(peak < 0.02, "peak {peak}");
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn butterworth_rejects_cutoff_above_nyquist() {
        let _ = Biquad::butterworth_lowpass(6e5, 1e6);
    }

    #[test]
    fn moving_rms_of_constant_is_constant() {
        let mut r = MovingRms::new(16);
        let mut y = 0.0;
        for _ in 0..64 {
            y = r.update(2.0);
        }
        assert!((y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn moving_rms_of_sine_approaches_invsqrt2() {
        let n = 1000; // window = exactly one period
        let mut r = MovingRms::new(n);
        let mut y = 0.0;
        for i in 0..(4 * n) {
            let x = (2.0 * std::f64::consts::PI * i as f64 / n as f64).sin();
            y = r.update(x);
        }
        assert!((y - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3, "{y}");
    }

    #[test]
    fn moving_rms_partial_window() {
        let mut r = MovingRms::new(100);
        let y = r.update(3.0);
        assert!((y - 3.0).abs() < 1e-12);
    }

    #[test]
    fn envelope_tracks_peak_and_decays() {
        let dt = 1e-6;
        let mut e = EnvelopeFollower::new(1e-3, dt);
        e.update(2.0);
        assert!((e.output() - 2.0).abs() < 1e-12);
        // decay for one time constant
        for _ in 0..1000 {
            e.update(0.0);
        }
        let expect = 2.0 * (-1.0f64).exp();
        assert!((e.output() - expect).abs() < 5e-3, "{}", e.output());
    }

    #[test]
    fn envelope_rectifies_negative_input() {
        let mut e = EnvelopeFollower::new(1e-3, 1e-6);
        e.update(-3.0);
        assert!((e.output() - 3.0).abs() < 1e-12);
    }
}
