//! Sparse linear algebra: a compressed-sparse-column matrix with a
//! KLU-style split between **symbolic analysis** and **numeric
//! factorization**.
//!
//! The dense [`crate::linalg::Matrix`] path is O(n³) per factorization and
//! caps MNA systems at toy size. Circuit matrices, however, have a fixed
//! sparsity pattern for a given netlist structure: only the *values* change
//! between Newton iterations, time steps and campaign jobs. This module
//! exploits that by doing all the pattern work once:
//!
//! 1. [`SparseSymbolic::analyze`] takes the structural pattern and computes
//!    a row matching (so the permuted diagonal is structurally nonzero — MNA
//!    voltage-source branch rows have a zero diagonal), a fill-reducing
//!    minimum-degree column ordering, and the exact elimination pattern of
//!    `L` and `U`. This is a pure function of the pattern: no numeric
//!    values are consulted, so the analysis can be cached per netlist
//!    structural digest and shared across threads without affecting
//!    results.
//! 2. [`SparseLu::factor_into`] scatters the current values into the
//!    precomputed pattern and runs a left-looking elimination with **no
//!    numeric pivoting** — the pivot order is fixed by the symbolic step.
//!    A pivot that underflows [`crate::linalg::SINGULAR_PIVOT_THRESHOLD`]
//!    reports [`NumError::SingularMatrix`] with the elimination step, the
//!    same semantics as the dense solver.
//!
//! Because the factorization path is a pure function of (pattern, values),
//! sparse results are bit-identical regardless of which thread computed the
//! symbolic analysis or how many jobs share it.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::linalg::pivot_is_singular;
use crate::{NumError, Result};

/// A compressed-sparse-column `f64` matrix with a fixed structural pattern.
///
/// The pattern (which `(row, col)` slots exist) is fixed at construction;
/// [`SparseMatrix::add`] accumulates into existing slots only. This mirrors
/// how MNA stamping works: the netlist fixes the pattern, each solve only
/// rewrites values.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds an `n x n` matrix whose structural slots are `entries`
    /// (`(row, col)` pairs, duplicates allowed and merged). All values start
    /// at zero.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] when `n == 0` or any index is out
    /// of range.
    pub fn from_pattern(n: usize, entries: &[(usize, usize)]) -> Result<Self> {
        if n == 0 {
            return Err(NumError::InvalidInput("sparse matrix must be non-empty"));
        }
        if entries.iter().any(|&(r, c)| r >= n || c >= n) {
            return Err(NumError::InvalidInput("pattern entry out of range"));
        }
        // Column-major sort, then dedup.
        let mut sorted: Vec<(usize, usize)> = entries.iter().map(|&(r, c)| (c, r)).collect();
        sorted.sort_unstable();
        sorted.dedup();
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_idx = Vec::with_capacity(sorted.len());
        for &(c, r) in &sorted {
            col_ptr[c + 1] += 1;
            row_idx.push(r);
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        let values = vec![0.0; row_idx.len()];
        Ok(SparseMatrix {
            n,
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of structural slots.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Resets every value to zero, keeping the pattern.
    pub fn clear(&mut self) {
        for v in &mut self.values {
            *v = 0.0;
        }
    }

    /// Accumulates `v` into slot `(i, j)`. Returns `false` (leaving the
    /// matrix untouched) when the slot is not part of the pattern, so
    /// callers can detect a pattern/stamp mismatch without panicking.
    #[must_use]
    pub fn add(&mut self, i: usize, j: usize, v: f64) -> bool {
        if i >= self.n || j >= self.n {
            return false;
        }
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        match self.row_idx[lo..hi].binary_search(&i) {
            Ok(pos) => {
                self.values[lo + pos] += v;
                true
            }
            Err(_) => false,
        }
    }

    /// Reads slot `(i, j)`; `None` when the slot is not in the pattern.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i >= self.n || j >= self.n {
            return None;
        }
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi]
            .binary_search(&i)
            .ok()
            .map(|pos| self.values[lo + pos])
    }
}

/// The cached, value-independent half of a sparse LU: permutations and the
/// exact elimination pattern. Computed once per structural pattern by
/// [`SparseSymbolic::analyze`]; shared across factorizations via `Arc`.
#[derive(Debug, Clone)]
pub struct SparseSymbolic {
    n: usize,
    /// Original row stored at permuted row position `k`.
    perm_row: Vec<usize>,
    /// Original column eliminated at step `k`.
    perm_col: Vec<usize>,
    /// Factor pattern in CSC over permuted indices; each column ascending.
    lu_col_ptr: Vec<usize>,
    lu_row_idx: Vec<usize>,
    /// Position of the diagonal inside each factor column.
    diag_idx: Vec<usize>,
    /// Canonical input pattern (for a cheap compatibility check at factor
    /// time) plus a precomputed scatter map: for every input CSC slot, the
    /// permuted row it lands on.
    a_col_ptr: Vec<usize>,
    a_row_idx: Vec<usize>,
    scatter_row: Vec<usize>,
}

impl SparseSymbolic {
    /// Analyzes the structural pattern of `a`.
    ///
    /// The result depends only on the pattern — never on values — which is
    /// what makes caching it per netlist digest sound and keeps factor
    /// results independent of which thread performed the analysis.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::SingularMatrix`] when the pattern is structurally
    /// singular (no complete row matching exists); the reported `pivot` is
    /// the first column that cannot be matched.
    pub fn analyze(a: &SparseMatrix) -> Result<Self> {
        let n = a.n;
        // Column adjacency over original indices.
        let col_rows: Vec<&[usize]> = (0..n)
            .map(|c| &a.row_idx[a.col_ptr[c]..a.col_ptr[c + 1]])
            .collect();

        let match_row = maximum_matching(n, &col_rows)?;

        // Relabel rows so the matched row of column `c` sits at row `c`:
        // the diagonal of the relabeled structure is structurally nonzero.
        let mut row_pos = vec![0usize; n];
        for (c, &r) in match_row.iter().enumerate() {
            row_pos[r] = c;
        }

        // Fill-reducing order on the symmetrized relabeled structure.
        let order = minimum_degree_order(n, &col_rows, &row_pos);
        let mut inv_order = vec![0usize; n];
        for (k, &c) in order.iter().enumerate() {
            inv_order[c] = k;
        }

        // Exact symbolic elimination on the doubly-permuted structure.
        let mut cols: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        let mut rows: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for c in 0..n {
            let j = inv_order[c];
            for &r in col_rows[c] {
                let i = inv_order[row_pos[r]];
                cols[j].insert(i);
                rows[i].insert(j);
            }
        }
        for k in 0..n {
            let below: Vec<usize> = cols[k].range(k + 1..).copied().collect();
            let right: Vec<usize> = rows[k].range(k + 1..).copied().collect();
            for &i in &below {
                for &j in &right {
                    if cols[j].insert(i) {
                        rows[i].insert(j);
                    }
                }
            }
        }

        // Freeze the factor pattern into CSC arrays.
        let mut lu_col_ptr = Vec::with_capacity(n + 1);
        let mut lu_row_idx = Vec::new();
        let mut diag_idx = Vec::with_capacity(n);
        lu_col_ptr.push(0);
        for (j, col) in cols.iter().enumerate() {
            let base = lu_row_idx.len();
            let mut diag = None;
            for (off, &i) in col.iter().enumerate() {
                if i == j {
                    diag = Some(base + off);
                }
                lu_row_idx.push(i);
            }
            // The matching guarantees a structural diagonal in every column.
            diag_idx.push(diag.ok_or(NumError::InvalidInput(
                "symbolic elimination lost a structural diagonal",
            ))?);
            lu_col_ptr.push(lu_row_idx.len());
        }

        // Final permutations over original indices and the scatter map for
        // every input slot.
        let perm_col: Vec<usize> = order.clone();
        let perm_row: Vec<usize> = order.iter().map(|&c| match_row[c]).collect();
        let mut scatter_row = vec![0usize; a.row_idx.len()];
        for c in 0..n {
            for slot in a.col_ptr[c]..a.col_ptr[c + 1] {
                scatter_row[slot] = inv_order[row_pos[a.row_idx[slot]]];
            }
        }

        Ok(SparseSymbolic {
            n,
            perm_row,
            perm_col,
            lu_col_ptr,
            lu_row_idx,
            diag_idx,
            a_col_ptr: a.col_ptr.clone(),
            a_row_idx: a.row_idx.clone(),
            scatter_row,
        })
    }

    /// Matrix dimension this analysis applies to.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Structural slot count of the analyzed input pattern.
    pub fn input_nnz(&self) -> usize {
        self.a_row_idx.len()
    }

    /// Slot count of the `L + U` factor pattern (fill included).
    pub fn factor_nnz(&self) -> usize {
        self.lu_row_idx.len()
    }

    /// A zero-valued matrix with exactly the analyzed pattern — the
    /// canonical way to obtain a matrix that [`SparseLu::factor_into`] will
    /// accept.
    pub fn matrix(&self) -> SparseMatrix {
        SparseMatrix {
            n: self.n,
            col_ptr: self.a_col_ptr.clone(),
            row_idx: self.a_row_idx.clone(),
            values: vec![0.0; self.a_row_idx.len()],
        }
    }

    fn pattern_matches(&self, a: &SparseMatrix) -> bool {
        a.n == self.n && a.col_ptr == self.a_col_ptr && a.row_idx == self.a_row_idx
    }
}

/// Maximum bipartite matching columns → rows via BFS augmenting paths,
/// preferring the diagonal so well-posed node equations keep their natural
/// pivot. Deterministic: adjacency is scanned in ascending row order and
/// columns are processed in ascending index order.
fn maximum_matching(n: usize, col_rows: &[&[usize]]) -> Result<Vec<usize>> {
    let mut match_row: Vec<Option<usize>> = vec![None; n];
    let mut match_col: Vec<Option<usize>> = vec![None; n];
    // Cheap pass: take the diagonal wherever it exists.
    for (c, rows) in col_rows.iter().enumerate() {
        if rows.binary_search(&c).is_ok() && match_col[c].is_none() {
            match_row[c] = Some(c);
            match_col[c] = Some(c);
        }
    }
    let mut prev_col = vec![0usize; n];
    let mut via_row = vec![0usize; n];
    let mut visited = vec![false; n];
    let mut enqueued = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if match_row[start].is_some() {
            continue;
        }
        visited.fill(false);
        enqueued.fill(false);
        queue.clear();
        queue.push_back(start);
        enqueued[start] = true;
        let mut free = None;
        'bfs: while let Some(c) = queue.pop_front() {
            for &r in col_rows[c] {
                if visited[r] {
                    continue;
                }
                visited[r] = true;
                prev_col[r] = c;
                match match_col[r] {
                    None => {
                        free = Some(r);
                        break 'bfs;
                    }
                    Some(c2) => {
                        if !enqueued[c2] {
                            enqueued[c2] = true;
                            via_row[c2] = r;
                            queue.push_back(c2);
                        }
                    }
                }
            }
        }
        let Some(mut r) = free else {
            return Err(NumError::SingularMatrix { pivot: start });
        };
        // Flip the alternating path back to the start column.
        loop {
            let c = prev_col[r];
            match_row[c] = Some(r);
            match_col[r] = Some(c);
            if c == start {
                break;
            }
            r = via_row[c];
        }
    }
    Ok(match_row
        .into_iter()
        .map(|r| r.expect("every column matched"))
        .collect())
}

/// Greedy minimum-degree ordering on the symmetrized, row-relabeled
/// structure. Ties break toward the lowest index, so the order is a
/// deterministic function of the pattern.
fn minimum_degree_order(n: usize, col_rows: &[&[usize]], row_pos: &[usize]) -> Vec<usize> {
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (c, rows) in col_rows.iter().enumerate() {
        for &r in rows.iter() {
            let i = row_pos[r];
            if i != c {
                adj[i].insert(c);
                adj[c].insert(i);
            }
        }
    }
    let mut alive = vec![true; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for (v, a) in adj.iter().enumerate() {
            if alive[v] && a.len() < best_deg {
                best_deg = a.len();
                best = v;
            }
        }
        let v = best;
        order.push(v);
        alive[v] = false;
        let neighbors: Vec<usize> = adj[v].iter().copied().collect();
        for &u in &neighbors {
            adj[u].remove(&v);
        }
        for (ai, &u) in neighbors.iter().enumerate() {
            for &w in &neighbors[ai + 1..] {
                adj[u].insert(w);
                adj[w].insert(u);
            }
        }
        adj[v].clear();
    }
    order
}

/// Numeric sparse LU over a cached [`SparseSymbolic`] pattern.
///
/// After construction the buffers never grow: `factor_into` and
/// `solve_into` are allocation-free, matching the dense
/// [`crate::linalg::LuFactors`] steady-state contract.
#[derive(Debug, Clone)]
pub struct SparseLu {
    sym: Arc<SparseSymbolic>,
    values: Vec<f64>,
    work: Vec<f64>,
}

impl SparseLu {
    /// Creates numeric storage for the given symbolic analysis.
    pub fn new(sym: Arc<SparseSymbolic>) -> Self {
        let nnz = sym.factor_nnz();
        let n = sym.n;
        SparseLu {
            sym,
            values: vec![0.0; nnz],
            work: vec![0.0; n],
        }
    }

    /// The symbolic analysis this factorization reuses.
    pub fn symbolic(&self) -> &Arc<SparseSymbolic> {
        &self.sym
    }

    /// Factorizes `a` into the cached pattern (left-looking, fixed pivot
    /// order, no heap allocation).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] when `a` was not built from this
    /// symbolic pattern or contains non-finite values, and
    /// [`NumError::SingularMatrix`] when a pivot underflows the shared
    /// [`crate::linalg::SINGULAR_PIVOT_THRESHOLD`]. On error the previous
    /// factors are destroyed.
    pub fn factor_into(&mut self, a: &SparseMatrix) -> Result<()> {
        if !self.sym.pattern_matches(a) {
            return Err(NumError::InvalidInput(
                "matrix pattern does not match symbolic analysis",
            ));
        }
        if a.values.iter().any(|v| !v.is_finite()) {
            return Err(NumError::InvalidInput("matrix has non-finite entries"));
        }
        let sym = &*self.sym;
        let n = sym.n;
        let x = &mut self.work;
        let lu = &mut self.values;
        for v in x.iter_mut() {
            *v = 0.0;
        }
        for j in 0..n {
            // Scatter the permuted input column into the dense workspace.
            let c = sym.perm_col[j];
            for slot in a.col_ptr[c]..a.col_ptr[c + 1] {
                x[sym.scatter_row[slot]] = a.values[slot];
            }
            let lo = sym.lu_col_ptr[j];
            let hi = sym.lu_col_ptr[j + 1];
            let dj = sym.diag_idx[j];
            // Left-looking update: ascending U rows, each applying the
            // already-final L column k.
            for ptr in lo..dj {
                let k = sym.lu_row_idx[ptr];
                let xk = x[k];
                lu[ptr] = xk;
                if xk != 0.0 {
                    for lptr in (sym.diag_idx[k] + 1)..sym.lu_col_ptr[k + 1] {
                        x[sym.lu_row_idx[lptr]] -= lu[lptr] * xk;
                    }
                }
            }
            let pivot = x[j];
            if pivot_is_singular(pivot.abs()) {
                // Re-zero the workspace so a later retry starts clean.
                for ptr in lo..hi {
                    x[sym.lu_row_idx[ptr]] = 0.0;
                }
                return Err(NumError::SingularMatrix { pivot: j });
            }
            lu[dj] = pivot;
            for ptr in (dj + 1)..hi {
                lu[ptr] = x[sym.lu_row_idx[ptr]] / pivot;
            }
            // Clear exactly the touched entries (the factor pattern is the
            // closure of every update this column received).
            for ptr in lo..hi {
                x[sym.lu_row_idx[ptr]] = 0.0;
            }
        }
        Ok(())
    }

    /// Solves `A x = b` for the factorized `A`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] on a length mismatch.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = vec![0.0; self.sym.n];
        let mut scratch = vec![0.0; self.sym.n];
        self.solve_with(b, &mut x, &mut scratch)?;
        Ok(x)
    }

    /// Solves `A x = b` into caller-provided buffers with no allocation.
    /// `y` is forward/backward substitution scratch.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] when `b`, `x` or `y` does not
    /// match the factorized dimension.
    pub fn solve_with(&self, b: &[f64], x: &mut [f64], y: &mut [f64]) -> Result<()> {
        let sym = &*self.sym;
        let n = sym.n;
        if b.len() != n || x.len() != n || y.len() != n {
            return Err(NumError::InvalidInput("rhs length mismatch"));
        }
        // y = P_row b.
        for (k, &r) in sym.perm_row.iter().enumerate() {
            y[k] = b[r];
        }
        // Forward substitution with unit-diagonal L, column by column.
        for k in 0..n {
            let yk = y[k];
            if yk != 0.0 {
                for ptr in (sym.diag_idx[k] + 1)..sym.lu_col_ptr[k + 1] {
                    y[sym.lu_row_idx[ptr]] -= self.values[ptr] * yk;
                }
            }
        }
        // Back substitution with U, column by column.
        for j in (0..n).rev() {
            let yj = y[j] / self.values[sym.diag_idx[j]];
            y[j] = yj;
            if yj != 0.0 {
                for ptr in sym.lu_col_ptr[j]..sym.diag_idx[j] {
                    y[sym.lu_row_idx[ptr]] -= self.values[ptr] * yj;
                }
            }
        }
        // Undo the column permutation.
        for (j, &c) in sym.perm_col.iter().enumerate() {
            x[c] = y[j];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Matrix;

    fn dense_pattern(rows: &[&[f64]]) -> (Vec<(usize, usize)>, Matrix) {
        let n = rows.len();
        let mut entries = Vec::new();
        let mut m = Matrix::zeros(n, n);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    entries.push((i, j));
                    m.add(i, j, v);
                }
            }
        }
        (entries, m)
    }

    fn sparse_from(rows: &[&[f64]]) -> (SparseLu, SparseMatrix, Matrix) {
        let n = rows.len();
        let (entries, dense) = dense_pattern(rows);
        let mut a = SparseMatrix::from_pattern(n, &entries).unwrap();
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    assert!(a.add(i, j, v));
                }
            }
        }
        let sym = Arc::new(SparseSymbolic::analyze(&a).unwrap());
        (SparseLu::new(sym), a, dense)
    }

    #[test]
    fn matches_dense_on_small_system() {
        let rows: &[&[f64]] = &[&[4.0, 1.0, 0.0], &[1.0, 3.0, -1.0], &[0.0, -1.0, 2.5]];
        let (mut lu, a, dense) = sparse_from(rows);
        lu.factor_into(&a).unwrap();
        let b = [1.0, -2.0, 0.5];
        let xs = lu.solve(&b).unwrap();
        let xd = dense.solve(&b).unwrap();
        for (s, d) in xs.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-12, "{s} vs {d}");
        }
    }

    #[test]
    fn handles_zero_diagonal_saddle_rows() {
        // MNA with a voltage source: the branch row has a zero diagonal and
        // needs the structural matching to find an off-diagonal pivot.
        let rows: &[&[f64]] = &[&[2.0, 0.0, 1.0], &[0.0, 1.0, -1.0], &[1.0, -1.0, 0.0]];
        let (mut lu, a, dense) = sparse_from(rows);
        lu.factor_into(&a).unwrap();
        let b = [0.0, 0.0, 5.0];
        let xs = lu.solve(&b).unwrap();
        let xd = dense.solve(&b).unwrap();
        for (s, d) in xs.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-9, "{s} vs {d}");
        }
    }

    #[test]
    fn tridiagonal_ladder_matches_dense() {
        let n = 60;
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i));
            if i + 1 < n {
                entries.push((i, i + 1));
                entries.push((i + 1, i));
            }
        }
        let mut a = SparseMatrix::from_pattern(n, &entries).unwrap();
        let mut dense = Matrix::zeros(n, n);
        for i in 0..n {
            let d = 2.0 + (i as f64) * 0.01;
            assert!(a.add(i, i, d));
            dense.add(i, i, d);
            if i + 1 < n {
                assert!(a.add(i, i + 1, -1.0));
                assert!(a.add(i + 1, i, -1.0));
                dense.add(i, i + 1, -1.0);
                dense.add(i + 1, i, -1.0);
            }
        }
        let sym = Arc::new(SparseSymbolic::analyze(&a).unwrap());
        // Tridiagonal systems admit an ordering with almost no fill.
        assert!(sym.factor_nnz() <= sym.input_nnz() + n);
        let mut lu = SparseLu::new(sym);
        lu.factor_into(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let xs = lu.solve(&b).unwrap();
        let xd = dense.solve(&b).unwrap();
        for (s, d) in xs.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-9, "{s} vs {d}");
        }
    }

    #[test]
    fn refactor_with_new_values_reuses_pattern() {
        let rows: &[&[f64]] = &[&[3.0, 1.0], &[1.0, 2.0]];
        let (mut lu, mut a, _) = sparse_from(rows);
        lu.factor_into(&a).unwrap();
        let x1 = lu.solve(&[1.0, 0.0]).unwrap();
        assert!((x1[0] - 0.4).abs() < 1e-12);
        a.clear();
        assert!(a.add(0, 0, 1.0));
        assert!(a.add(0, 1, 0.0));
        assert!(a.add(1, 0, 0.0));
        assert!(a.add(1, 1, 4.0));
        lu.factor_into(&a).unwrap();
        let x2 = lu.solve(&[1.0, 2.0]).unwrap();
        assert!((x2[0] - 1.0).abs() < 1e-12 && (x2[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn structurally_singular_pattern_rejected_at_analysis() {
        // Column 1 is empty: no matching can exist.
        let a = SparseMatrix::from_pattern(2, &[(0, 0), (1, 0)]).unwrap();
        let e = SparseSymbolic::analyze(&a).unwrap_err();
        assert!(matches!(e, NumError::SingularMatrix { pivot: 1 }));
    }

    #[test]
    fn numerically_singular_matrix_rejected_at_factor() {
        let rows: &[&[f64]] = &[&[1.0, 2.0], &[2.0, 4.0]];
        let (mut lu, a, dense) = sparse_from(rows);
        let es = lu.factor_into(&a).unwrap_err();
        let ed = dense.solve(&[1.0, 1.0]).unwrap_err();
        assert!(matches!(es, NumError::SingularMatrix { .. }));
        assert!(matches!(ed, NumError::SingularMatrix { .. }));
    }

    #[test]
    fn non_finite_values_rejected() {
        let rows: &[&[f64]] = &[&[1.0, 0.0], &[0.0, 1.0]];
        let (mut lu, mut a, _) = sparse_from(rows);
        assert!(a.add(0, 0, f64::NAN));
        let e = lu.factor_into(&a).unwrap_err();
        assert!(matches!(e, NumError::InvalidInput(_)));
    }

    #[test]
    fn add_outside_pattern_is_reported_not_panicked() {
        let mut a = SparseMatrix::from_pattern(2, &[(0, 0), (1, 1)]).unwrap();
        assert!(a.add(0, 0, 1.0));
        assert!(!a.add(0, 1, 1.0));
        assert!(!a.add(5, 0, 1.0));
        assert_eq!(a.get(0, 1), None);
    }

    #[test]
    fn pattern_mismatch_rejected_at_factor() {
        let a = SparseMatrix::from_pattern(2, &[(0, 0), (1, 1)]).unwrap();
        let sym = Arc::new(SparseSymbolic::analyze(&a).unwrap());
        let other = SparseMatrix::from_pattern(2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let mut lu = SparseLu::new(sym);
        let e = lu.factor_into(&other).unwrap_err();
        assert!(matches!(e, NumError::InvalidInput(_)));
    }

    #[test]
    fn symbolic_matrix_roundtrip_has_same_pattern() {
        let a = SparseMatrix::from_pattern(3, &[(0, 0), (1, 1), (2, 2), (0, 2), (2, 0)]).unwrap();
        let sym = SparseSymbolic::analyze(&a).unwrap();
        let m = sym.matrix();
        assert_eq!(m.dim(), 3);
        assert_eq!(m.nnz(), 5);
        assert!(sym.pattern_matches(&m));
    }

    #[test]
    fn solve_is_deterministic_across_repeats() {
        let rows: &[&[f64]] = &[
            &[5.0, -1.0, 0.0, 2.0],
            &[-1.0, 4.0, -1.0, 0.0],
            &[0.0, -1.0, 3.0, -1.0],
            &[2.0, 0.0, -1.0, 6.0],
        ];
        let (mut lu, a, _) = sparse_from(rows);
        lu.factor_into(&a).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        let first = lu.solve(&b).unwrap();
        for _ in 0..3 {
            lu.factor_into(&a).unwrap();
            let again = lu.solve(&b).unwrap();
            assert_eq!(
                first.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                again.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
