//! Batched (structure-of-arrays) dense LU for same-structure sweeps.
//!
//! Campaign workloads solve thousands of MNA systems that share one sparsity
//! structure and differ only in element values. This module stores `lanes`
//! such systems interleaved — every matrix entry holds its `lanes` values
//! contiguously — so one pass over the elimination control flow advances all
//! lanes at once, and the inner loops are plain elementwise arithmetic the
//! compiler can vectorize.
//!
//! ## Determinism contract
//!
//! Both kernels perform, for every lane, *exactly* the floating-point
//! operation sequence of the per-system reference
//! ([`LuFactors::factor_into`] / [`LuFactors::solve_into`]): the same pivot
//! comparisons, the same row swaps, the same ascending-column elimination
//! and substitution order. No dot products are reassociated and no
//! fused-multiply-adds are introduced, so the factors and solutions are
//! bit-for-bit identical to factoring each lane on its own — regardless of
//! which kernel runs. The kernels differ only in loop nesting:
//!
//! - [`ScalarKernel`] walks lanes in the outer loop, replaying the reference
//!   elimination verbatim per lane (strided access, no vectorization).
//! - [`WideKernel`] walks lanes in the inner loop over the lane-contiguous
//!   storage, which autovectorizes on AVX2 (and on any other target with
//!   f64 SIMD). Only elementwise ops (`-`, `*`, `/`, compare, swap) appear
//!   in the lane loops — the subset whose SIMD semantics are IEEE-identical
//!   to scalar execution.
//!
//! [`select_kernel`] picks [`WideKernel`] when the CPU reports AVX2 and
//! falls back to [`ScalarKernel`] otherwise; `LCOSC_FORCE_SCALAR=1` forces
//! the fallback so CI can byte-compare both paths end to end.
//!
//! [`LuFactors::factor_into`]: crate::linalg::LuFactors::factor_into
//! [`LuFactors::solve_into`]: crate::linalg::LuFactors::solve_into

use crate::linalg::Matrix;
use crate::NumError;
use std::sync::OnceLock;

/// Outcome of factorizing one lane of a [`BatchedMatrix`].
///
/// A failed lane carries exactly the [`NumError`] the per-system reference
/// factorization would have returned for that lane's matrix; sibling lanes
/// are unaffected. The factors, permutation and solve output of a failed
/// lane are unspecified garbage and must not be read.
#[derive(Debug, Clone, PartialEq)]
pub enum LaneStatus {
    /// The lane factorized successfully and can be solved.
    Ok,
    /// The lane failed; sibling lanes are untouched.
    Failed(NumError),
}

impl LaneStatus {
    /// `true` when the lane factorized successfully.
    pub fn is_ok(&self) -> bool {
        matches!(self, LaneStatus::Ok)
    }

    /// The lane's error, when it failed.
    pub fn error(&self) -> Option<&NumError> {
        match self {
            LaneStatus::Ok => None,
            LaneStatus::Failed(e) => Some(e),
        }
    }
}

/// `lanes` dense `n × n` systems stored structure-of-arrays: entry `(r, c)`
/// of lane `l` lives at `(r * n + c) * lanes + l`, so all lanes of one
/// entry are contiguous.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedMatrix {
    n: usize,
    lanes: usize,
    data: Vec<f64>,
}

impl BatchedMatrix {
    /// Creates a zero-filled batch of `lanes` square `n × n` systems.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `lanes` is zero.
    pub fn zeros(n: usize, lanes: usize) -> Self {
        assert!(n > 0 && lanes > 0, "batch dimensions must be non-zero");
        BatchedMatrix {
            n,
            lanes,
            data: vec![0.0; n * n * lanes],
        }
    }

    /// System dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of lanes (systems) in the batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Sets every entry of every lane to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// The lane-contiguous values of entry `(row, col)`, mutable — the
    /// batched MNA stamp target.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn entry_lanes_mut(&mut self, row: usize, col: usize) -> &mut [f64] {
        assert!(row < self.n && col < self.n, "batch index out of bounds");
        let base = (row * self.n + col) * self.lanes;
        &mut self.data[base..base + self.lanes]
    }

    /// The lane-contiguous values of entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn entry_lanes(&self, row: usize, col: usize) -> &[f64] {
        assert!(row < self.n && col < self.n, "batch index out of bounds");
        let base = (row * self.n + col) * self.lanes;
        &self.data[base..base + self.lanes]
    }

    /// Adds `value` to entry `(row, col)` of one lane.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn add(&mut self, row: usize, col: usize, lane: usize, value: f64) {
        assert!(lane < self.lanes, "batch lane out of bounds");
        self.entry_lanes_mut(row, col)[lane] += value;
    }

    /// Copies a dense matrix into one lane (gather-free scatter; used by
    /// tests and by per-lane bridging code).
    ///
    /// # Panics
    ///
    /// Panics if `m` is not `n × n` or `lane` is out of bounds.
    pub fn set_lane(&mut self, lane: usize, m: &Matrix) {
        assert!(lane < self.lanes, "batch lane out of bounds");
        assert!(
            m.rows() == self.n && m.cols() == self.n,
            "lane matrix dimension mismatch"
        );
        for r in 0..self.n {
            for c in 0..self.n {
                self.data[(r * self.n + c) * self.lanes + lane] = m[(r, c)];
            }
        }
    }

    /// Extracts one lane as a dense [`Matrix`] (the reference-path view of
    /// that lane's system).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds.
    pub fn lane_matrix(&self, lane: usize) -> Matrix {
        assert!(lane < self.lanes, "batch lane out of bounds");
        let mut m = Matrix::zeros(self.n, self.n);
        for r in 0..self.n {
            for c in 0..self.n {
                m[(r, c)] = self.data[(r * self.n + c) * self.lanes + lane];
            }
        }
        m
    }
}

/// `lanes` right-hand-side (or solution) vectors of dimension `n`, stored
/// lane-contiguous per row: entry `row` of lane `l` lives at
/// `row * lanes + l`.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedRhs {
    n: usize,
    lanes: usize,
    data: Vec<f64>,
}

impl BatchedRhs {
    /// Creates a zero-filled batch of `lanes` vectors of dimension `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `lanes` is zero.
    pub fn zeros(n: usize, lanes: usize) -> Self {
        assert!(n > 0 && lanes > 0, "batch dimensions must be non-zero");
        BatchedRhs {
            n,
            lanes,
            data: vec![0.0; n * lanes],
        }
    }

    /// Vector dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of lanes in the batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Sets every entry of every lane to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// The lane-contiguous values of `row`, mutable — the batched RHS stamp
    /// target (`+=` accumulation and `=` assignment both happen here).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_lanes_mut(&mut self, row: usize) -> &mut [f64] {
        assert!(row < self.n, "batch row out of bounds");
        let base = row * self.lanes;
        &mut self.data[base..base + self.lanes]
    }

    /// The lane-contiguous values of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_lanes(&self, row: usize) -> &[f64] {
        assert!(row < self.n, "batch row out of bounds");
        let base = row * self.lanes;
        &self.data[base..base + self.lanes]
    }

    /// One entry of one lane.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn at(&self, row: usize, lane: usize) -> f64 {
        assert!(lane < self.lanes, "batch lane out of bounds");
        self.row_lanes(row)[lane]
    }

    /// Copies a dense vector into one lane.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != n` or `lane` is out of bounds.
    pub fn set_lane(&mut self, lane: usize, v: &[f64]) {
        assert!(lane < self.lanes, "batch lane out of bounds");
        assert!(v.len() == self.n, "lane vector dimension mismatch");
        for (row, &value) in v.iter().enumerate() {
            self.data[row * self.lanes + lane] = value;
        }
    }

    /// Gathers one lane into a caller buffer (the per-lane solution view).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != n` or `lane` is out of bounds.
    pub fn lane_copy_into(&self, lane: usize, out: &mut [f64]) {
        assert!(lane < self.lanes, "batch lane out of bounds");
        assert!(out.len() == self.n, "lane vector dimension mismatch");
        for (row, slot) in out.iter_mut().enumerate() {
            *slot = self.data[row * self.lanes + lane];
        }
    }
}

/// Batched LU factors with per-lane permutation, sign and status, in the
/// same lane-contiguous layout as [`BatchedMatrix`].
#[derive(Debug, Clone)]
pub struct BatchedLuFactors {
    n: usize,
    lanes: usize,
    lu: Vec<f64>,
    /// Row permutation per lane: `perm[k * lanes + lane]`.
    perm: Vec<usize>,
    /// Permutation sign per lane (`det` bookkeeping, mirrors `LuFactors`).
    sign: Vec<f64>,
    status: Vec<LaneStatus>,
}

impl BatchedLuFactors {
    /// Creates empty factor storage pre-sized for `lanes` `n × n` systems.
    ///
    /// Not usable for solves until a kernel's
    /// [`factor`](BatchedLuSolver::factor) has run; this only reserves the
    /// buffers so factorization does not reallocate.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `lanes` is zero.
    pub fn with_dims(n: usize, lanes: usize) -> Self {
        assert!(n > 0 && lanes > 0, "batch dimensions must be non-zero");
        BatchedLuFactors {
            n,
            lanes,
            lu: vec![0.0; n * n * lanes],
            perm: vec![0; n * lanes],
            sign: vec![1.0; lanes],
            status: vec![LaneStatus::Ok; lanes],
        }
    }

    /// System dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of lanes in the batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Factorization outcome of one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds.
    pub fn status(&self, lane: usize) -> &LaneStatus {
        &self.status[lane]
    }

    /// Per-lane factorization outcomes, lane order.
    pub fn statuses(&self) -> &[LaneStatus] {
        &self.status
    }

    /// `true` when every lane factorized successfully.
    pub fn all_ok(&self) -> bool {
        self.status.iter().all(LaneStatus::is_ok)
    }

    /// Determinant of one lane's factorized matrix (garbage for failed
    /// lanes).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds.
    pub fn lane_det(&self, lane: usize) -> f64 {
        assert!(lane < self.lanes, "batch lane out of bounds");
        let mut d = self.sign[lane];
        for i in 0..self.n {
            d *= self.lu[(i * self.n + i) * self.lanes + lane];
        }
        d
    }
}

/// A batched LU backend: factor `lanes` same-structure systems at once and
/// solve them against batched right-hand sides.
///
/// Implementations must uphold the module's determinism contract: per lane,
/// results are bit-identical to the per-system reference path.
pub trait BatchedLuSolver: Sync {
    /// Kernel name for reports and traces (`"wide"` / `"scalar"`). Never
    /// part of golden output — kernel choice must be observationally
    /// invisible.
    fn name(&self) -> &'static str;

    /// Factorizes every lane of `a` into `out`, recording a per-lane
    /// [`LaneStatus`]. A failing lane never corrupts its siblings.
    fn factor(&self, a: &BatchedMatrix, out: &mut BatchedLuFactors);

    /// Solves `A_l x_l = b_l` for every lane. Lanes whose factorization
    /// failed produce unspecified garbage in `x` (check
    /// [`BatchedLuFactors::status`]); sibling lanes are exact.
    ///
    /// # Panics
    ///
    /// Panics if `f`, `b` and `x` disagree on dimension or lane count.
    fn solve(&self, f: &BatchedLuFactors, b: &BatchedRhs, x: &mut BatchedRhs);
}

/// Resets `out` from `a` and runs the per-lane non-finite entry scan — the
/// exact precondition the reference `factor_into` enforces before touching
/// any arithmetic. Shared by both kernels (the scan's outcome is
/// order-independent).
fn begin_factor(a: &BatchedMatrix, out: &mut BatchedLuFactors) {
    let n = a.n;
    let lanes = a.lanes;
    out.n = n;
    out.lanes = lanes;
    out.lu.clear();
    out.lu.extend_from_slice(&a.data);
    out.perm.clear();
    for i in 0..n {
        for _ in 0..lanes {
            out.perm.push(i);
        }
    }
    out.sign.clear();
    out.sign.resize(lanes, 1.0);
    out.status.clear();
    out.status.resize(lanes, LaneStatus::Ok);
    for chunk in a.data.chunks_exact(lanes) {
        for (st, &v) in out.status.iter_mut().zip(chunk) {
            if !v.is_finite() {
                *st = LaneStatus::Failed(NumError::InvalidInput("matrix has non-finite entries"));
            }
        }
    }
}

/// The reference pivot-underflow test (shared with `factor_into` via
/// [`crate::linalg::pivot_is_singular`], so batched lanes and the dense
/// solver agree byte-for-byte on which lane is singular).
fn pivot_fails(pmax: f64) -> bool {
    crate::linalg::pivot_is_singular(pmax)
}

/// Lane-outer fallback kernel: replays the reference elimination verbatim
/// for each lane over the strided SoA storage. Always available; selected
/// when AVX2 is absent or `LCOSC_FORCE_SCALAR=1` is set.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarKernel;

impl BatchedLuSolver for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn factor(&self, a: &BatchedMatrix, out: &mut BatchedLuFactors) {
        begin_factor(a, out);
        let n = out.n;
        let lanes = out.lanes;
        for lane in 0..lanes {
            if !out.status[lane].is_ok() {
                continue;
            }
            'elim: for k in 0..n {
                let mut p = k;
                let mut pmax = out.lu[(k * n + k) * lanes + lane].abs();
                for i in (k + 1)..n {
                    let v = out.lu[(i * n + k) * lanes + lane].abs();
                    if v > pmax {
                        pmax = v;
                        p = i;
                    }
                }
                if pivot_fails(pmax) {
                    out.status[lane] = LaneStatus::Failed(NumError::SingularMatrix { pivot: k });
                    break 'elim;
                }
                if p != k {
                    for j in 0..n {
                        out.lu
                            .swap((k * n + j) * lanes + lane, (p * n + j) * lanes + lane);
                    }
                    out.perm.swap(k * lanes + lane, p * lanes + lane);
                    out.sign[lane] = -out.sign[lane];
                }
                let pivot = out.lu[(k * n + k) * lanes + lane];
                for i in (k + 1)..n {
                    let factor = out.lu[(i * n + k) * lanes + lane] / pivot;
                    out.lu[(i * n + k) * lanes + lane] = factor;
                    for j in (k + 1)..n {
                        let sub = factor * out.lu[(k * n + j) * lanes + lane];
                        out.lu[(i * n + j) * lanes + lane] -= sub;
                    }
                }
            }
        }
    }

    fn solve(&self, f: &BatchedLuFactors, b: &BatchedRhs, x: &mut BatchedRhs) {
        assert_solve_dims(f, b, x);
        let n = f.n;
        let lanes = f.lanes;
        for lane in 0..lanes {
            for i in 0..n {
                x.data[i * lanes + lane] = b.data[f.perm[i * lanes + lane] * lanes + lane];
            }
            for i in 1..n {
                let mut s = x.data[i * lanes + lane];
                for j in 0..i {
                    s -= f.lu[(i * n + j) * lanes + lane] * x.data[j * lanes + lane];
                }
                x.data[i * lanes + lane] = s;
            }
            for i in (0..n).rev() {
                let mut s = x.data[i * lanes + lane];
                for j in (i + 1)..n {
                    s -= f.lu[(i * n + j) * lanes + lane] * x.data[j * lanes + lane];
                }
                x.data[i * lanes + lane] = s / f.lu[(i * n + i) * lanes + lane];
            }
        }
    }
}

/// Lane-inner kernel: identical per-lane operation sequence to
/// [`ScalarKernel`], but with lanes in the innermost loops over contiguous
/// storage so the elimination and substitution updates autovectorize
/// (AVX2: 4 × f64 per instruction). Dead lanes keep computing harmless
/// garbage to keep the loops uniform; their status records the real error.
#[derive(Debug, Clone, Copy, Default)]
pub struct WideKernel;

impl BatchedLuSolver for WideKernel {
    fn name(&self) -> &'static str {
        "wide"
    }

    fn factor(&self, a: &BatchedMatrix, out: &mut BatchedLuFactors) {
        begin_factor(a, out);
        let n = out.n;
        let lanes = out.lanes;
        let mut pmax = vec![0.0f64; lanes];
        let mut prow = vec![0usize; lanes];
        let mut fac = vec![0.0f64; lanes];
        for k in 0..n {
            // Per-lane pivot search: same `v > pmax` comparison chain as the
            // reference, so ties resolve to the same row in every lane.
            let kk = (k * n + k) * lanes;
            for (lane, (pm, pr)) in pmax.iter_mut().zip(prow.iter_mut()).enumerate() {
                *pm = out.lu[kk + lane].abs();
                *pr = k;
            }
            for i in (k + 1)..n {
                let rb = (i * n + k) * lanes;
                for (lane, (pm, pr)) in pmax.iter_mut().zip(prow.iter_mut()).enumerate() {
                    let v = out.lu[rb + lane].abs();
                    if v > *pm {
                        *pm = v;
                        *pr = i;
                    }
                }
            }
            for (st, &pm) in out.status.iter_mut().zip(&pmax) {
                if st.is_ok() && pivot_fails(pm) {
                    *st = LaneStatus::Failed(NumError::SingularMatrix { pivot: k });
                }
            }
            // Per-lane row swap (a permutation even in dead lanes, so the
            // later gather in `solve` stays in bounds).
            for (lane, &p) in prow.iter().enumerate() {
                if p != k {
                    for j in 0..n {
                        out.lu
                            .swap((k * n + j) * lanes + lane, (p * n + j) * lanes + lane);
                    }
                    out.perm.swap(k * lanes + lane, p * lanes + lane);
                    out.sign[lane] = -out.sign[lane];
                }
            }
            // Elimination: lanes innermost over contiguous entry blocks.
            for i in (k + 1)..n {
                let fb = (i * n + k) * lanes;
                for (lane, f_) in fac.iter_mut().enumerate() {
                    let factor = out.lu[fb + lane] / out.lu[kk + lane];
                    out.lu[fb + lane] = factor;
                    *f_ = factor;
                }
                if k + 1 < n {
                    let (head, tail) = out.lu.split_at_mut((i * n + k + 1) * lanes);
                    let krow = &head[(k * n + k + 1) * lanes..(k * n + n) * lanes];
                    let irow = &mut tail[..(n - k - 1) * lanes];
                    for (ic, kc) in irow.chunks_exact_mut(lanes).zip(krow.chunks_exact(lanes)) {
                        for ((o, &f_), &g) in ic.iter_mut().zip(&fac).zip(kc) {
                            *o -= f_ * g;
                        }
                    }
                }
            }
        }
    }

    fn solve(&self, f: &BatchedLuFactors, b: &BatchedRhs, x: &mut BatchedRhs) {
        assert_solve_dims(f, b, x);
        let n = f.n;
        let lanes = f.lanes;
        // Permutation apply (per-lane gather).
        for i in 0..n {
            let xb = i * lanes;
            for lane in 0..lanes {
                x.data[xb + lane] = b.data[f.perm[xb + lane] * lanes + lane];
            }
        }
        // Forward substitution, ascending j per row; accumulating in the
        // stored x entry performs the same op sequence as the reference's
        // local accumulator.
        for i in 1..n {
            let (done, rest) = x.data.split_at_mut(i * lanes);
            let xi = &mut rest[..lanes];
            for j in 0..i {
                let lb = (i * n + j) * lanes;
                let xj = &done[j * lanes..(j + 1) * lanes];
                for ((s, &l), &v) in xi.iter_mut().zip(&f.lu[lb..lb + lanes]).zip(xj) {
                    *s -= l * v;
                }
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            let (head, tail) = x.data.split_at_mut((i + 1) * lanes);
            let xi = &mut head[i * lanes..];
            for j in (i + 1)..n {
                let lb = (i * n + j) * lanes;
                let xj = &tail[(j - i - 1) * lanes..(j - i) * lanes];
                for ((s, &l), &v) in xi.iter_mut().zip(&f.lu[lb..lb + lanes]).zip(xj) {
                    *s -= l * v;
                }
            }
            let db = (i * n + i) * lanes;
            for (s, &d) in xi.iter_mut().zip(&f.lu[db..db + lanes]) {
                *s /= d;
            }
        }
    }
}

fn assert_solve_dims(f: &BatchedLuFactors, b: &BatchedRhs, x: &BatchedRhs) {
    assert!(
        f.n == b.n && f.n == x.n && f.lanes == b.lanes && f.lanes == x.lanes,
        "batched solve dimension mismatch: factors {}x{} lanes {}, b {} lanes {}, x {} lanes {}",
        f.n,
        f.n,
        f.lanes,
        b.n,
        b.lanes,
        x.n,
        x.lanes
    );
}

static SCALAR: ScalarKernel = ScalarKernel;
static WIDE: WideKernel = WideKernel;

/// `true` when `LCOSC_FORCE_SCALAR=1` is set (cached for the process).
pub fn force_scalar_requested() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| std::env::var("LCOSC_FORCE_SCALAR").is_ok_and(|v| v == "1"))
}

#[cfg(target_arch = "x86_64")]
fn wide_lanes_profitable() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn wide_lanes_profitable() -> bool {
    // No x86 feature gate applies; the lanes-inner loops autovectorize on
    // any target with f64 SIMD and degrade to scalar code elsewhere.
    true
}

/// Selects the batched kernel for this process: [`WideKernel`] when the CPU
/// reports AVX2 (or the target has no AVX2 notion), [`ScalarKernel`] when
/// it does not or when `LCOSC_FORCE_SCALAR=1` forces the fallback.
///
/// Kernel choice never changes results — both uphold the bit-identity
/// contract — only throughput.
pub fn select_kernel() -> &'static dyn BatchedLuSolver {
    if force_scalar_requested() {
        &SCALAR
    } else if wide_lanes_profitable() {
        &WIDE
    } else {
        &SCALAR
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::LuFactors;

    fn pseudo_random_matrix(n: usize, mut seed: u64) -> Matrix {
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            // Off-diagonal boost keeps pivoting non-trivial without making
            // the system singular.
            a[(i, (i + 1) % n)] += 3.0;
        }
        a
    }

    fn pseudo_random_rhs(n: usize, mut seed: u64) -> Vec<f64> {
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        (0..n).map(|_| next()).collect()
    }

    fn both_kernels() -> [&'static dyn BatchedLuSolver; 2] {
        [&SCALAR, &WIDE]
    }

    #[test]
    fn kernels_match_reference_bitwise() {
        for (n, lanes) in [(1, 1), (3, 4), (7, 5), (9, 8)] {
            let mats: Vec<Matrix> = (0..lanes)
                .map(|l| pseudo_random_matrix(n, 1 + l as u64 * 17))
                .collect();
            let rhss: Vec<Vec<f64>> = (0..lanes)
                .map(|l| pseudo_random_rhs(n, 100 + l as u64))
                .collect();
            let mut a = BatchedMatrix::zeros(n, lanes);
            let mut b = BatchedRhs::zeros(n, lanes);
            for (l, (m, r)) in mats.iter().zip(&rhss).enumerate() {
                a.set_lane(l, m);
                b.set_lane(l, r);
            }
            for kernel in both_kernels() {
                let mut f = BatchedLuFactors::with_dims(n, lanes);
                let mut x = BatchedRhs::zeros(n, lanes);
                kernel.factor(&a, &mut f);
                assert!(f.all_ok(), "{} kernel, n={n} lanes={lanes}", kernel.name());
                kernel.solve(&f, &b, &mut x);
                for l in 0..lanes {
                    let mut reference = LuFactors::with_dim(n);
                    reference.factor_into(&mats[l]).unwrap();
                    let xref = reference.solve(&rhss[l]).unwrap();
                    let mut xlane = vec![0.0; n];
                    x.lane_copy_into(l, &mut xlane);
                    for (p, q) in xref.iter().zip(&xlane) {
                        assert_eq!(
                            p.to_bits(),
                            q.to_bits(),
                            "{} kernel, n={n} lane {l}: {p} vs {q}",
                            kernel.name()
                        );
                    }
                    assert_eq!(
                        reference.det().to_bits(),
                        f.lane_det(l).to_bits(),
                        "{} kernel determinant, lane {l}",
                        kernel.name()
                    );
                }
            }
        }
    }

    #[test]
    fn kernels_match_each_other_bitwise() {
        let n = 6;
        let lanes = 7;
        let mut a = BatchedMatrix::zeros(n, lanes);
        let mut b = BatchedRhs::zeros(n, lanes);
        for l in 0..lanes {
            a.set_lane(l, &pseudo_random_matrix(n, 7 + l as u64));
            b.set_lane(l, &pseudo_random_rhs(n, 70 + l as u64));
        }
        let mut fs = BatchedLuFactors::with_dims(n, lanes);
        let mut fw = BatchedLuFactors::with_dims(n, lanes);
        let mut xs = BatchedRhs::zeros(n, lanes);
        let mut xw = BatchedRhs::zeros(n, lanes);
        SCALAR.factor(&a, &mut fs);
        WIDE.factor(&a, &mut fw);
        SCALAR.solve(&fs, &b, &mut xs);
        WIDE.solve(&fw, &b, &mut xw);
        assert_eq!(fs.statuses(), fw.statuses());
        for row in 0..n {
            for l in 0..lanes {
                assert_eq!(xs.at(row, l).to_bits(), xw.at(row, l).to_bits());
            }
        }
    }

    #[test]
    fn singular_lane_is_poisoned_without_corrupting_siblings() {
        let n = 4;
        let lanes = 5;
        let bad_lane = 2;
        let mut a = BatchedMatrix::zeros(n, lanes);
        let mut b = BatchedRhs::zeros(n, lanes);
        let mut mats = Vec::new();
        for l in 0..lanes {
            let mut m = pseudo_random_matrix(n, 31 + l as u64);
            if l == bad_lane {
                // Duplicate row 1 into row 2: rank deficient.
                for c in 0..n {
                    let v = m[(1, c)];
                    m[(2, c)] = v;
                }
            }
            a.set_lane(l, &m);
            b.set_lane(l, &pseudo_random_rhs(n, 300 + l as u64));
            mats.push(m);
        }
        for kernel in both_kernels() {
            let mut f = BatchedLuFactors::with_dims(n, lanes);
            let mut x = BatchedRhs::zeros(n, lanes);
            kernel.factor(&a, &mut f);
            kernel.solve(&f, &b, &mut x);
            let expected = mats[bad_lane].lu().unwrap_err();
            assert_eq!(
                f.status(bad_lane),
                &LaneStatus::Failed(expected),
                "{} kernel",
                kernel.name()
            );
            for (l, m) in mats.iter().enumerate() {
                if l == bad_lane {
                    continue;
                }
                assert!(f.status(l).is_ok());
                let mut xlane = vec![0.0; n];
                x.lane_copy_into(l, &mut xlane);
                let mut rhs = vec![0.0; n];
                b.lane_copy_into(l, &mut rhs);
                let want = m.lu().unwrap().solve(&rhs).unwrap();
                for (p, q) in want.iter().zip(&xlane) {
                    assert_eq!(
                        p.to_bits(),
                        q.to_bits(),
                        "{} kernel lane {l}",
                        kernel.name()
                    );
                }
            }
        }
    }

    #[test]
    fn non_finite_lane_reports_invalid_input() {
        let n = 3;
        let lanes = 3;
        let mut a = BatchedMatrix::zeros(n, lanes);
        for l in 0..lanes {
            a.set_lane(l, &pseudo_random_matrix(n, 5 + l as u64));
        }
        a.entry_lanes_mut(0, 2)[1] = f64::NAN;
        for kernel in both_kernels() {
            let mut f = BatchedLuFactors::with_dims(n, lanes);
            kernel.factor(&a, &mut f);
            assert_eq!(
                f.status(1),
                &LaneStatus::Failed(NumError::InvalidInput("matrix has non-finite entries")),
                "{} kernel",
                kernel.name()
            );
            assert!(f.status(0).is_ok() && f.status(2).is_ok());
        }
    }

    #[test]
    fn stamping_accessors_accumulate_per_lane() {
        let mut a = BatchedMatrix::zeros(2, 3);
        a.add(0, 0, 1, 2.5);
        a.add(0, 0, 1, 1.5);
        for (lane, v) in a.entry_lanes_mut(1, 1).iter_mut().enumerate() {
            *v += lane as f64;
        }
        assert_eq!(a.entry_lanes(0, 0), &[0.0, 4.0, 0.0]);
        assert_eq!(a.entry_lanes(1, 1), &[0.0, 1.0, 2.0]);
        let lane1 = a.lane_matrix(1);
        assert_eq!(lane1[(0, 0)], 4.0);
        assert_eq!(lane1[(1, 1)], 1.0);
        a.clear();
        assert_eq!(a.entry_lanes(0, 0), &[0.0, 0.0, 0.0]);

        let mut b = BatchedRhs::zeros(2, 2);
        b.row_lanes_mut(1)[0] = 7.0;
        b.row_lanes_mut(1)[1] += 3.0;
        assert_eq!(b.at(1, 0), 7.0);
        assert_eq!(b.row_lanes(1), &[7.0, 3.0]);
        b.clear();
        assert_eq!(b.row_lanes(1), &[0.0, 0.0]);
    }

    #[test]
    fn selected_kernel_is_one_of_the_two() {
        let k = select_kernel();
        assert!(k.name() == "wide" || k.name() == "scalar");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn solve_dimension_mismatch_panics() {
        let f = BatchedLuFactors::with_dims(3, 2);
        let b = BatchedRhs::zeros(3, 2);
        let mut x = BatchedRhs::zeros(2, 2);
        SCALAR.solve(&f, &b, &mut x);
    }
}
