//! ODE integration for behavioral circuit models.
//!
//! Provides a classic fixed-step RK4 ([`rk4_step`]), an adaptive
//! Runge–Kutta–Fehlberg 4(5) driver ([`rkf45_adaptive`]) and a zero-crossing
//! event scanner used for oscillation frequency measurement.

use crate::{NumError, Result};

/// A first-order ODE system `x' = f(t, x)`.
///
/// Implementors describe only the dynamics; integration state is owned by
/// the caller so the same system can be integrated from many initial
/// conditions.
pub trait OdeSystem {
    /// Number of state variables.
    fn dim(&self) -> usize;

    /// Writes `f(t, x)` into `dx`. `dx.len() == x.len() == self.dim()`.
    fn derivatives(&self, t: f64, x: &[f64], dx: &mut [f64]);
}

/// Performs one classic fourth-order Runge–Kutta step of size `dt` in place.
///
/// `scratch` must have length `5 * sys.dim()` and is used to avoid per-step
/// allocation in hot loops.
///
/// # Panics
///
/// Panics if `x.len() != sys.dim()` or `scratch` is too small.
pub fn rk4_step<S: OdeSystem + ?Sized>(
    sys: &S,
    t: f64,
    dt: f64,
    x: &mut [f64],
    scratch: &mut [f64],
) {
    let n = sys.dim();
    assert_eq!(x.len(), n, "state length mismatch");
    assert!(scratch.len() >= 5 * n, "scratch must hold 5*dim values");
    let (k1, rest) = scratch.split_at_mut(n);
    let (k2, rest) = rest.split_at_mut(n);
    let (k3, rest) = rest.split_at_mut(n);
    let (k4, xt) = rest.split_at_mut(n);
    let xt = &mut xt[..n];

    sys.derivatives(t, x, k1);
    for i in 0..n {
        xt[i] = x[i] + 0.5 * dt * k1[i];
    }
    sys.derivatives(t + 0.5 * dt, xt, k2);
    for i in 0..n {
        xt[i] = x[i] + 0.5 * dt * k2[i];
    }
    sys.derivatives(t + 0.5 * dt, xt, k3);
    for i in 0..n {
        xt[i] = x[i] + dt * k3[i];
    }
    sys.derivatives(t + dt, xt, k4);
    for i in 0..n {
        x[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
}

/// Outcome of one attempted adaptive step, as judged by a
/// [`StepController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepDecision {
    /// Error test passed: commit the step, then try `h_next`.
    Accept {
        /// Proposed size for the next step.
        h_next: f64,
    },
    /// Error test failed: retry the same interval with `h_next`.
    Reject {
        /// Shrunken size for the retry.
        h_next: f64,
    },
    /// The error test failed at the minimum permitted step — the
    /// integration cannot proceed. Callers must surface this as
    /// [`NumError::StepStall`] rather than silently clamping.
    Stall,
}

/// Proportional embedded-pair step-size controller.
///
/// Shared by [`rkf45_adaptive`] and the MNA adaptive transient path: both
/// produce a per-step local-truncation-error estimate and ask the
/// controller to accept or reject the step and propose the next size.
/// The accept boundary is exact (`err <= tol` in floating point); a step
/// whose error test fails at `h <= h_min` is a [`StepDecision::Stall`],
/// never a silent acceptance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepController {
    tol: f64,
    h_min: f64,
    h_max: f64,
    /// Exponent of the proportional update, `1 / (order + 1)` for an
    /// embedded pair whose lower member has the given order.
    exponent: f64,
}

/// Growth/shrink clamp of the proportional update (classic RKF values).
const STEP_SCALE_MIN: f64 = 0.2;
const STEP_SCALE_MAX: f64 = 4.0;
/// Safety factor applied to the proportional step update.
const STEP_SAFETY: f64 = 0.9;

impl StepController {
    /// Creates a controller for an embedded pair whose lower-order member
    /// has order `order` (4 for RKF4(5), 1 for the TR/BE pair of the MNA
    /// transient).
    ///
    /// # Errors
    ///
    /// [`NumError::InvalidInput`] unless `tol > 0`, `0 < h_min <= h_max`
    /// and `order >= 1`, all finite.
    pub fn new(tol: f64, h_min: f64, h_max: f64, order: u32) -> Result<Self> {
        if !(tol > 0.0) || !tol.is_finite() {
            return Err(NumError::InvalidInput("tolerance must be positive"));
        }
        if !(h_min > 0.0) || !h_min.is_finite() {
            return Err(NumError::InvalidInput("minimum step must be positive"));
        }
        if !(h_max >= h_min) || !h_max.is_finite() {
            return Err(NumError::InvalidInput("maximum step must be >= minimum"));
        }
        if order == 0 {
            return Err(NumError::InvalidInput("pair order must be >= 1"));
        }
        Ok(StepController {
            tol,
            h_min,
            h_max,
            exponent: 1.0 / (f64::from(order) + 1.0),
        })
    }

    /// Error tolerance of the controller.
    pub fn tol(&self) -> f64 {
        self.tol
    }

    /// Minimum permitted step.
    pub fn h_min(&self) -> f64 {
        self.h_min
    }

    /// Maximum permitted step.
    pub fn h_max(&self) -> f64 {
        self.h_max
    }

    /// Clamps a proposed initial step into the controller's `[h_min,
    /// h_max]` range.
    pub fn clamp(&self, h: f64) -> f64 {
        h.clamp(self.h_min, self.h_max)
    }

    /// Judges one attempted step of size `h` with local-error estimate
    /// `err` (infinity norm). A non-finite `err` counts as a rejection
    /// with a hard 5× shrink; a failing error test at `h <= h_min` is a
    /// [`StepDecision::Stall`].
    pub fn decide(&self, h: f64, err: f64) -> StepDecision {
        if !err.is_finite() {
            if h <= self.h_min {
                return StepDecision::Stall;
            }
            return StepDecision::Reject {
                h_next: (h * STEP_SCALE_MIN).max(self.h_min),
            };
        }
        let scale = if err > 0.0 {
            (STEP_SAFETY * (self.tol / err).powf(self.exponent))
                .clamp(STEP_SCALE_MIN, STEP_SCALE_MAX)
        } else {
            STEP_SCALE_MAX
        };
        let h_next = (h * scale).clamp(self.h_min, self.h_max);
        if err <= self.tol {
            StepDecision::Accept { h_next }
        } else if h <= self.h_min {
            StepDecision::Stall
        } else {
            StepDecision::Reject { h_next }
        }
    }
}

/// Result of an adaptive integration run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveRun {
    /// Final time reached (equals the requested end time on success).
    pub t_end: f64,
    /// Final state.
    pub x: Vec<f64>,
    /// Number of accepted steps.
    pub accepted: usize,
    /// Number of rejected (re-tried) steps.
    pub rejected: usize,
}

/// Integrates `sys` from `t0` to `t1` with the Runge–Kutta–Fehlberg 4(5)
/// embedded pair and proportional step-size control.
///
/// `tol` is the per-step absolute error tolerance (infinity norm).
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] if the time span, tolerance or initial
/// state is degenerate (non-finite, `t1 <= t0`, `tol <= 0`), and
/// [`NumError::StepStall`] if the error test still fails at the minimum
/// step size (stiff or discontinuous system, or derivatives that turn
/// non-finite mid-run).
pub fn rkf45_adaptive<S: OdeSystem + ?Sized>(
    sys: &S,
    t0: f64,
    t1: f64,
    x0: &[f64],
    tol: f64,
) -> Result<AdaptiveRun> {
    if !t0.is_finite() || !t1.is_finite() {
        return Err(NumError::InvalidInput("time span must be finite"));
    }
    if !(t1 > t0) {
        return Err(NumError::InvalidInput("t1 must exceed t0"));
    }
    if !(tol > 0.0) || !tol.is_finite() {
        return Err(NumError::InvalidInput("tolerance must be positive"));
    }
    let n = sys.dim();
    if x0.len() != n {
        return Err(NumError::InvalidInput("state length mismatch"));
    }
    if x0.iter().any(|v| !v.is_finite()) {
        return Err(NumError::InvalidInput("initial state must be finite"));
    }

    // Fehlberg coefficients.
    const A: [[f64; 5]; 5] = [
        [1.0 / 4.0, 0.0, 0.0, 0.0, 0.0],
        [3.0 / 32.0, 9.0 / 32.0, 0.0, 0.0, 0.0],
        [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0, 0.0, 0.0],
        [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0, 0.0],
        [
            -8.0 / 27.0,
            2.0,
            -3544.0 / 2565.0,
            1859.0 / 4104.0,
            -11.0 / 40.0,
        ],
    ];
    const C: [f64; 6] = [0.0, 0.25, 3.0 / 8.0, 12.0 / 13.0, 1.0, 0.5];
    const B4: [f64; 6] = [
        25.0 / 216.0,
        0.0,
        1408.0 / 2565.0,
        2197.0 / 4104.0,
        -1.0 / 5.0,
        0.0,
    ];
    const B5: [f64; 6] = [
        16.0 / 135.0,
        0.0,
        6656.0 / 12825.0,
        28561.0 / 56430.0,
        -9.0 / 50.0,
        2.0 / 55.0,
    ];

    let mut x = x0.to_vec();
    let mut t = t0;
    let controller = StepController::new(tol, (t1 - t0) * 1e-14, t1 - t0, 4)?;
    let mut h = controller.clamp((t1 - t0) / 100.0);
    let mut k = vec![vec![0.0; n]; 6];
    let mut xt = vec![0.0; n];
    let mut accepted = 0usize;
    let mut rejected = 0usize;

    while t < t1 {
        // The final step is shortened to land exactly on t1; the error
        // test still applies to it (a short step only lowers the error).
        let h_try = h.min(t1 - t);
        // Stage evaluations.
        sys.derivatives(t, &x, &mut k[0]);
        for s in 1..6 {
            for i in 0..n {
                let mut acc = 0.0;
                for (j, kj) in k.iter().enumerate().take(s) {
                    acc += A[s - 1][j] * kj[i];
                }
                xt[i] = x[i] + h_try * acc;
            }
            let (head, tail) = k.split_at_mut(s);
            let _ = head;
            sys.derivatives(t + C[s] * h_try, &xt, &mut tail[0]);
        }
        // Error estimate: |x5 - x4|.
        let mut err = 0.0f64;
        for i in 0..n {
            let mut d4 = 0.0;
            let mut d5 = 0.0;
            for (s, ks) in k.iter().enumerate() {
                d4 += B4[s] * ks[i];
                d5 += B5[s] * ks[i];
            }
            err = err.max((h_try * (d5 - d4)).abs());
        }
        match controller.decide(h_try, err) {
            StepDecision::Accept { h_next } => {
                // Accept with the 5th-order solution.
                for i in 0..n {
                    let mut d5 = 0.0;
                    for (s, ks) in k.iter().enumerate() {
                        d5 += B5[s] * ks[i];
                    }
                    x[i] += h_try * d5;
                }
                t += h_try;
                accepted += 1;
                h = h_next;
            }
            StepDecision::Reject { h_next } => {
                rejected += 1;
                h = h_next;
            }
            StepDecision::Stall => {
                return Err(NumError::StepStall {
                    t,
                    h_min: controller.h_min(),
                });
            }
        }
    }

    Ok(AdaptiveRun {
        t_end: t,
        x,
        accepted,
        rejected,
    })
}

/// A detected zero crossing of a sampled signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZeroCrossing {
    /// Linearly interpolated crossing time.
    pub t: f64,
    /// `true` when the signal crosses from negative to positive.
    pub rising: bool,
}

/// Scans a uniformly sampled signal for zero crossings with linear
/// interpolation of the crossing time.
///
/// Samples exactly at zero are treated as part of the following half-wave.
/// Returns crossings in time order.
pub fn zero_crossings(t0: f64, dt: f64, samples: &[f64]) -> Vec<ZeroCrossing> {
    let mut out = Vec::new();
    for w in 1..samples.len() {
        let (a, b) = (samples[w - 1], samples[w]);
        if (a < 0.0 && b >= 0.0) || (a > 0.0 && b <= 0.0) {
            let frac = a / (a - b);
            out.push(ZeroCrossing {
                t: t0 + dt * ((w - 1) as f64 + frac),
                rising: a < 0.0,
            });
        }
    }
    out
}

/// Estimates the fundamental frequency of a sampled signal from the mean
/// period between same-direction zero crossings.
///
/// Returns `None` when fewer than two rising crossings are present, or when
/// the crossings do not span a positive time interval (degenerate `dt = 0`
/// sampling or NaN-polluted signals would otherwise divide by zero here).
pub fn frequency_from_crossings(t0: f64, dt: f64, samples: &[f64]) -> Option<f64> {
    let rising: Vec<f64> = zero_crossings(t0, dt, samples)
        .into_iter()
        .filter(|z| z.rising)
        .map(|z| z.t)
        .collect();
    let (first, last) = (rising.first()?, rising.last()?);
    if rising.len() < 2 {
        return None;
    }
    let span = last - first;
    if !(span > 0.0) || !span.is_finite() {
        return None;
    }
    Some((rising.len() - 1) as f64 / span)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Decay;
    impl OdeSystem for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn derivatives(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
            dx[0] = -x[0];
        }
    }

    /// Undamped harmonic oscillator with unit angular frequency.
    struct Harmonic;
    impl OdeSystem for Harmonic {
        fn dim(&self) -> usize {
            2
        }
        fn derivatives(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
            dx[0] = x[1];
            dx[1] = -x[0];
        }
    }

    #[test]
    fn rk4_matches_exponential_decay() {
        let sys = Decay;
        let mut x = [1.0];
        let mut scratch = vec![0.0; 5];
        let dt = 1e-2;
        for s in 0..100 {
            rk4_step(&sys, s as f64 * dt, dt, &mut x, &mut scratch);
        }
        assert!((x[0] - (-1.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn rk4_conserves_harmonic_energy_to_fourth_order() {
        let sys = Harmonic;
        let mut x = [1.0, 0.0];
        let mut scratch = vec![0.0; 10];
        let dt = 1e-3;
        for s in 0..10_000 {
            rk4_step(&sys, s as f64 * dt, dt, &mut x, &mut scratch);
        }
        let energy = x[0] * x[0] + x[1] * x[1];
        assert!((energy - 1.0).abs() < 1e-9, "energy drift {energy}");
    }

    #[test]
    fn rkf45_hits_tolerance_on_decay() {
        let run = rkf45_adaptive(&Decay, 0.0, 5.0, &[1.0], 1e-10).unwrap();
        assert!((run.x[0] - (-5.0f64).exp()).abs() < 1e-7);
        assert!(run.accepted > 0);
        assert_eq!(run.t_end, 5.0);
    }

    #[test]
    fn rkf45_adapts_step_count_to_tolerance() {
        let loose = rkf45_adaptive(&Harmonic, 0.0, 20.0, &[1.0, 0.0], 1e-4).unwrap();
        let tight = rkf45_adaptive(&Harmonic, 0.0, 20.0, &[1.0, 0.0], 1e-10).unwrap();
        assert!(
            tight.accepted > loose.accepted,
            "tight {} vs loose {}",
            tight.accepted,
            loose.accepted
        );
    }

    #[test]
    fn rkf45_rejects_bad_time_span() {
        assert!(matches!(
            rkf45_adaptive(&Decay, 1.0, 1.0, &[1.0], 1e-6),
            Err(NumError::InvalidInput(_))
        ));
    }

    #[test]
    fn rkf45_rejects_bad_tolerance() {
        assert!(rkf45_adaptive(&Decay, 0.0, 1.0, &[1.0], 0.0).is_err());
    }

    #[test]
    fn rkf45_rejects_non_finite_inputs() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                rkf45_adaptive(&Decay, 0.0, 1.0, &[bad], 1e-6),
                Err(NumError::InvalidInput(_))
            ));
            assert!(rkf45_adaptive(&Decay, bad, 1.0, &[1.0], 1e-6).is_err());
            assert!(rkf45_adaptive(&Decay, 0.0, bad, &[1.0], 1e-6).is_err());
        }
        assert!(rkf45_adaptive(&Decay, 0.0, 1.0, &[1.0], f64::NAN).is_err());
    }

    /// Dynamics that blow up to NaN in finite time (x' = x², pole at t=1).
    struct FiniteTimeBlowup;
    impl OdeSystem for FiniteTimeBlowup {
        fn dim(&self) -> usize {
            1
        }
        fn derivatives(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
            dx[0] = x[0] * x[0];
        }
    }

    #[test]
    fn rkf45_terminates_with_error_when_derivatives_blow_up() {
        // Used to loop forever: a NaN error estimate fell into the
        // `err > 0.0 == false` branch, *growing* the step instead of
        // shrinking it toward the h_min bail-out. Since the step-stall
        // rework the failure is a typed `StepStall` at the pole (t = 1)
        // rather than an untyped `NoConvergence`.
        let r = rkf45_adaptive(&FiniteTimeBlowup, 0.0, 2.0, &[1.0], 1e-9);
        match r {
            Err(NumError::StepStall { t, h_min }) => {
                assert!((0.5..1.5).contains(&t), "stalled at t = {t}");
                assert!(h_min > 0.0);
            }
            other => panic!("expected StepStall, got {other:?}"),
        }
    }

    /// The next representable f64 above `v` (avoids relying on
    /// `f64::next_up` stabilization).
    fn next_up(v: f64) -> f64 {
        f64::from_bits(v.to_bits() + 1)
    }

    #[test]
    fn controller_accept_boundary_is_exact_in_floating_point() {
        // Same style as the PR 8 `step_count` FP-boundary tests: the
        // accept/reject boundary sits exactly at `err == tol`, with no
        // epsilon slop in either direction.
        let c = StepController::new(1e-9, 1e-15, 1.0, 4).unwrap();
        assert!(
            matches!(c.decide(1e-3, 1e-9), StepDecision::Accept { .. }),
            "err == tol must accept"
        );
        assert!(
            matches!(c.decide(1e-3, next_up(1e-9)), StepDecision::Reject { .. }),
            "one ulp above tol must reject"
        );
        // Zero error is the cleanest accept and proposes maximal growth.
        match c.decide(1e-3, 0.0) {
            StepDecision::Accept { h_next } => assert_eq!(h_next, 4e-3),
            other => panic!("zero error must accept, got {other:?}"),
        }
    }

    #[test]
    fn controller_stalls_instead_of_silently_clamping() {
        let c = StepController::new(1e-9, 1e-6, 1.0, 4).unwrap();
        // A failing error test strictly above h_min shrinks toward it...
        match c.decide(2e-6, 1.0) {
            StepDecision::Reject { h_next } => {
                assert!(h_next >= c.h_min(), "reject must respect h_min");
                assert!(h_next < 2e-6, "reject must shrink");
            }
            other => panic!("expected Reject, got {other:?}"),
        }
        // ...and a failing error test *at* h_min is a stall, never an
        // acceptance (the old controller accepted any step at h <= 2*h_min).
        assert_eq!(c.decide(1e-6, 1.0), StepDecision::Stall);
        assert_eq!(c.decide(1e-6, f64::NAN), StepDecision::Stall);
        // Non-finite error above h_min is a hard 5x shrink, floored at h_min.
        assert_eq!(
            c.decide(3e-6, f64::NAN),
            StepDecision::Reject { h_next: 1e-6 }
        );
    }

    #[test]
    fn controller_rejects_degenerate_construction() {
        assert!(StepController::new(0.0, 1e-12, 1.0, 4).is_err());
        assert!(StepController::new(1e-9, 0.0, 1.0, 4).is_err());
        assert!(StepController::new(1e-9, 1.0, 0.5, 4).is_err());
        assert!(StepController::new(1e-9, 1e-12, 1.0, 0).is_err());
        assert!(StepController::new(f64::NAN, 1e-12, 1.0, 4).is_err());
    }

    #[test]
    fn controller_growth_and_shrink_are_clamped() {
        let c = StepController::new(1e-6, 1e-12, 1e-2, 1).unwrap();
        // Tiny error: growth clamps at 4x, then at h_max.
        match c.decide(5e-3, 1e-30) {
            StepDecision::Accept { h_next } => assert_eq!(h_next, 1e-2),
            other => panic!("expected clamped accept, got {other:?}"),
        }
        // Huge error: shrink clamps at 0.2x.
        match c.decide(5e-3, 1e6) {
            StepDecision::Reject { h_next } => assert_eq!(h_next, 1e-3),
            other => panic!("expected clamped reject, got {other:?}"),
        }
    }

    #[test]
    fn zero_crossings_of_sine_alternate() {
        let n = 1000;
        let dt = 2.0 * std::f64::consts::PI / n as f64;
        // 1.1 periods: crossings at pi (falling) and 2*pi (rising); the t=0
        // start sample is exactly zero and belongs to the first half-wave.
        let samples: Vec<f64> = (0..=(11 * n / 10)).map(|i| (i as f64 * dt).sin()).collect();
        let zc = zero_crossings(0.0, dt, &samples);
        assert_eq!(zc.len(), 2);
        assert!(!zc[0].rising);
        assert!((zc[0].t - std::f64::consts::PI).abs() < 1e-4);
        assert!(zc[1].rising);
        assert!((zc[1].t - 2.0 * std::f64::consts::PI).abs() < 1e-4);
    }

    #[test]
    fn frequency_estimate_matches_sine() {
        let f = 3.0;
        let fs = 1000.0;
        let samples: Vec<f64> = (0..4000)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin())
            .collect();
        let est = frequency_from_crossings(0.0, 1.0 / fs, &samples).unwrap();
        assert!((est - f).abs() < 1e-3, "estimated {est}");
    }

    #[test]
    fn frequency_needs_two_rising_crossings() {
        let samples = [1.0, 0.5, 0.25];
        assert!(frequency_from_crossings(0.0, 1.0, &samples).is_none());
    }

    #[test]
    fn frequency_rejects_zero_span_instead_of_dividing_by_zero() {
        // dt = 0 collapses every crossing onto t0: used to return Some(inf).
        let samples = [-1.0, 1.0, -1.0, 1.0, -1.0, 1.0];
        assert!(frequency_from_crossings(0.0, 0.0, &samples).is_none());
        // NaN sampling period must not leak a NaN frequency either.
        assert!(frequency_from_crossings(0.0, f64::NAN, &samples).is_none());
    }
}

/// One fixed-size implicit-trapezoidal step solved by fixed-point
/// (functional) iteration:
/// `x₁ = x₀ + dt/2·(f(t₀, x₀) + f(t₁, x₁))`.
///
/// A-stable: useful for mildly stiff systems where RK4 would need tiny
/// steps. Functional iteration converges for `dt·L < 2` (L = Lipschitz
/// constant); the iteration runs until the update is below `tol` or 50
/// sweeps elapse.
///
/// `scratch` must hold at least `3 * sys.dim()` values.
///
/// # Panics
///
/// Panics if `x.len() != sys.dim()` or `scratch` is too small.
pub fn trapezoidal_step<S: OdeSystem + ?Sized>(
    sys: &S,
    t: f64,
    dt: f64,
    x: &mut [f64],
    tol: f64,
    scratch: &mut [f64],
) {
    let n = sys.dim();
    assert_eq!(x.len(), n, "state length mismatch");
    assert!(scratch.len() >= 3 * n, "scratch must hold 3*dim values");
    let (f0, rest) = scratch.split_at_mut(n);
    let (f1, xn) = rest.split_at_mut(n);
    let xn = &mut xn[..n];

    sys.derivatives(t, x, f0);
    // Predictor: explicit Euler.
    for i in 0..n {
        xn[i] = x[i] + dt * f0[i];
    }
    // Corrector sweeps.
    for _ in 0..50 {
        sys.derivatives(t + dt, xn, f1);
        let mut delta = 0.0f64;
        for i in 0..n {
            let next = x[i] + 0.5 * dt * (f0[i] + f1[i]);
            delta = delta.max((next - xn[i]).abs());
            xn[i] = next;
        }
        if delta < tol {
            break;
        }
    }
    x.copy_from_slice(xn);
}

#[cfg(test)]
mod trapezoidal_tests {
    use super::*;

    struct Decay;
    impl OdeSystem for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn derivatives(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
            dx[0] = -x[0];
        }
    }

    struct Harmonic;
    impl OdeSystem for Harmonic {
        fn dim(&self) -> usize {
            2
        }
        fn derivatives(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
            dx[0] = x[1];
            dx[1] = -x[0];
        }
    }

    #[test]
    fn trapezoidal_matches_decay() {
        let mut x = [1.0];
        let mut scratch = vec![0.0; 3];
        let dt = 1e-2;
        for s in 0..100 {
            trapezoidal_step(&Decay, s as f64 * dt, dt, &mut x, 1e-14, &mut scratch);
        }
        assert!((x[0] - (-1.0f64).exp()).abs() < 1e-5, "{}", x[0]);
    }

    #[test]
    fn trapezoidal_conserves_harmonic_energy() {
        // The trapezoidal rule is symplectic-adjacent for linear
        // oscillators: energy stays bounded (no secular drift).
        let mut x = [1.0, 0.0];
        let mut scratch = vec![0.0; 6];
        let dt = 0.05;
        for s in 0..20_000 {
            trapezoidal_step(&Harmonic, s as f64 * dt, dt, &mut x, 1e-13, &mut scratch);
        }
        let energy = x[0] * x[0] + x[1] * x[1];
        assert!((energy - 1.0).abs() < 1e-6, "energy {energy}");
    }

    #[test]
    fn trapezoidal_is_second_order() {
        let run = |dt: f64| {
            let mut x = [1.0];
            let mut scratch = vec![0.0; 3];
            let steps = (1.0 / dt) as usize;
            for s in 0..steps {
                trapezoidal_step(&Decay, s as f64 * dt, dt, &mut x, 1e-15, &mut scratch);
            }
            (x[0] - (-1.0f64).exp()).abs()
        };
        let e1 = run(1e-2);
        let e2 = run(5e-3);
        let order = (e1 / e2).log2();
        assert!((order - 2.0).abs() < 0.2, "observed order {order}");
    }
}
