//! Piece-wise-linear tables.
//!
//! The paper's exponential DAC is a PWL approximation of `(1+δ)ⁿ`
//! (its Fig 3); this module supplies the generic PWL machinery used to
//! compare the implemented staircase against the ideal exponential.

use crate::{NumError, Result};

/// A piece-wise-linear function defined by sorted `(x, y)` breakpoints.
///
/// Evaluation clamps outside the table range (flat extrapolation), matching
/// how a saturating DAC behaves at its code extremes.
///
/// # Example
///
/// ```
/// use lcosc_num::interp::PwlTable;
///
/// # fn main() -> Result<(), lcosc_num::NumError> {
/// let t = PwlTable::new(vec![(0.0, 0.0), (1.0, 10.0), (2.0, 40.0)])?;
/// assert_eq!(t.eval(0.5), 5.0);
/// assert_eq!(t.eval(1.5), 25.0);
/// assert_eq!(t.eval(-1.0), 0.0);   // clamped
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PwlTable {
    points: Vec<(f64, f64)>,
}

impl PwlTable {
    /// Creates a table from breakpoints.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] if fewer than two points are given,
    /// the x values are not strictly increasing, or any value is non-finite.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self> {
        if points.len() < 2 {
            return Err(NumError::InvalidInput("pwl table needs >= 2 points"));
        }
        for w in points.windows(2) {
            if !(w[1].0 > w[0].0) {
                return Err(NumError::InvalidInput(
                    "pwl x values must strictly increase",
                ));
            }
        }
        if points.iter().any(|(x, y)| !x.is_finite() || !y.is_finite()) {
            return Err(NumError::InvalidInput("pwl points must be finite"));
        }
        Ok(PwlTable { points })
    }

    /// The breakpoints of this table.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Evaluates the PWL function at `x`, clamping outside the range.
    pub fn eval(&self, x: f64) -> f64 {
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the segment.
        let idx = pts.partition_point(|p| p.0 <= x);
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Returns `true` if the y values are non-decreasing.
    pub fn is_monotone_nondecreasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1)
    }

    /// Maximum absolute deviation from `f` sampled at `samples` evenly spaced
    /// points over the table's x range.
    ///
    /// # Panics
    ///
    /// Panics if `samples < 2`.
    pub fn max_abs_error<F: Fn(f64) -> f64>(&self, f: F, samples: usize) -> f64 {
        assert!(samples >= 2, "need at least two samples");
        let x0 = self.points[0].0;
        let x1 = self.points[self.points.len() - 1].0;
        (0..samples)
            .map(|i| {
                let x = x0 + (x1 - x0) * i as f64 / (samples - 1) as f64;
                (self.eval(x) - f(x)).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Maximum relative deviation `|pwl/f - 1|` over the table range,
    /// skipping points where `|f| < eps`.
    ///
    /// # Panics
    ///
    /// Panics if `samples < 2`.
    pub fn max_rel_error<F: Fn(f64) -> f64>(&self, f: F, samples: usize, eps: f64) -> f64 {
        assert!(samples >= 2, "need at least two samples");
        let x0 = self.points[0].0;
        let x1 = self.points[self.points.len() - 1].0;
        (0..samples)
            .filter_map(|i| {
                let x = x0 + (x1 - x0) * i as f64 / (samples - 1) as f64;
                let fx = f(x);
                (fx.abs() > eps).then(|| (self.eval(x) / fx - 1.0).abs())
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PwlTable {
        PwlTable::new(vec![(0.0, 0.0), (1.0, 10.0), (2.0, 40.0)]).unwrap()
    }

    #[test]
    fn eval_interpolates_within_segments() {
        let t = table();
        assert_eq!(t.eval(0.25), 2.5);
        assert_eq!(t.eval(1.0), 10.0);
        assert_eq!(t.eval(1.75), 32.5);
    }

    #[test]
    fn eval_clamps_outside_range() {
        let t = table();
        assert_eq!(t.eval(-5.0), 0.0);
        assert_eq!(t.eval(99.0), 40.0);
    }

    #[test]
    fn eval_exact_breakpoints() {
        let t = table();
        for &(x, y) in t.points() {
            assert_eq!(t.eval(x), y);
        }
    }

    #[test]
    fn rejects_too_few_points() {
        assert!(PwlTable::new(vec![(0.0, 1.0)]).is_err());
    }

    #[test]
    fn rejects_non_increasing_x() {
        assert!(PwlTable::new(vec![(0.0, 0.0), (0.0, 1.0)]).is_err());
        assert!(PwlTable::new(vec![(1.0, 0.0), (0.0, 1.0)]).is_err());
    }

    #[test]
    fn rejects_nan() {
        assert!(PwlTable::new(vec![(0.0, f64::NAN), (1.0, 1.0)]).is_err());
    }

    #[test]
    fn monotonicity_check() {
        assert!(table().is_monotone_nondecreasing());
        let dip = PwlTable::new(vec![(0.0, 0.0), (1.0, 5.0), (2.0, 4.0)]).unwrap();
        assert!(!dip.is_monotone_nondecreasing());
    }

    #[test]
    fn pwl_approximates_exponential_within_segment_error() {
        // chord of exp on [0, ln2] has max error exp(x)-(1+x/ln2) ~ 0.06
        let t = PwlTable::new(vec![
            (0.0, 1.0),
            (std::f64::consts::LN_2, 2.0),
            (2.0 * std::f64::consts::LN_2, 4.0),
        ])
        .unwrap();
        let err = t.max_rel_error(f64::exp, 1000, 1e-12);
        assert!(err < 0.07, "relative error {err}");
        assert!(err > 0.01, "chord error should be visible, got {err}");
    }

    #[test]
    fn max_abs_error_of_self_is_zero() {
        let t = table();
        let e = t.max_abs_error(|x| t.eval(x), 100);
        assert_eq!(e, 0.0);
    }
}
