//! SI unit newtypes for API boundaries.
//!
//! Internal math uses raw `f64` SI values; public configuration and results
//! use these newtypes so a capacitance can never be passed where an
//! inductance is expected (C-NEWTYPE).

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $symbol:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// Raw `f64` value in base SI units.
            pub fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }

            /// Returns `true` when the value is finite (not NaN/inf).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl From<f64> for $name {
            fn from(v: f64) -> Self {
                $name(v)
            }
        }

        impl From<$name> for f64 {
            fn from(v: $name) -> f64 {
                v.0
            }
        }

        impl std::ops::Add for $name {
            type Output = $name;
            fn add(self, o: $name) -> $name {
                $name(self.0 + o.0)
            }
        }

        impl std::ops::Sub for $name {
            type Output = $name;
            fn sub(self, o: $name) -> $name {
                $name(self.0 - o.0)
            }
        }

        impl std::ops::Mul<f64> for $name {
            type Output = $name;
            fn mul(self, s: f64) -> $name {
                $name(self.0 * s)
            }
        }

        impl std::ops::Div<f64> for $name {
            type Output = $name;
            fn div(self, s: f64) -> $name {
                $name(self.0 / s)
            }
        }

        impl std::ops::Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{} {}", format_engineering(self.0), $symbol)
            }
        }
    };
}

unit!(
    /// Electric potential in volts.
    Volts,
    "V"
);
unit!(
    /// Electric current in amperes.
    Amps,
    "A"
);
unit!(
    /// Resistance in ohms.
    Ohms,
    "Ω"
);
unit!(
    /// Capacitance in farads.
    Farads,
    "F"
);
unit!(
    /// Inductance in henries.
    Henries,
    "H"
);
unit!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
unit!(
    /// Time in seconds.
    Seconds,
    "s"
);

impl Volts {
    /// Constructs from millivolts.
    pub fn from_milli(mv: f64) -> Self {
        Volts(mv * 1e-3)
    }
}

impl Amps {
    /// Constructs from milliamps.
    pub fn from_milli(ma: f64) -> Self {
        Amps(ma * 1e-3)
    }
    /// Constructs from microamps.
    pub fn from_micro(ua: f64) -> Self {
        Amps(ua * 1e-6)
    }
}

impl Farads {
    /// Constructs from nanofarads.
    pub fn from_nano(nf: f64) -> Self {
        Farads(nf * 1e-9)
    }
    /// Constructs from picofarads.
    pub fn from_pico(pf: f64) -> Self {
        Farads(pf * 1e-12)
    }
}

impl Henries {
    /// Constructs from microhenries.
    pub fn from_micro(uh: f64) -> Self {
        Henries(uh * 1e-6)
    }
}

impl Hertz {
    /// Constructs from megahertz.
    pub fn from_mega(mhz: f64) -> Self {
        Hertz(mhz * 1e6)
    }
    /// Constructs from kilohertz.
    pub fn from_kilo(khz: f64) -> Self {
        Hertz(khz * 1e3)
    }
    /// Period of one cycle.
    pub fn period(self) -> Seconds {
        Seconds(1.0 / self.0)
    }
}

impl Seconds {
    /// Constructs from microseconds.
    pub fn from_micro(us: f64) -> Self {
        Seconds(us * 1e-6)
    }
    /// Constructs from milliseconds.
    pub fn from_milli(ms: f64) -> Self {
        Seconds(ms * 1e-3)
    }
    /// Constructs from nanoseconds.
    pub fn from_nano(ns: f64) -> Self {
        Seconds(ns * 1e-9)
    }
}

/// Formats a value in engineering notation (exponent a multiple of 3) with
/// the standard SI prefix.
pub fn format_engineering(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    if !v.is_finite() {
        return format!("{v}");
    }
    const PREFIXES: [(i32, &str); 9] = [
        (-12, "p"),
        (-9, "n"),
        (-6, "µ"),
        (-3, "m"),
        (0, ""),
        (3, "k"),
        (6, "M"),
        (9, "G"),
        (12, "T"),
    ];
    let exp3 = ((v.abs().log10() / 3.0).floor() * 3.0) as i32;
    let exp3 = exp3.clamp(-12, 12);
    let scaled = v / 10f64.powi(exp3);
    let prefix = PREFIXES
        .iter()
        .find(|(e, _)| *e == exp3)
        .map(|(_, p)| *p)
        .unwrap_or("");
    format!("{scaled:.4}{prefix}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_on_units() {
        let v = Volts(1.5) + Volts(0.5) - Volts(1.0);
        assert_eq!(v, Volts(1.0));
        assert_eq!(Volts(2.0) * 3.0, Volts(6.0));
        assert_eq!(Volts(6.0) / 3.0, Volts(2.0));
        assert_eq!(-Volts(1.0), Volts(-1.0));
        assert_eq!(Volts(-2.0).abs(), Volts(2.0));
    }

    #[test]
    fn conversion_constructors() {
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * b.abs();
        assert!(close(Amps::from_micro(12.5).value(), 12.5e-6));
        assert!(close(Amps::from_milli(30.0).value(), 0.030));
        assert!(close(Farads::from_nano(2.2).value(), 2.2e-9));
        assert!(close(Farads::from_pico(10.0).value(), 1e-11));
        assert!(close(Henries::from_micro(4.7).value(), 4.7e-6));
        assert!(close(Hertz::from_mega(5.0).value(), 5e6));
        assert!(close(Hertz::from_kilo(480.0).value(), 4.8e5));
        assert!(close(Seconds::from_milli(1.0).value(), 1e-3));
        assert!(close(Seconds::from_nano(2.0).value(), 2e-9));
        assert!(close(Seconds::from_micro(3.0).value(), 3e-6));
        assert!(close(Volts::from_milli(250.0).value(), 0.25));
    }

    #[test]
    fn from_into_f64_roundtrip() {
        let v: Volts = 3.3.into();
        let raw: f64 = v.into();
        assert_eq!(raw, 3.3);
    }

    #[test]
    fn hertz_period_inverse() {
        let p = Hertz::from_mega(2.0).period();
        assert!((p.value() - 5e-7).abs() < 1e-18);
    }

    #[test]
    fn engineering_format() {
        assert_eq!(format_engineering(0.0), "0");
        assert_eq!(format_engineering(12.5e-6), "12.5000µ");
        assert_eq!(format_engineering(2.2e-9), "2.2000n");
        assert_eq!(format_engineering(5e6), "5.0000M");
        assert_eq!(format_engineering(-0.025), "-25.0000m");
    }

    #[test]
    fn display_carries_symbol() {
        assert_eq!(format!("{}", Amps::from_micro(12.5)), "12.5000µ A");
        assert_eq!(format!("{}", Hertz::from_mega(3.0)), "3.0000M Hz");
    }

    #[test]
    fn is_finite_detects_nan() {
        assert!(!Volts(f64::NAN).is_finite());
        assert!(Volts(1.0).is_finite());
    }
}
