//! Dense linear algebra: a small row-major [`Matrix`] with LU factorization
//! and linear solves.
//!
//! The circuit simulator's MNA systems are small (tens of unknowns), so a
//! straightforward dense LU with partial pivoting is both adequate and easy
//! to validate.

use crate::{NumError, Result};

/// Magnitude below which a pivot is declared singular.
///
/// Every solver in the workspace — dense [`LuFactors`], [`ComplexMatrix`],
/// the batched SoA kernels and the sparse LU — tests its pivots against this
/// one constant, so they cannot disagree on which system is "singular".
pub const SINGULAR_PIVOT_THRESHOLD: f64 = f64::MIN_POSITIVE * 1e4;

/// Shared singular-pivot predicate: true when `pmax` (the magnitude of the
/// best available pivot) is below [`SINGULAR_PIVOT_THRESHOLD`] or non-finite.
///
/// Callers map a `true` result to [`NumError::SingularMatrix`] with the
/// elimination step as the `pivot` index.
#[inline]
pub fn pivot_is_singular(pmax: f64) -> bool {
    pmax < SINGULAR_PIVOT_THRESHOLD || !pmax.is_finite()
}

/// A dense, row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use lcosc_num::linalg::Matrix;
///
/// # fn main() -> Result<(), lcosc_num::NumError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let x = a.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero-filled `rows x cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] if `rows` is empty or the rows have
    /// inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(NumError::InvalidInput("matrix needs at least one row"));
        }
        let ncols = rows[0].len();
        if ncols == 0 {
            return Err(NumError::InvalidInput("matrix needs at least one column"));
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            if r.len() != ncols {
                return Err(NumError::InvalidInput("rows have inconsistent lengths"));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Adds `value` to entry `(row, col)` — the fundamental MNA "stamp"
    /// operation.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        self[(row, col)] += value;
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| {
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .map(|v| v.abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] for non-square matrices or
    /// non-finite entries, and [`NumError::SingularMatrix`] when a pivot
    /// underflows.
    pub fn lu(&self) -> Result<LuFactors> {
        let mut f = LuFactors::with_dim(self.rows);
        f.factor_into(self)?;
        Ok(f)
    }

    /// Solves `self * x = b` via LU factorization.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Matrix::lu`]; also fails if `b.len()` does not
    /// match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.rows {
            return Err(NumError::InvalidInput("rhs length mismatch"));
        }
        self.lu()?.solve(b)
    }

    /// Determinant via LU factorization. Returns `0.0` for singular matrices.
    pub fn det(&self) -> f64 {
        match self.lu() {
            Ok(f) => f.det(),
            Err(_) => 0.0,
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// LU factorization produced by [`Matrix::lu`], reusable for several
/// right-hand sides.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
    sign: f64,
}

impl LuFactors {
    /// Creates empty factorization storage pre-sized for an `n × n` system.
    ///
    /// The value is not usable for solves until [`LuFactors::factor_into`]
    /// has succeeded at least once; this constructor only reserves the
    /// buffers so the first factorization is the last allocation.
    pub fn with_dim(n: usize) -> Self {
        LuFactors {
            n,
            lu: vec![0.0; n * n],
            perm: (0..n).collect(),
            sign: 1.0,
        }
    }

    /// Dimension of the factorized system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Re-factorizes `a` into this storage, reusing the existing buffers.
    ///
    /// No heap allocation happens when the dimension matches the storage
    /// (the steady-state path of the transient solver); the arithmetic is
    /// identical to [`Matrix::lu`], so the factors — and every subsequent
    /// solve — are bit-for-bit the same.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] for non-square matrices or
    /// non-finite entries, and [`NumError::SingularMatrix`] when a pivot
    /// underflows. On error the previous factors are destroyed.
    pub fn factor_into(&mut self, a: &Matrix) -> Result<()> {
        if !a.is_square() {
            return Err(NumError::InvalidInput("lu requires a square matrix"));
        }
        // The pivot search only inspects one column per elimination step: a
        // NaN elsewhere would silently poison the factors instead of
        // surfacing as an error.
        if a.data.iter().any(|v| !v.is_finite()) {
            return Err(NumError::InvalidInput("matrix has non-finite entries"));
        }
        let n = a.rows;
        self.n = n;
        self.lu.clear();
        self.lu.extend_from_slice(&a.data);
        self.perm.clear();
        self.perm.extend(0..n);
        self.sign = 1.0;
        let lu = &mut self.lu;
        let perm = &mut self.perm;

        for k in 0..n {
            // Find pivot.
            let mut p = k;
            let mut pmax = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pivot_is_singular(pmax) {
                return Err(NumError::SingularMatrix { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                perm.swap(k, p);
                self.sign = -self.sign;
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let factor = lu[i * n + k] / pivot;
                lu[i * n + k] = factor;
                for j in (k + 1)..n {
                    lu[i * n + j] -= factor * lu[k * n + j];
                }
            }
        }
        Ok(())
    }

    /// Solves `A x = b` for the factorized `A`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] on an `b` length mismatch.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b` into the caller's buffer, with no heap allocation.
    ///
    /// The arithmetic (permutation apply, forward and back substitution in
    /// ascending column order) is identical to [`LuFactors::solve`], so the
    /// result is bit-for-bit the same.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] when `b` or `x` does not match the
    /// factorized dimension.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<()> {
        if b.len() != self.n || x.len() != self.n {
            return Err(NumError::InvalidInput("rhs length mismatch"));
        }
        let n = self.n;
        // Apply permutation: y = P b.
        for (xi, &p) in x.iter_mut().zip(&self.perm) {
            *xi = b[p];
        }
        // Forward substitution (L has unit diagonal).
        for i in 1..n {
            let (done, rest) = x.split_at_mut(i);
            let mut s = rest[0];
            for (j, xj) in done.iter().enumerate() {
                s -= self.lu[i * n + j] * xj;
            }
            rest[0] = s;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let (head, tail) = x.split_at_mut(i + 1);
            let mut s = head[i];
            for (j, xj) in tail.iter().enumerate() {
                s -= self.lu[i * n + (i + 1 + j)] * xj;
            }
            head[i] = s / self.lu[i * n + i];
        }
        Ok(())
    }

    /// Determinant of the factorized matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.n {
            d *= self.lu[i * self.n + i];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_to_rhs() {
        let a = Matrix::identity(4);
        let b = [1.0, -2.0, 3.5, 0.25];
        let x = a.solve(&b).unwrap();
        assert_eq!(x, b.to_vec());
    }

    #[test]
    fn solve_known_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&[7.0, 9.0]).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        match a.solve(&[1.0, 2.0]) {
            Err(NumError::SingularMatrix { .. }) => {}
            other => panic!("expected SingularMatrix, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_entries_are_rejected_not_propagated() {
        // NaN off the pivot column used to factor "successfully" and poison
        // every solve result.
        let a = Matrix::from_rows(&[&[1.0, f64::NAN], &[0.0, 1.0]]).unwrap();
        assert!(matches!(
            a.solve(&[1.0, 1.0]),
            Err(NumError::InvalidInput(_))
        ));
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[f64::INFINITY, 1.0]]).unwrap();
        assert!(b.lu().is_err());
        assert_eq!(b.det(), 0.0);
    }

    #[test]
    fn determinant_matches_cofactor_expansion() {
        let a =
            Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 10.0]]).unwrap();
        // det = 1*(50-48) - 2*(40-42) + 3*(32-35) = 2 + 4 - 9 = -3
        assert!((a.det() + 3.0).abs() < 1e-10);
    }

    #[test]
    fn residual_of_random_like_system_is_tiny() {
        // Fixed pseudo-random matrix (deterministic, no rng dependency).
        let n = 8;
        let mut a = Matrix::zeros(n, n);
        let mut seed = 1u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += 4.0; // diagonally dominant => well conditioned
        }
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64) - 3.5).collect();
        let b = a.mul_vec(&xtrue);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&xtrue) {
            assert!((xi - ti).abs() < 1e-10, "{xi} vs {ti}");
        }
    }

    #[test]
    fn lu_factors_reusable_for_multiple_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let f = a.lu().unwrap();
        let x1 = f.solve(&[4.0, 3.0]).unwrap();
        let x2 = f.solve(&[1.0, 0.0]).unwrap();
        assert!((x1[0] - 1.0).abs() < 1e-12 && (x1[1] - 1.0).abs() < 1e-12);
        assert!((x2[0] - 0.4).abs() < 1e-12 && (x2[1] + 0.2).abs() < 1e-12);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let e = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(e, NumError::InvalidInput(_)));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn norm_inf_max_row_sum() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.norm_inf(), 7.0);
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut a = Matrix::identity(3);
        a.clear();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn stamp_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        a.add(0, 0, 1.5);
        a.add(0, 0, 2.5);
        assert_eq!(a[(0, 0)], 4.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a[(2, 0)];
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::identity(2);
        assert!(!format!("{a}").is_empty());
    }

    fn pseudo_random_matrix(n: usize, mut seed: u64) -> Matrix {
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += 3.0;
        }
        a
    }

    #[test]
    fn factor_into_is_bit_identical_to_lu_and_reuses_storage() {
        let a = pseudo_random_matrix(7, 11);
        let b = pseudo_random_matrix(7, 99);
        let fa = a.lu().unwrap();
        let mut reused = LuFactors::with_dim(7);
        reused.factor_into(&a).unwrap();
        let rhs: Vec<f64> = (0..7).map(|i| i as f64 - 2.5).collect();
        let xa = fa.solve(&rhs).unwrap();
        let xr = reused.solve(&rhs).unwrap();
        for (p, q) in xa.iter().zip(&xr) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        // Refactor different data into the same storage.
        reused.factor_into(&b).unwrap();
        let xb = b.lu().unwrap().solve(&rhs).unwrap();
        let xr = reused.solve(&rhs).unwrap();
        for (p, q) in xb.iter().zip(&xr) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn solve_into_matches_solve_bitwise() {
        let a = pseudo_random_matrix(6, 5);
        let f = a.lu().unwrap();
        let rhs: Vec<f64> = (0..6).map(|i| (i as f64).sin()).collect();
        let x = f.solve(&rhs).unwrap();
        let mut xi = vec![0.0; 6];
        f.solve_into(&rhs, &mut xi).unwrap();
        for (p, q) in x.iter().zip(&xi) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn factor_into_rejects_bad_input_like_lu() {
        let mut f = LuFactors::with_dim(2);
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            f.factor_into(&rect),
            Err(NumError::InvalidInput(_))
        ));
        let nan = Matrix::from_rows(&[&[1.0, f64::NAN], &[0.0, 1.0]]).unwrap();
        assert!(matches!(
            f.factor_into(&nan),
            Err(NumError::InvalidInput(_))
        ));
        let sing = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            f.factor_into(&sing),
            Err(NumError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn solve_into_rejects_length_mismatch() {
        let f = Matrix::identity(3).lu().unwrap();
        let mut x = vec![0.0; 2];
        assert!(f.solve_into(&[1.0, 2.0, 3.0], &mut x).is_err());
        let mut x3 = vec![0.0; 3];
        assert!(f.solve_into(&[1.0, 2.0], &mut x3).is_err());
    }
}

/// A dense, row-major complex matrix with LU solve — used by the circuit
/// simulator's AC (small-signal, frequency-domain) analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexMatrix {
    rows: usize,
    cols: usize,
    data: Vec<crate::fft::Complex>,
}

impl ComplexMatrix {
    /// Creates a zero-filled `rows x cols` complex matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        ComplexMatrix {
            rows,
            cols,
            data: vec![crate::fft::Complex::default(); rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data
            .iter_mut()
            .for_each(|v| *v = crate::fft::Complex::default());
    }

    /// Adds `value` to entry `(row, col)` (the MNA stamp operation).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: crate::fft::Complex) {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        let cur = self.data[row * self.cols + col];
        self.data[row * self.cols + col] = cur + value;
    }

    /// Solves `self · x = b` via LU with partial (magnitude) pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] for non-square systems, a
    /// mismatched rhs or non-finite entries, and
    /// [`NumError::SingularMatrix`] when a pivot underflows.
    pub fn solve(&self, b: &[crate::fft::Complex]) -> Result<Vec<crate::fft::Complex>> {
        let mut lu = Vec::new();
        let mut x = Vec::new();
        self.solve_into(b, &mut lu, &mut x)?;
        Ok(x)
    }

    /// Solves `self · x = b` like [`ComplexMatrix::solve`], but into
    /// caller-provided buffers: `lu` is factorization scratch and `x`
    /// receives the solution. Both are cleared and refilled, so after the
    /// first call no reallocation happens when the dimensions are stable —
    /// an AC sweep reuses one pair of buffers across every frequency point.
    ///
    /// # Errors
    ///
    /// Same as [`ComplexMatrix::solve`] (the results are bit-identical).
    pub fn solve_into(
        &self,
        b: &[crate::fft::Complex],
        lu: &mut Vec<crate::fft::Complex>,
        x: &mut Vec<crate::fft::Complex>,
    ) -> Result<()> {
        if self.rows != self.cols {
            return Err(NumError::InvalidInput("solve requires a square matrix"));
        }
        if b.len() != self.rows {
            return Err(NumError::InvalidInput("rhs length mismatch"));
        }
        if self
            .data
            .iter()
            .any(|v| !v.re.is_finite() || !v.im.is_finite())
        {
            return Err(NumError::InvalidInput("matrix has non-finite entries"));
        }
        let n = self.rows;
        lu.clear();
        lu.extend_from_slice(&self.data);
        x.clear();
        x.extend_from_slice(b);

        for k in 0..n {
            // Pivot by magnitude.
            let mut p = k;
            let mut pmax = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pivot_is_singular(pmax) {
                return Err(NumError::SingularMatrix { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                x.swap(k, p);
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let factor = lu[i * n + k] / pivot;
                lu[i * n + k] = factor;
                for j in (k + 1)..n {
                    let sub = factor * lu[k * n + j];
                    let cur = lu[i * n + j];
                    lu[i * n + j] = cur - sub;
                }
                let sub = factor * x[k];
                let cur = x[i];
                x[i] = cur - sub;
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s = s - lu[i * n + j] * x[j];
            }
            x[i] = s / lu[i * n + i];
        }
        Ok(())
    }
}

#[cfg(test)]
mod complex_tests {
    use super::*;
    use crate::fft::Complex;

    #[test]
    fn complex_identity_solve() {
        let mut a = ComplexMatrix::zeros(2, 2);
        a.add(0, 0, Complex::new(1.0, 0.0));
        a.add(1, 1, Complex::new(1.0, 0.0));
        let b = [Complex::new(2.0, 1.0), Complex::new(-3.0, 0.5)];
        let x = a.solve(&b).unwrap();
        assert_eq!(x, b.to_vec());
    }

    #[test]
    fn complex_known_system() {
        // (1 + j)·x = 2 -> x = 1 − j.
        let mut a = ComplexMatrix::zeros(1, 1);
        a.add(0, 0, Complex::new(1.0, 1.0));
        let x = a.solve(&[Complex::new(2.0, 0.0)]).unwrap();
        assert!((x[0].re - 1.0).abs() < 1e-12 && (x[0].im + 1.0).abs() < 1e-12);
    }

    #[test]
    fn complex_pivoting_works() {
        let mut a = ComplexMatrix::zeros(2, 2);
        a.add(0, 1, Complex::new(0.0, 1.0)); // j in the corner
        a.add(1, 0, Complex::new(2.0, 0.0));
        let x = a
            .solve(&[Complex::new(0.0, 2.0), Complex::new(4.0, 0.0)])
            .unwrap();
        // Row0: j·x1 = 2j -> x1 = 2. Row1: 2 x0 = 4 -> x0 = 2.
        assert!((x[0].re - 2.0).abs() < 1e-12);
        assert!((x[1].re - 2.0).abs() < 1e-12);
    }

    #[test]
    fn complex_non_finite_entries_rejected() {
        let mut a = ComplexMatrix::zeros(2, 2);
        a.add(0, 0, Complex::new(1.0, 0.0));
        a.add(0, 1, Complex::new(0.0, f64::NAN));
        a.add(1, 1, Complex::new(1.0, 0.0));
        assert!(matches!(
            a.solve(&[Complex::default(), Complex::default()]),
            Err(NumError::InvalidInput(_))
        ));
    }

    #[test]
    fn complex_singular_detected() {
        let a = ComplexMatrix::zeros(2, 2);
        assert!(matches!(
            a.solve(&[Complex::default(), Complex::default()]),
            Err(NumError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn complex_solve_into_matches_solve_bitwise_and_reuses_buffers() {
        let n = 4;
        let mut a = ComplexMatrix::zeros(n, n);
        let mut seed = 3u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in 0..n {
                a.add(i, j, Complex::new(next(), next()));
            }
            a.add(i, i, Complex::new(4.0, 0.0));
        }
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 1.0)).collect();
        let x = a.solve(&b).unwrap();
        let mut lu = Vec::new();
        let mut xi = Vec::new();
        a.solve_into(&b, &mut lu, &mut xi).unwrap();
        for (p, q) in x.iter().zip(&xi) {
            assert_eq!(p.re.to_bits(), q.re.to_bits());
            assert_eq!(p.im.to_bits(), q.im.to_bits());
        }
        // A second solve must not grow the scratch buffers.
        let cap = (lu.capacity(), xi.capacity());
        a.solve_into(&b, &mut lu, &mut xi).unwrap();
        assert_eq!((lu.capacity(), xi.capacity()), cap);
    }

    #[test]
    fn complex_residual_small() {
        let n = 5;
        let mut a = ComplexMatrix::zeros(n, n);
        let mut seed = 7u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut dense = vec![Complex::default(); n * n];
        for i in 0..n {
            for j in 0..n {
                let v = Complex::new(next(), next());
                dense[i * n + j] = v;
                a.add(i, j, v);
            }
            a.add(i, i, Complex::new(5.0, 0.0));
            dense[i * n + i] = dense[i * n + i] + Complex::new(5.0, 0.0);
        }
        let xt: Vec<Complex> = (0..n)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect();
        let b: Vec<Complex> = (0..n)
            .map(|i| {
                let mut s = Complex::default();
                for j in 0..n {
                    s = s + dense[i * n + j] * xt[j];
                }
                s
            })
            .collect();
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&xt) {
            assert!((*xi - *ti).abs() < 1e-9);
        }
    }
}
