//! # lcosc-num — numerical substrate for the `lcosc` workspace
//!
//! Self-contained numerical routines used by the circuit simulator and the
//! behavioral oscillator models: dense linear algebra, ODE integration,
//! discrete-time filters, FFT-based spectral analysis, scalar root finding,
//! piece-wise-linear interpolation, descriptive statistics and SI unit
//! newtypes.
//!
//! Everything here is deterministic and allocation-conscious; no external
//! numerical dependencies are used so that the whole reproduction builds
//! offline.
//!
//! ## Example
//!
//! ```
//! use lcosc_num::ode::{rk4_step, OdeSystem};
//!
//! /// Exponential decay x' = -x.
//! struct Decay;
//! impl OdeSystem for Decay {
//!     fn dim(&self) -> usize { 1 }
//!     fn derivatives(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
//!         dx[0] = -x[0];
//!     }
//! }
//!
//! let mut x = [1.0];
//! let mut scratch = vec![0.0; 5 * 1];
//! rk4_step(&Decay, 0.0, 1e-3, &mut x, &mut scratch);
//! assert!((x[0] - (-1e-3f64).exp()).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod batched;
pub mod fft;
pub mod filter;
pub mod interp;
pub mod linalg;
pub mod ode;
pub mod roots;
pub mod sparse;
pub mod stats;
pub mod units;

pub use batched::{
    select_kernel, BatchedLuFactors, BatchedLuSolver, BatchedMatrix, BatchedRhs, LaneStatus,
    ScalarKernel, WideKernel,
};
pub use fft::{dominant_frequency, power_spectrum, Complex};
pub use filter::{Biquad, EnvelopeFollower, MovingRms, OnePoleLowPass};
pub use interp::PwlTable;
pub use linalg::{pivot_is_singular, Matrix, SINGULAR_PIVOT_THRESHOLD};
pub use ode::{
    rk4_step, rkf45_adaptive, trapezoidal_step, OdeSystem, StepController, StepDecision,
};
pub use roots::{bisect, brent, newton};
pub use sparse::{SparseLu, SparseMatrix, SparseSymbolic};
pub use units::{Amps, Farads, Henries, Hertz, Ohms, Seconds, Volts};

/// Errors produced by numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NumError {
    /// A matrix was singular (or numerically singular) during factorization.
    SingularMatrix {
        /// Pivot column at which factorization broke down.
        pivot: usize,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual (method-specific norm) at the last iterate.
        residual: f64,
    },
    /// An adaptive step controller could not satisfy its error tolerance
    /// even at the minimum permitted step size (stiff or discontinuous
    /// dynamics, or derivatives that turn non-finite mid-run).
    StepStall {
        /// Integration time at which the controller stalled.
        t: f64,
        /// The minimum step size that still failed the error test.
        h_min: f64,
    },
    /// Input arguments were invalid (empty slice, inverted bracket, NaN, ...).
    InvalidInput(&'static str),
}

impl std::fmt::Display for NumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NumError::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            NumError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            NumError::StepStall { t, h_min } => write!(
                f,
                "adaptive step stalled at t = {t:.6e} (error test fails at the minimum step {h_min:.3e})"
            ),
            NumError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for NumError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, NumError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty_and_lowercase() {
        let errs = [
            NumError::SingularMatrix { pivot: 3 },
            NumError::NoConvergence {
                iterations: 10,
                residual: 1e-3,
            },
            NumError::StepStall {
                t: 0.5,
                h_min: 1e-14,
            },
            NumError::InvalidInput("empty slice"),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumError>();
    }
}
