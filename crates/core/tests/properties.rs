//! Property-based tests on the oscillator core's invariants.

use lcosc_core::condition::OscillationCondition;
use lcosc_core::envelope::EnvelopeModel;
use lcosc_core::gm_driver::{DriverShape, GmDriver};
use lcosc_core::regulator::RegulationFsm;
use lcosc_core::tank::LcTank;
use lcosc_dac::Code;
use lcosc_device::comparator::WindowState;
use lcosc_num::units::{Amps, Farads, Henries, Volts};
use proptest::prelude::*;

fn any_tank() -> impl Strategy<Value = LcTank> {
    (1.0f64..100.0, 0.2f64..10.0, 0.5f64..200.0).prop_map(|(l_uh, c_nf, q)| {
        LcTank::with_q(Henries::from_micro(l_uh), Farads::from_nano(c_nf), q)
            .expect("generated constants are valid")
    })
}

proptest! {
    /// Amplitude law inverts exactly: i_max_for_amplitude ∘ steady_amplitude = id.
    #[test]
    fn amplitude_law_inverts(tank in any_tank(), i_ma in 0.01f64..30.0) {
        let cond = OscillationCondition::new(tank);
        let i = Amps(i_ma * 1e-3);
        let vpp = cond.steady_amplitude_pp(i);
        let back = cond.i_max_for_amplitude(vpp);
        prop_assert!((back.value() / i.value() - 1.0).abs() < 1e-9);
    }

    /// The amplitude is strictly linear in the current limit (eq 4).
    #[test]
    fn amplitude_linear_in_current(tank in any_tank(), i_ma in 0.01f64..10.0, k in 1.1f64..5.0) {
        let cond = OscillationCondition::new(tank);
        let v1 = cond.steady_amplitude_pp(Amps(i_ma * 1e-3)).value();
        let v2 = cond.steady_amplitude_pp(Amps(k * i_ma * 1e-3)).value();
        prop_assert!((v2 / v1 - k).abs() < 1e-9);
    }

    /// Critical gm scales inversely with Q at fixed L, C.
    #[test]
    fn critical_gm_inverse_in_q(q in 0.5f64..200.0, factor in 1.5f64..10.0) {
        let t1 = LcTank::with_q(Henries::from_micro(4.7), Farads::from_nano(1.5), q)
            .expect("valid");
        let t2 = LcTank::with_q(Henries::from_micro(4.7), Farads::from_nano(1.5), q * factor)
            .expect("valid");
        let g1 = OscillationCondition::new(t1).critical_gm();
        let g2 = OscillationCondition::new(t2).critical_gm();
        prop_assert!((g1 / g2 / factor - 1.0).abs() < 1e-9);
    }

    /// The envelope fixed point matches the analytic steady amplitude for
    /// deeply limited drivers, for any tank.
    #[test]
    fn envelope_fixed_point_matches_analytic(tank in any_tank(), i_ma in 0.05f64..5.0) {
        let i = i_ma * 1e-3;
        let cond = OscillationCondition::new(tank);
        // Deeply limited: gm far above both the critical value and I/a*.
        let gm = (cond.critical_gm() * 50.0).max(1e-3);
        let driver = GmDriver::new(DriverShape::LinearSaturate { gm }, i);
        let model = EnvelopeModel::new(tank, driver);
        let analytic = cond.steady_amplitude_peak(Amps(i)).value();
        let fp = model.steady_amplitude();
        prop_assert!((fp / analytic - 1.0).abs() < 0.05, "{fp} vs {analytic}");
    }

    /// The envelope step never leaves the [0, clamp] interval and never
    /// crosses the fixed point.
    #[test]
    fn envelope_step_invariants(
        tank in any_tank(),
        a0 in 1e-6f64..3.0,
        dt_us in 0.1f64..2000.0,
    ) {
        let driver = GmDriver::new(DriverShape::LinearSaturate { gm: 50e-3 }, 1e-3);
        let model = EnvelopeModel::new(tank, driver).with_clamp(1.65);
        let a_star = model.steady_amplitude();
        let a1 = model.step(a0, dt_us * 1e-6);
        prop_assert!((0.0..=1.65 + 1e-12).contains(&a1));
        if a_star > 0.0 {
            // Monotone approach: the iterate stays on its side of a*.
            if a0 <= a_star {
                prop_assert!(a1 <= a_star + 1e-9, "{a0} -> {a1} crossed {a_star}");
            } else {
                prop_assert!(a1 >= a_star - 1e-9, "{a0} -> {a1} crossed {a_star}");
            }
        }
    }

    /// The regulation FSM never leaves the code range and moves by at most
    /// one per tick, whatever the comparator sequence.
    #[test]
    fn fsm_step_bounded(
        start in 0u32..=127,
        states in proptest::collection::vec(0u8..3, 1..100),
    ) {
        let mut fsm = RegulationFsm::new(Code::new(start).expect("in range"), 1e-3);
        let mut prev = fsm.code().value() as i32;
        for s in states {
            let w = match s {
                0 => WindowState::Below,
                1 => WindowState::Inside,
                _ => WindowState::Above,
            };
            fsm.tick(w);
            let now = fsm.code().value() as i32;
            prop_assert!((now - prev).abs() <= 1);
            prop_assert!((0..=127).contains(&now));
            prev = now;
        }
    }

    /// Power balance: at the analytic amplitude the driver power equals the
    /// tank loss power for every tank (eq 2 vs eq 3/4).
    #[test]
    fn power_balance(tank in any_tank(), i_ma in 0.05f64..10.0) {
        let cond = OscillationCondition::new(tank);
        let i = i_ma * 1e-3;
        let vpp = cond.steady_amplitude_pp(Amps(i)).value();
        let v_rms = vpp / 2.0 / std::f64::consts::SQRT_2;
        let k = 2.0 * std::f64::consts::SQRT_2 / std::f64::consts::PI;
        let p_drv = k * v_rms * i;
        let p_tank = cond.tank_power(Volts(v_rms));
        prop_assert!((p_drv / p_tank - 1.0).abs() < 0.02, "{p_drv} vs {p_tank}");
    }

    /// Driver current shape invariants: odd, limited, monotone.
    #[test]
    fn driver_shape_invariants(v in -5.0f64..5.0, i_ma in 0.01f64..10.0, gm_ms in 1.0f64..50.0) {
        for shape in [
            DriverShape::HardLimit,
            DriverShape::LinearSaturate { gm: gm_ms * 1e-3 },
            DriverShape::Tanh { gm: gm_ms * 1e-3 },
        ] {
            let d = GmDriver::new(shape, i_ma * 1e-3);
            let i = d.current(v);
            prop_assert!(i.abs() <= d.i_max() + 1e-15);
            prop_assert!((i + d.current(-v)).abs() < 1e-12);
            // Monotone non-decreasing.
            prop_assert!(d.current(v + 0.01) >= i - 1e-15);
        }
    }
}
