//! Trace-driven regulation-loop invariant tests: the recorded
//! [`TraceEvent::CodeStep`] stream is replayed against the paper's loop
//! guarantees (§4) — the code moves at most ±1 per tick, the decision
//! direction always matches the window classification, and both hold even
//! against a deliberately non-monotonic DAC die.

use lcosc_core::{ClosedLoopSim, OscillatorConfig};
use lcosc_dac::{DacMismatchParams, MismatchedDac};
use lcosc_trace::{MemorySink, StepAction, Trace, TraceEvent, WindowClass};
use std::sync::Arc;

/// Runs `sim` for `ticks` regulation ticks and returns the recorded
/// `CodeStep` stream, asserting it has exactly one entry per tick.
fn record_steps(mut sim: ClosedLoopSim, ticks: usize) -> Vec<TraceEvent> {
    let sink = Arc::new(MemorySink::new());
    sim.set_trace(Trace::new(sink.clone()));
    sim.run_ticks(ticks);
    let steps: Vec<TraceEvent> = sink
        .snapshot()
        .into_iter()
        .filter(|e| matches!(e, TraceEvent::CodeStep { .. }))
        .collect();
    assert_eq!(steps.len(), ticks, "one CodeStep per tick, holds included");
    steps
}

/// The §4 loop invariants, checked over a recorded `CodeStep` stream.
fn assert_loop_invariants(steps: &[TraceEvent]) {
    let mut prev_tick = None;
    let mut prev_new = None;
    for ev in steps {
        let TraceEvent::CodeStep {
            tick,
            old,
            new,
            action,
            window,
        } = *ev
        else {
            panic!("stream must contain only CodeStep events, got {ev:?}");
        };
        // The discrete clock never skips or repeats a tick.
        if let Some(p) = prev_tick {
            assert_eq!(tick, p + 1, "tick counter must advance by exactly one");
        }
        prev_tick = Some(tick);
        // Steps chain: this tick starts where the previous one ended
        // (no out-of-band code changes slipped between ticks).
        if let Some(p) = prev_new {
            assert_eq!(old, p, "tick {tick}: steps must chain");
        }
        prev_new = Some(new);
        // Never more than one LSB of movement per tick.
        assert!(
            i16::from(new).abs_diff(i16::from(old)) <= 1,
            "tick {tick}: code jumped {old} -> {new}"
        );
        // The action label tells the truth about the code delta.
        match action {
            StepAction::Increment => assert_eq!(i16::from(new), i16::from(old) + 1),
            StepAction::Decrement => assert_eq!(i16::from(new), i16::from(old) - 1),
            StepAction::Hold => assert_eq!(new, old),
        }
        // The decision direction matches the window classification — a
        // Below tick can never lower the code (which would cross the
        // window from the wrong side), an Above tick can never raise it,
        // an Inside tick never moves it.
        match window {
            WindowClass::Below => assert_ne!(
                action,
                StepAction::Decrement,
                "tick {tick}: decrement while below the window"
            ),
            WindowClass::Above => assert_ne!(
                action,
                StepAction::Increment,
                "tick {tick}: increment while above the window"
            ),
            WindowClass::Inside => assert_eq!(
                action,
                StepAction::Hold,
                "tick {tick}: code moved inside the window"
            ),
        }
    }
}

#[test]
fn recorded_steps_satisfy_loop_invariants() {
    let sim = ClosedLoopSim::new(OscillatorConfig::fast_test()).unwrap();
    assert_loop_invariants(&record_steps(sim, 250));
}

#[test]
fn invariants_hold_through_a_hard_fault() {
    let sink = Arc::new(MemorySink::new());
    let mut sim = ClosedLoopSim::new(OscillatorConfig::fast_test())
        .unwrap()
        .with_trace(Trace::new(sink.clone()));
    sim.run_until_settled().unwrap();
    sim.inject_driver_failure();
    sim.run_ticks(200);
    let steps: Vec<TraceEvent> = sink
        .snapshot()
        .into_iter()
        .filter(|e| matches!(e, TraceEvent::CodeStep { .. }))
        .collect();
    assert_loop_invariants(&steps);
    // The dead driver drags the loop to the top stop: the tail of the
    // stream must be saturated holds, still one LSB at a time on the way.
    let TraceEvent::CodeStep { action, window, .. } = steps[steps.len() - 1] else {
        unreachable!();
    };
    assert_eq!(action, StepAction::Hold);
    assert_eq!(window, WindowClass::Below);
}

/// A die whose measured transfer is non-monotonic somewhere (Fig 14's
/// pathological case: `I(n+1) < I(n)`). The paper's claim under test: the
/// window comparator plus ±1 stepping tolerate this without hunting.
fn non_monotonic_die() -> MismatchedDac {
    let params = DacMismatchParams {
        // Inflated unit mismatch makes non-monotonic majors likely.
        sigma_unit: 0.06,
        sigma_fixed: 0.04,
        ..DacMismatchParams::default()
    };
    (0..500)
        .map(|seed| MismatchedDac::sampled(&params, seed))
        .find(|die| !die.non_monotonic_codes().is_empty())
        .expect("inflated sigmas must yield a non-monotonic die in 500 draws")
}

#[test]
fn invariants_hold_with_non_monotonic_dac() {
    let die = non_monotonic_die();
    assert!(!die.non_monotonic_codes().is_empty());
    let mut cfg = OscillatorConfig::fast_test();
    cfg.dac = die;
    // The deliberately out-of-spec die is exactly what the static check
    // pass exists to flag; bypass it the same way the FMEA studies do.
    let sim = ClosedLoopSim::new_unchecked(cfg).unwrap();
    assert_loop_invariants(&record_steps(sim, 300));
}
