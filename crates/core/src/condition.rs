//! Analytic oscillation condition and steady-state amplitude (paper §2).
//!
//! The paper's scanned equations are typographically corrupted, so the
//! constants are re-derived in `DESIGN.md` §16 for the classical two-stage
//! cross-coupled topology of Fig 1 (each stage senses the opposite pin):
//!
//! - resonance: `ω₀² = 2/(L·C) − Rs²/L² ≈ 2/(L·C)` (symmetric C),
//! - critical per-stage transconductance: `Gm₀ = Rs·C/L` — oscillations
//!   grow while the small-signal (or describing-function) gm exceeds it
//!   (eq 1 up to the paper's Gm definition),
//! - steady-state amplitude, from the describing function of the hard
//!   limiter: per-pin peak `a* = 4·I_M/(π·Gm₀)`, i.e. differential
//!   peak-to-peak `V_pp = 16·L·I_M/(π·Rs·C)`, the paper's eq 4 linear
//!   `V ∝ I_M` law with k = 2√2/π ≈ 0.9.

use crate::gm_driver::GmDriver;
use crate::tank::LcTank;
use lcosc_num::units::{Amps, Volts};

/// Analytic relations between tank, driver limit and amplitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OscillationCondition {
    tank: LcTank,
}

impl OscillationCondition {
    /// Wraps a tank.
    pub fn new(tank: LcTank) -> Self {
        OscillationCondition { tank }
    }

    /// The tank under analysis.
    pub fn tank(&self) -> &LcTank {
        &self.tank
    }

    /// Critical per-stage transconductance `Gm₀ = Rs·C_avg/L` (eq 1): the
    /// loop has net gain while each cross-coupled stage provides more than
    /// this.
    pub fn critical_gm(&self) -> f64 {
        self.tank.rs().value() * self.tank.c_avg().value() / self.tank.l().value()
    }

    /// Whether a driver can start the oscillation from noise: its
    /// small-signal transconductance must exceed the critical gm (the hard
    /// limiter always starts, its origin slope being unbounded).
    pub fn can_start(&self, driver: &GmDriver) -> bool {
        driver.i_max() > 0.0 && driver.gm_small_signal() > self.critical_gm()
    }

    /// Steady-state per-pin peak amplitude for a deeply limited driver:
    /// `a* = 4·I_M/(π·Gm₀)` (describing-function balance).
    pub fn steady_amplitude_peak(&self, i_max: Amps) -> Volts {
        Volts(4.0 * i_max.value() / (std::f64::consts::PI * self.critical_gm()))
    }

    /// Steady-state differential peak-to-peak amplitude between LC1 and
    /// LC2: `V_pp = 4·a* = 16·L·I_M/(π·Rs·C)` (eq 4, with amplitude strictly
    /// proportional to the current limit).
    pub fn steady_amplitude_pp(&self, i_max: Amps) -> Volts {
        Volts(4.0 * self.steady_amplitude_peak(i_max).value())
    }

    /// Current limit needed for a target differential peak-to-peak
    /// amplitude (inverse of [`OscillationCondition::steady_amplitude_pp`]).
    ///
    /// # Panics
    ///
    /// Panics if `v_pp` is not positive.
    pub fn i_max_for_amplitude(&self, v_pp: Volts) -> Amps {
        assert!(v_pp.value() > 0.0, "target amplitude must be positive");
        Amps(v_pp.value() * std::f64::consts::PI * self.critical_gm() / 16.0)
    }

    /// Power dissipated in the tank at a differential RMS voltage `v_rms`
    /// (paper eq 2: `P = Gm₀·V²`, with both stages replacing the losses).
    pub fn tank_power(&self, v_rms: Volts) -> f64 {
        // Per-pin rms is v_rms/2 (differential); each stage sees Gm0 at its
        // pin: P = 2 · Gm0 · (v_rms/2)² · 2 — equivalently Rs·I_L².
        let omega_l = self.tank.omega0() * self.tank.l().value();
        let i_l_rms = v_rms.value() / omega_l;
        self.tank.rs().value() * i_l_rms * i_l_rms
    }

    /// Estimated supply current of the driver at a given limit: the top and
    /// bottom mirrors carry I_M between the pins (Fig 5's Itop is shared),
    /// plus the quiescent consumption of the support circuits (§6 mentions
    /// 120 µA for the Vref buffer alone).
    pub fn supply_current(&self, i_max: Amps) -> Amps {
        const I_QUIESCENT: f64 = 130e-6;
        Amps(i_max.value() + I_QUIESCENT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gm_driver::DriverShape;
    use lcosc_num::units::{Farads, Henries, Ohms};

    fn datasheet() -> OscillationCondition {
        OscillationCondition::new(LcTank::datasheet_3mhz())
    }

    #[test]
    fn critical_gm_scales_with_loss() {
        let hi_q = datasheet();
        let lo_q = OscillationCondition::new(LcTank::poor_q());
        // Two decades of Q -> two decades of critical gm.
        assert!((lo_q.critical_gm() / hi_q.critical_gm() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn poor_q_critical_gm_below_chip_capability() {
        // At high codes the chip enables up to 9 parallel Gm stages
        // (Table 1), so its startup capability is ~9× the per-stage 10 mS;
        // even the poorest tank must be startable with margin.
        let lo_q = OscillationCondition::new(LcTank::poor_q());
        assert!(
            lo_q.critical_gm() < 9.0 * 10e-3,
            "critical gm {} exceeds chip capability",
            lo_q.critical_gm()
        );
        // But it genuinely needs multiple stages: a single 10 mS stage is
        // not enough — the reason the OscE bus exists.
        assert!(lo_q.critical_gm() > 10e-3);
    }

    #[test]
    fn amplitude_is_linear_in_current_limit() {
        let c = datasheet();
        let v1 = c.steady_amplitude_pp(Amps(1e-3)).value();
        let v2 = c.steady_amplitude_pp(Amps(2e-3)).value();
        assert!((v2 / v1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn paper_operating_point_is_consistent() {
        // 2.7 Vpp max operating amplitude on the datasheet tank needs a few
        // hundred µA — matching the paper's 250 µA minimum consumption for
        // high-quality networks.
        let c = datasheet();
        let i = c.i_max_for_amplitude(Volts(2.7));
        assert!(
            (1e-4..1e-3).contains(&i.value()),
            "i_max {} out of expected range",
            i.value()
        );
        // Round trip.
        let v = c.steady_amplitude_pp(i);
        assert!((v.value() - 2.7).abs() < 1e-9);
    }

    #[test]
    fn poor_q_needs_two_decades_more_current() {
        let hi = datasheet().i_max_for_amplitude(Volts(2.7)).value();
        let lo = OscillationCondition::new(LcTank::poor_q())
            .i_max_for_amplitude(Volts(2.7))
            .value();
        assert!((lo / hi - 100.0).abs() < 1e-6);
        // Poor-quality tank at full amplitude ~ tens of mA — the paper's
        // 30 mA maximum consumption.
        assert!((10e-3..40e-3).contains(&lo), "lo {lo}");
    }

    #[test]
    fn supply_current_range_matches_paper() {
        // Paper §9: consumption varies from 250 µA to 30 mA.
        let hi_q = datasheet();
        let lo_q = OscillationCondition::new(LcTank::poor_q());
        let i_min = hi_q
            .supply_current(hi_q.i_max_for_amplitude(Volts(2.7)))
            .value();
        let i_max = lo_q
            .supply_current(lo_q.i_max_for_amplitude(Volts(2.7)))
            .value();
        assert!((150e-6..500e-6).contains(&i_min), "min {i_min}");
        assert!((20e-3..40e-3).contains(&i_max), "max {i_max}");
    }

    #[test]
    fn can_start_requires_gm_margin() {
        let c = datasheet();
        let strong = GmDriver::new(DriverShape::LinearSaturate { gm: 10e-3 }, 1e-3);
        let weak = GmDriver::new(
            DriverShape::LinearSaturate {
                gm: c.critical_gm() * 0.5,
            },
            1e-3,
        );
        let dead = GmDriver::new(DriverShape::HardLimit, 0.0);
        assert!(c.can_start(&strong));
        assert!(!c.can_start(&weak));
        assert!(!c.can_start(&dead));
        assert!(c.can_start(&GmDriver::new(DriverShape::HardLimit, 1e-6)));
    }

    #[test]
    fn tank_power_matches_loss_formula() {
        // At resonance the inductor current is V_diff/(ω L); power = Rs I².
        let c = datasheet();
        let p = c.tank_power(Volts(1.0));
        let t = c.tank();
        let il = 1.0 / (t.omega0() * t.l().value());
        assert!((p - t.rs().value() * il * il).abs() < 1e-15);
        assert!(p > 0.0);
    }

    #[test]
    fn power_balance_ties_eq2_to_eq4() {
        // At the steady-state amplitude, driver power k·V_rms·I_M·(both
        // stages fold into the differential V) equals tank loss power.
        let c = datasheet();
        let i_m = 1e-3;
        let v_pp = c.steady_amplitude_pp(Amps(i_m)).value();
        let v_rms = v_pp / 2.0 / std::f64::consts::SQRT_2; // differential rms
        let k = 2.0 * std::f64::consts::SQRT_2 / std::f64::consts::PI;
        let p_drv = k * v_rms * i_m;
        let p_tank = c.tank_power(Volts(v_rms));
        assert!((p_drv / p_tank - 1.0).abs() < 0.02, "{p_drv} vs {p_tank}");
    }

    #[test]
    fn asymmetric_tank_uses_average_capacitance() {
        let t = LcTank::new(
            Henries::from_micro(4.7),
            Farads::from_nano(1.0),
            Farads::from_nano(2.0),
            Ohms(1.6),
        )
        .unwrap();
        let c = OscillationCondition::new(t);
        let expect = 1.6 * 1.5e-9 / 4.7e-6;
        assert!((c.critical_gm() - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn i_max_for_amplitude_rejects_zero() {
        let _ = datasheet().i_max_for_amplitude(Volts(0.0));
    }
}
