//! Closed-loop simulation configuration.

use crate::condition::OscillationCondition;
use crate::gm_driver::DriverShape;
use crate::multirate::MultiRateOptions;
use crate::tank::LcTank;
use crate::{CoreError, Result};
use lcosc_dac::{Code, MismatchedDac};
use lcosc_num::units::{Farads, Henries, Volts};

/// Simulation fidelity of the closed loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fidelity {
    /// Cycle-accurate 3-state ODE; needed for waveform figures.
    Cycle,
    /// Averaged envelope dynamics; ~1000× faster, used for sweeps and FMEA
    /// matrices.
    #[default]
    Envelope,
    /// Envelope by default, cycle fidelity in guard windows around events
    /// (fault injections, segment-boundary code steps, window-state
    /// changes); see [`crate::multirate`]. Long-horizon speed with
    /// cycle-accurate discrete outcomes.
    MultiRate,
}

/// Fidelity override requested through the `LCOSC_FIDELITY` environment
/// variable: `full`/`cycle`, `envelope` or `multirate`. Any other value —
/// including unset — returns `None` and leaves configurations untouched.
/// The hatch mirrors `LCOSC_SOLVER`: an end-to-end escape valve to pin the
/// whole process to one fidelity when triaging a multi-rate divergence.
pub fn fidelity_forced() -> Option<Fidelity> {
    match std::env::var("LCOSC_FIDELITY").ok()?.as_str() {
        "full" | "cycle" => Some(Fidelity::Cycle),
        "envelope" => Some(Fidelity::Envelope),
        "multirate" => Some(Fidelity::MultiRate),
        _ => None,
    }
}

/// Full configuration of the regulated oscillator.
#[derive(Debug, Clone, PartialEq)]
pub struct OscillatorConfig {
    /// External resonance network.
    pub tank: LcTank,
    /// Driver static I–V shape.
    pub driver_shape: DriverShape,
    /// Current-limitation DAC die.
    pub dac: MismatchedDac,
    /// Supply voltage (the pins cannot swing outside 0..vdd), volts.
    pub vdd: f64,
    /// DC operating point of the pins (mid-supply), volts.
    pub vref: f64,
    /// Regulation target: differential peak-to-peak amplitude, volts
    /// (the chip's maximum operating amplitude is 2.7 Vpp).
    pub target_vpp: f64,
    /// Window width relative to the target (total), > the max DAC step.
    pub window_rel_width: f64,
    /// Detector low-pass time constant, seconds.
    pub detector_tau: f64,
    /// Regulation tick period (1 ms on the chip), seconds.
    pub tick_period: f64,
    /// NVM-stored startup code.
    pub nvm_code: Code,
    /// Delay from POR release to the NVM load, seconds.
    pub nvm_delay: f64,
    /// Simulation fidelity.
    pub fidelity: Fidelity,
    /// Cycle mode: ODE steps per oscillation period.
    pub steps_per_period: usize,
    /// Envelope mode: integrator substeps per tick.
    pub envelope_substeps: usize,
    /// Multi-rate mode: hand-off guard window and re-entry tolerance.
    pub multirate: MultiRateOptions,
    /// RMS measurement noise on the detector output `VDC1`, volts
    /// (comparator offset drift, coupled interference). 0 = noiseless.
    pub detector_noise_rms: f64,
    /// Seed for the measurement-noise generator (reproducible runs).
    pub noise_seed: u64,
}

impl OscillatorConfig {
    /// Configuration around a tank: the driver is the chip's 10 mS
    /// linear-saturate stage, the DAC an ideal 12.5 µA/LSB die, the target
    /// 2.7 Vpp with a 15 % window, 1 ms ticks, and the NVM preset computed
    /// from the analytic amplitude law.
    pub fn for_tank(tank: LcTank) -> Self {
        let mut cfg = OscillatorConfig {
            tank,
            driver_shape: DriverShape::LinearSaturate { gm: 10e-3 },
            dac: MismatchedDac::ideal(12.5e-6),
            vdd: 3.3,
            vref: 1.65,
            target_vpp: 2.7,
            window_rel_width: 0.15,
            detector_tau: 30e-6,
            tick_period: 1e-3,
            nvm_code: Code::POR_PRESET,
            nvm_delay: 5e-6,
            fidelity: Fidelity::Envelope,
            steps_per_period: 60,
            envelope_substeps: 256,
            multirate: MultiRateOptions::default(),
            detector_noise_rms: 0.0,
            noise_seed: 1,
        };
        cfg.nvm_code = cfg.recommended_nvm_code();
        cfg
    }

    /// The paper's nominal operating point: datasheet tank (≈2.7 MHz,
    /// Q = 50).
    pub fn datasheet_3mhz() -> Self {
        OscillatorConfig::for_tank(LcTank::datasheet_3mhz())
    }

    /// A poor-quality tank needing close to the maximum code.
    pub fn low_q() -> Self {
        let tank = LcTank::with_q(Henries::from_micro(4.7), Farads::from_nano(1.5), 0.7)
            .expect("constants are valid");
        OscillatorConfig::for_tank(tank)
    }

    /// Fast unit-test configuration: 1 MHz tank, Q = 10, envelope fidelity.
    pub fn fast_test() -> Self {
        let tank = LcTank::with_q(Henries::from_micro(25.0), Farads::from_nano(2.0), 10.0)
            .expect("constants are valid");
        let mut cfg = OscillatorConfig::for_tank(tank);
        cfg.target_vpp = 2.0;
        cfg.nvm_code = cfg.recommended_nvm_code();
        cfg
    }

    /// The code whose ideal output current produces the target amplitude on
    /// this tank (the value a production line would burn into NVM), clamped
    /// to the code range.
    pub fn recommended_nvm_code(&self) -> Code {
        let cond = OscillationCondition::new(self.tank);
        let i_needed = cond.i_max_for_amplitude(Volts(self.target_vpp)).value();
        let units = i_needed / self.dac.lsb();
        // First code at or above the needed units.
        Code::all()
            .find(|&c| lcosc_dac::multiplication_factor(c) as f64 >= units)
            .unwrap_or(Code::MAX)
    }

    /// Per-pin peak amplitude corresponding to the differential target.
    pub fn target_peak(&self) -> f64 {
        self.target_vpp / 4.0
    }

    /// Cycle-mode ODE step.
    pub fn dt(&self) -> f64 {
        1.0 / (self.tank.f0().value() * self.steps_per_period as f64)
    }

    /// Maximum per-pin amplitude the rails allow.
    pub fn rail_clamp(&self) -> f64 {
        self.vref.min(self.vdd - self.vref)
    }

    /// Snapshot of this configuration for the static verification pass
    /// (`lcosc-check`'s `C0xx` rules).
    pub fn facts(&self) -> lcosc_check::ConfigFacts {
        lcosc_check::ConfigFacts {
            vdd: self.vdd,
            vref: self.vref,
            target_vpp: self.target_vpp,
            rail_clamp: self.rail_clamp(),
            window_rel_width: self.window_rel_width,
            detector_tau: self.detector_tau,
            tick_period: self.tick_period,
            nvm_delay: self.nvm_delay,
            steps_per_period: self.steps_per_period,
            envelope_substeps: self.envelope_substeps,
            detector_noise_rms: self.detector_noise_rms,
            nvm_code: u32::from(self.nvm_code.value()),
        }
    }

    /// Runs the full static verification pass on this configuration and
    /// returns every diagnostic (errors, warnings and notes).
    ///
    /// [`validate`](Self::validate) stops at the first violation with a
    /// terse message; this pass reports them all, with stable codes.
    pub fn check(&self) -> lcosc_check::Report {
        lcosc_check::check_config_facts(&self.facts())
    }

    /// Snapshot of this configuration for the static safety prover
    /// (`lcosc-check`'s `A0xx` obligations): the nominal tank elements,
    /// the regulation window and the tick period, with the prover's
    /// default mismatch box, tolerance box and Q range on top.
    pub fn prove_facts(&self) -> lcosc_check::ProveFacts {
        lcosc_check::ProveFacts::chip(
            self.window_rel_width,
            self.tank.l().value(),
            self.tank.c1().value(),
            self.tank.c2().value(),
            self.tick_period,
        )
    }

    /// Runs the static safety prover on this configuration: abstract
    /// interpretation of the DAC over its whole mismatch box plus
    /// exhaustive reachability of the regulation/safety automaton. Far
    /// stronger (and slower) than [`check`](Self::check) — every verdict
    /// holds for *all* dies and inputs in the box, not one sample.
    pub fn prove(&self) -> lcosc_check::ProveOutcome {
        lcosc_check::prove(&self.prove_facts())
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        if !(self.target_vpp > 0.0) {
            return Err(CoreError::InvalidConfig(
                "target amplitude must be positive",
            ));
        }
        if !(self.vdd > 0.0 && self.vref > 0.0 && self.vref < self.vdd) {
            return Err(CoreError::InvalidConfig("vref must sit between the rails"));
        }
        if !(self.target_vpp < 4.0 * self.rail_clamp()) {
            return Err(CoreError::InvalidConfig(
                "target amplitude exceeds the supply rails",
            ));
        }
        if !(self.window_rel_width > 0.0625) {
            return Err(CoreError::InvalidConfig(
                "window must be wider than the 6.25 % maximum dac step",
            ));
        }
        if !(self.detector_tau > 0.0) {
            return Err(CoreError::InvalidConfig("detector tau must be positive"));
        }
        if !(self.tick_period > 10.0 * self.detector_tau) {
            return Err(CoreError::InvalidConfig(
                "tick period must dominate the detector time constant",
            ));
        }
        if !(self.nvm_delay > 0.0 && self.nvm_delay < self.tick_period) {
            return Err(CoreError::InvalidConfig(
                "nvm delay must fall within the first tick",
            ));
        }
        if self.steps_per_period < 20 {
            return Err(CoreError::InvalidConfig(
                "cycle fidelity needs >= 20 steps per period",
            ));
        }
        if self.envelope_substeps == 0 {
            return Err(CoreError::InvalidConfig(
                "envelope substeps must be non-zero",
            ));
        }
        if let Err(msg) = self.multirate.validate() {
            return Err(CoreError::InvalidConfig(msg));
        }
        if !(self.detector_noise_rms >= 0.0 && self.detector_noise_rms.is_finite()) {
            return Err(CoreError::InvalidConfig(
                "detector noise must be finite and non-negative",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        OscillatorConfig::datasheet_3mhz().validate().unwrap();
        OscillatorConfig::low_q().validate().unwrap();
        OscillatorConfig::fast_test().validate().unwrap();
    }

    #[test]
    fn datasheet_nvm_code_is_low_but_above_16() {
        // High-Q tank: little loss to replace, so the regulated code is low
        // — but by design it stays above 16 (paper §3).
        let cfg = OscillatorConfig::datasheet_3mhz();
        let code = cfg.nvm_code.value();
        assert!((17..40).contains(&code), "nvm code {code}");
    }

    #[test]
    fn low_q_nvm_code_is_high() {
        let cfg = OscillatorConfig::low_q();
        assert!(cfg.nvm_code.value() > 100, "nvm code {}", cfg.nvm_code);
    }

    #[test]
    fn recommended_code_produces_at_least_target_amplitude() {
        let cfg = OscillatorConfig::datasheet_3mhz();
        let cond = OscillationCondition::new(cfg.tank);
        let i = lcosc_dac::multiplication_factor(cfg.nvm_code) as f64 * cfg.dac.lsb();
        let vpp = cond.steady_amplitude_pp(lcosc_num::units::Amps(i)).value();
        assert!(vpp >= cfg.target_vpp, "vpp {vpp}");
        // And the next lower code would fall short.
        let i_prev =
            lcosc_dac::multiplication_factor(cfg.nvm_code.decrement()) as f64 * cfg.dac.lsb();
        let vpp_prev = cond
            .steady_amplitude_pp(lcosc_num::units::Amps(i_prev))
            .value();
        assert!(vpp_prev < cfg.target_vpp, "vpp_prev {vpp_prev}");
    }

    #[test]
    fn validation_catches_narrow_window() {
        let mut cfg = OscillatorConfig::fast_test();
        cfg.window_rel_width = 0.05;
        assert!(matches!(cfg.validate(), Err(CoreError::InvalidConfig(_))));
    }

    #[test]
    fn validation_catches_slow_detector() {
        let mut cfg = OscillatorConfig::fast_test();
        cfg.detector_tau = cfg.tick_period; // detector slower than the loop
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_multirate_options() {
        let mut cfg = OscillatorConfig::fast_test();
        cfg.multirate.guard_ticks = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = OscillatorConfig::fast_test();
        cfg.multirate.handoff_rel_tol = -0.1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_nvm_delay() {
        let mut cfg = OscillatorConfig::fast_test();
        cfg.nvm_delay = cfg.tick_period * 2.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn dt_matches_steps_per_period() {
        let cfg = OscillatorConfig::fast_test();
        let period = 1.0 / cfg.tank.f0().value();
        assert!((cfg.dt() * cfg.steps_per_period as f64 / period - 1.0).abs() < 1e-12);
    }

    #[test]
    fn target_peak_is_quarter_of_differential_pp() {
        let cfg = OscillatorConfig::datasheet_3mhz();
        assert!((cfg.target_peak() - 0.675).abs() < 1e-12);
    }
}
