//! Amplitude detection chain (paper §6, Fig 8): full-wave rectification of
//! the LC1/LC2 pin voltages around the filtered mid-point, low-pass
//! filtering, and a window comparator against bandgap-derived thresholds.

use lcosc_device::comparator::{WindowComparator, WindowState};
use lcosc_num::filter::OnePoleLowPass;

/// Ratio between the filtered full-wave-rectified value and the peak
/// amplitude of a sine: `mean(|sin|) = 2/π`.
pub const RECTIFIER_GAIN: f64 = 2.0 / std::f64::consts::PI;

/// Full-wave rectifier + low-pass + window comparator.
///
/// `update` is fed the raw pin voltages every simulation step; the detector
/// tracks `VR1` (the filtered mid-point), rectifies each pin against it,
/// filters the result into `VDC1` and classifies it against the window.
#[derive(Debug, Clone, PartialEq)]
pub struct AmplitudeDetector {
    midpoint_lpf: OnePoleLowPass,
    amplitude_lpf: OnePoleLowPass,
    window: WindowComparator,
    tau: f64,
}

impl AmplitudeDetector {
    /// Creates a detector.
    ///
    /// - `target_peak` — per-pin oscillation amplitude to regulate to
    ///   (volts); the window is centered on the corresponding `VDC1`.
    /// - `window_rel_width` — total window width relative to its center;
    ///   the paper requires this to exceed the DAC's maximum step (6.25 %).
    /// - `tau` — low-pass time constant (seconds).
    /// - `dt` — simulation step (seconds).
    /// - `vref0` — initial mid-point estimate (the DC operating point).
    ///
    /// # Panics
    ///
    /// Panics unless `target_peak`, `window_rel_width`, `tau` and `dt` are
    /// positive.
    pub fn new(target_peak: f64, window_rel_width: f64, tau: f64, dt: f64, vref0: f64) -> Self {
        assert!(target_peak > 0.0, "target amplitude must be positive");
        let target_vdc = RECTIFIER_GAIN * target_peak;
        let mut midpoint_lpf = OnePoleLowPass::new(tau, dt);
        midpoint_lpf.reset_to(vref0);
        AmplitudeDetector {
            midpoint_lpf,
            amplitude_lpf: OnePoleLowPass::new(tau, dt),
            window: WindowComparator::centered(target_vdc, window_rel_width),
            tau,
        }
    }

    /// Re-discretizes both low-pass filters for a new sample interval,
    /// preserving their current outputs. The analog filter state (`VR1`,
    /// `VDC1`) is continuous across the change — this is what lets the
    /// multi-rate engine hand the *same* detector back and forth between
    /// the envelope substep grid and the cycle ODE grid.
    ///
    /// # Panics
    ///
    /// Panics unless `dt` is positive (the filter constructor's contract).
    pub fn retime(&mut self, dt: f64) {
        let vr1 = self.midpoint_lpf.output();
        let vdc1 = self.amplitude_lpf.output();
        self.midpoint_lpf = OnePoleLowPass::new(self.tau, dt);
        self.midpoint_lpf.reset_to(vr1);
        self.amplitude_lpf = OnePoleLowPass::new(self.tau, dt);
        self.amplitude_lpf.reset_to(vdc1);
    }

    /// Processes one sample of the pin voltages; returns the current window
    /// classification.
    pub fn update(&mut self, v1: f64, v2: f64) -> WindowState {
        let vr1 = self.midpoint_lpf.update(0.5 * (v1 + v2));
        // Full-wave rectification of both pins against VR1: the rectifier
        // output follows whichever pin is further from the mid-point.
        let rectified = (v1 - vr1).abs().max((v2 - vr1).abs());
        let vdc1 = self.amplitude_lpf.update(rectified);
        self.window.classify(vdc1)
    }

    /// Feeds a known amplitude directly (envelope-mode simulation):
    /// `peak` is the current per-pin amplitude.
    pub fn update_from_amplitude(&mut self, peak: f64) -> WindowState {
        let vdc1 = self
            .amplitude_lpf
            .update(RECTIFIER_GAIN * peak * RECT_TO_PEAK);
        self.window.classify(vdc1)
    }

    /// Filtered detector output `VDC1`.
    pub fn vdc1(&self) -> f64 {
        self.amplitude_lpf.output()
    }

    /// Filtered mid-point `VR1`.
    pub fn vr1(&self) -> f64 {
        self.midpoint_lpf.output()
    }

    /// The comparison window (thresholds `VR3`, `VR4` relative to `VR1`).
    pub fn window(&self) -> &WindowComparator {
        &self.window
    }

    /// Classification of the current filter state without new input.
    pub fn state(&self) -> WindowState {
        self.window.classify(self.vdc1())
    }
}

/// The max-of-two-pins rectifier sees `max(|sin|, |−sin|) = |sin|`, so its
/// average equals the classic full-wave value; kept as an explicit constant
/// so envelope mode and cycle mode share the same calibration.
const RECT_TO_PEAK: f64 = 1.0;

#[cfg(test)]
mod tests {
    use super::*;

    const F0: f64 = 1e6;
    const DT: f64 = 1e-8;

    fn feed_sine(det: &mut AmplitudeDetector, amp: f64, vref: f64, cycles: usize) -> WindowState {
        let mut s = WindowState::Inside;
        let steps = (cycles as f64 / F0 / DT) as usize;
        for k in 0..steps {
            let ph = 2.0 * std::f64::consts::PI * F0 * k as f64 * DT;
            s = det.update(vref + amp * ph.sin(), vref - amp * ph.sin());
        }
        s
    }

    #[test]
    fn detects_amplitude_inside_window() {
        let mut det = AmplitudeDetector::new(0.5, 0.15, 20e-6, DT, 1.65);
        let s = feed_sine(&mut det, 0.5, 1.65, 200);
        assert_eq!(s, WindowState::Inside);
        // VDC1 should be (2/π)·0.5 ≈ 0.318.
        assert!(
            (det.vdc1() - RECTIFIER_GAIN * 0.5).abs() < 0.02,
            "vdc1 {}",
            det.vdc1()
        );
    }

    #[test]
    fn low_amplitude_reports_below() {
        let mut det = AmplitudeDetector::new(0.5, 0.15, 20e-6, DT, 1.65);
        let s = feed_sine(&mut det, 0.3, 1.65, 200);
        assert_eq!(s, WindowState::Below);
    }

    #[test]
    fn high_amplitude_reports_above() {
        let mut det = AmplitudeDetector::new(0.5, 0.15, 20e-6, DT, 1.65);
        let s = feed_sine(&mut det, 0.7, 1.65, 200);
        assert_eq!(s, WindowState::Above);
    }

    #[test]
    fn silence_reports_below() {
        let mut det = AmplitudeDetector::new(0.5, 0.15, 20e-6, DT, 1.65);
        let s = feed_sine(&mut det, 0.0, 1.65, 100);
        assert_eq!(s, WindowState::Below);
        assert!(det.vdc1() < 1e-3);
    }

    #[test]
    fn midpoint_tracks_dc_shift() {
        let mut det = AmplitudeDetector::new(0.5, 0.15, 20e-6, DT, 1.65);
        feed_sine(&mut det, 0.5, 2.0, 300);
        assert!((det.vr1() - 2.0).abs() < 0.02, "vr1 {}", det.vr1());
        // Amplitude classification is unaffected by the common-mode shift.
        assert_eq!(det.state(), WindowState::Inside);
    }

    #[test]
    fn envelope_mode_matches_cycle_mode_calibration() {
        let mut cyc = AmplitudeDetector::new(0.5, 0.15, 20e-6, DT, 1.65);
        feed_sine(&mut cyc, 0.5, 1.65, 300);
        let mut env = AmplitudeDetector::new(0.5, 0.15, 20e-6, DT, 1.65);
        for _ in 0..30_000 {
            env.update_from_amplitude(0.5);
        }
        assert!(
            (cyc.vdc1() - env.vdc1()).abs() < 0.02,
            "cycle {} vs envelope {}",
            cyc.vdc1(),
            env.vdc1()
        );
        assert_eq!(env.state(), WindowState::Inside);
    }

    #[test]
    fn window_is_wider_than_max_dac_step() {
        // Construction used by the closed-loop sim: 15 % window vs the
        // 6.25 % maximum step — the paper's anti-hunting requirement.
        let det = AmplitudeDetector::new(0.675, 0.15, 20e-6, DT, 1.65);
        assert!(det.window().relative_width() > 0.0625);
    }

    #[test]
    fn retime_preserves_filter_state_and_time_constant() {
        let mut det = AmplitudeDetector::new(0.5, 0.15, 20e-6, DT, 1.65);
        feed_sine(&mut det, 0.5, 1.65, 200);
        let (vr1, vdc1, state) = (det.vr1(), det.vdc1(), det.state());
        // Hand-off to a 100× coarser grid: outputs carry over bit-exactly.
        det.retime(DT * 100.0);
        assert_eq!(det.vr1(), vr1);
        assert_eq!(det.vdc1(), vdc1);
        assert_eq!(det.state(), state);
        // The retimed filter still settles to the same steady state with
        // the same time constant: feeding the steady amplitude holds it.
        for _ in 0..1000 {
            det.update_from_amplitude(0.5);
        }
        assert!(
            (det.vdc1() - RECTIFIER_GAIN * 0.5).abs() < 0.02,
            "vdc1 {}",
            det.vdc1()
        );
    }

    #[test]
    #[should_panic(expected = "target amplitude")]
    fn rejects_zero_target() {
        let _ = AmplitudeDetector::new(0.0, 0.15, 20e-6, DT, 1.65);
    }
}
