//! The digital amplitude-regulation state machine (paper §4).
//!
//! Every 1 ms the current-limitation code is increased by one, decreased by
//! one, or held, depending on the window comparator. Because the window is
//! wider than the largest DAC step, the code can never jump across the
//! window and the loop cannot hunt — even a non-monotonic DAC is tolerated.

use lcosc_dac::Code;
use lcosc_device::comparator::WindowState;

/// One regulation decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegulationAction {
    /// Amplitude below the window: code incremented.
    Increment,
    /// Amplitude above the window: code decremented.
    Decrement,
    /// Amplitude inside the window: code held.
    Hold,
}

/// The ±1/hold regulation state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct RegulationFsm {
    code: Code,
    tick_period: f64,
    ticks: u64,
    saturated_low: bool,
    saturated_high: bool,
}

impl RegulationFsm {
    /// Creates the FSM at an initial code with the given tick period
    /// (1 ms on the chip).
    ///
    /// # Panics
    ///
    /// Panics if `tick_period` is not positive.
    pub fn new(initial: Code, tick_period: f64) -> Self {
        assert!(tick_period > 0.0, "tick period must be positive");
        RegulationFsm {
            code: initial,
            tick_period,
            ticks: 0,
            saturated_low: false,
            saturated_high: false,
        }
    }

    /// Current code.
    pub fn code(&self) -> Code {
        self.code
    }

    /// Overrides the code (POR preset / NVM load / safe-state reaction).
    /// Any latched saturation indication is cleared: it described the
    /// regulation trajectory that the override just discarded.
    pub fn set_code(&mut self, code: Code) {
        self.code = code;
        self.saturated_low = false;
        self.saturated_high = false;
    }

    /// Tick period in seconds.
    pub fn tick_period(&self) -> f64 {
        self.tick_period
    }

    /// Number of ticks executed.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Whether the code has hit the top of the range while still asking for
    /// more amplitude (a symptom of a poor tank or failing components —
    /// feeds the low-amplitude safety detector).
    ///
    /// The indication **latches**: it stays set through `Inside`/hold
    /// ticks and clears only when the window direction reverses (an
    /// `Above` tick — the loop is demonstrably no longer pinned against
    /// the top stop) or the code is overridden via
    /// [`RegulationFsm::set_code`]. A safety path that samples the flag
    /// once per reaction period therefore cannot miss a saturation that a
    /// single intervening hold tick would otherwise have erased.
    pub fn saturated_high(&self) -> bool {
        self.saturated_high
    }

    /// Whether the code has hit zero while still asking for less
    /// amplitude. Latches like [`RegulationFsm::saturated_high`], clearing
    /// on a `Below` tick or a code override.
    pub fn saturated_low(&self) -> bool {
        self.saturated_low
    }

    /// Reads and clears both saturation latches in one step — for safety
    /// paths that want edge (per-sample) rather than level semantics.
    /// Returns `(saturated_low, saturated_high)`.
    pub fn take_saturation(&mut self) -> (bool, bool) {
        let out = (self.saturated_low, self.saturated_high);
        self.saturated_low = false;
        self.saturated_high = false;
        out
    }

    /// Executes one 1 ms tick given the window comparator state; returns
    /// the action taken.
    pub fn tick(&mut self, window: WindowState) -> RegulationAction {
        self.ticks += 1;
        match window {
            WindowState::Below => {
                // Asking for more amplitude: any low-side saturation story
                // is over, but a latched high-side saturation must survive
                // hold ticks until the direction truly reverses.
                self.saturated_low = false;
                if self.code == Code::MAX {
                    self.saturated_high = true;
                    RegulationAction::Hold
                } else {
                    self.code = self.code.increment();
                    RegulationAction::Increment
                }
            }
            WindowState::Above => {
                self.saturated_high = false;
                if self.code == Code::MIN {
                    self.saturated_low = true;
                    RegulationAction::Hold
                } else {
                    self.code = self.code.decrement();
                    RegulationAction::Decrement
                }
            }
            WindowState::Inside => RegulationAction::Hold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_when_below() {
        let mut fsm = RegulationFsm::new(Code::new(50).unwrap(), 1e-3);
        assert_eq!(fsm.tick(WindowState::Below), RegulationAction::Increment);
        assert_eq!(fsm.code().value(), 51);
    }

    #[test]
    fn decrements_when_above() {
        let mut fsm = RegulationFsm::new(Code::new(50).unwrap(), 1e-3);
        assert_eq!(fsm.tick(WindowState::Above), RegulationAction::Decrement);
        assert_eq!(fsm.code().value(), 49);
    }

    #[test]
    fn holds_when_inside() {
        let mut fsm = RegulationFsm::new(Code::new(50).unwrap(), 1e-3);
        assert_eq!(fsm.tick(WindowState::Inside), RegulationAction::Hold);
        assert_eq!(fsm.code().value(), 50);
        assert_eq!(fsm.ticks(), 1);
    }

    #[test]
    fn saturates_at_max_and_flags() {
        let mut fsm = RegulationFsm::new(Code::MAX, 1e-3);
        assert_eq!(fsm.tick(WindowState::Below), RegulationAction::Hold);
        assert_eq!(fsm.code(), Code::MAX);
        assert!(fsm.saturated_high());
        assert!(!fsm.saturated_low());
        // The latch survives hold ticks and clears only when the window
        // direction reverses.
        fsm.tick(WindowState::Inside);
        assert!(fsm.saturated_high(), "Inside must not erase the latch");
        fsm.tick(WindowState::Above);
        assert!(!fsm.saturated_high());
    }

    #[test]
    fn saturation_survives_hold_until_sampled() {
        // Regression for the low-amplitude safety path: the detector
        // samples saturation once per reaction period; a single Inside
        // tick between the saturation and the sample used to erase the
        // indication entirely.
        let mut fsm = RegulationFsm::new(Code::MAX, 1e-3);
        fsm.tick(WindowState::Below); // pinned at the top
        fsm.tick(WindowState::Inside); // brief comparator flicker
        fsm.tick(WindowState::Inside);
        assert!(
            fsm.saturated_high(),
            "sample-after-hold must still see the saturation"
        );
        // Edge semantics via the take-and-clear accessor.
        assert_eq!(fsm.take_saturation(), (false, true));
        assert!(!fsm.saturated_high(), "take_saturation clears the latch");
    }

    #[test]
    fn saturates_at_min_and_flags() {
        let mut fsm = RegulationFsm::new(Code::MIN, 1e-3);
        assert_eq!(fsm.tick(WindowState::Above), RegulationAction::Hold);
        assert_eq!(fsm.code(), Code::MIN);
        assert!(fsm.saturated_low());
        // Latched through holds; cleared by a direction reversal.
        fsm.tick(WindowState::Inside);
        assert!(fsm.saturated_low());
        fsm.tick(WindowState::Below);
        assert!(!fsm.saturated_low());
    }

    #[test]
    fn set_code_clears_saturation_latches() {
        let mut fsm = RegulationFsm::new(Code::MAX, 1e-3);
        fsm.tick(WindowState::Below);
        assert!(fsm.saturated_high());
        fsm.set_code(Code::POR_PRESET);
        assert!(!fsm.saturated_high(), "override discards the trajectory");
    }

    #[test]
    fn converges_from_any_start_against_monotone_plant() {
        // Plant: amplitude proportional to code; window [58, 62].
        let classify = |code: Code| {
            if (code.value() as i32) < 58 {
                WindowState::Below
            } else if code.value() as i32 > 62 {
                WindowState::Above
            } else {
                WindowState::Inside
            }
        };
        for start in [0u32, 30, 60, 100, 127] {
            let mut fsm = RegulationFsm::new(Code::new(start).unwrap(), 1e-3);
            for _ in 0..200 {
                let w = classify(fsm.code());
                fsm.tick(w);
            }
            let c = fsm.code().value();
            assert!((58..=62).contains(&c), "start {start} settled at {c}");
        }
    }

    #[test]
    fn steady_state_changes_are_rare_with_window() {
        // Once inside, the comparator reports Inside and the code freezes —
        // the paper's motivation for a window comparator.
        let mut fsm = RegulationFsm::new(Code::new(60).unwrap(), 1e-3);
        let mut changes = 0;
        for _ in 0..1000 {
            let before = fsm.code();
            fsm.tick(WindowState::Inside);
            if fsm.code() != before {
                changes += 1;
            }
        }
        assert_eq!(changes, 0);
    }

    #[test]
    fn set_code_overrides() {
        let mut fsm = RegulationFsm::new(Code::MIN, 1e-3);
        fsm.set_code(Code::POR_PRESET);
        assert_eq!(fsm.code(), Code::POR_PRESET);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_tick() {
        let _ = RegulationFsm::new(Code::MIN, 0.0);
    }
}
