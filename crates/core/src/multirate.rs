//! Multi-rate fidelity hand-off (envelope ↔ cycle co-simulation).
//!
//! Long mission profiles spend almost all of their time in quiet
//! regulation holds where the averaged envelope model is faithful; the
//! discrete outcomes (window classifications, DAC code steps, detector
//! trips) are only ever decided in short windows around *events*. The
//! controller in this module is the hand-off state machine: it runs the
//! closed loop in envelope fidelity by default, drops to full cycle
//! fidelity for a guard window around each event the trace stream
//! identifies — fault injections, DAC code steps near segment
//! boundaries, detector window-state changes — and re-enters envelope
//! fidelity once the envelope shadow and the cycle-measured amplitude
//! agree within tolerance.
//!
//! Everything here is deterministic: transitions are pure functions of
//! the simulation state, so multi-rate runs are byte-stable and the
//! differential harness can compare them 1:1 against full-fidelity runs.

use lcosc_dac::Code;

/// Tuning knobs of the multi-rate hand-off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiRateOptions {
    /// Regulation ticks of cycle fidelity to hold after each guard event
    /// before envelope re-entry is considered.
    pub guard_ticks: u32,
    /// Maximum relative disagreement between the envelope shadow and the
    /// cycle-measured amplitude at which envelope re-entry is allowed.
    pub handoff_rel_tol: f64,
    /// While the code is actively ramping, a tick that starts with the
    /// detector output within this fraction of the window center of a
    /// threshold runs in cycle fidelity: the envelope model's small
    /// amplitude error must not decide which side of the threshold a
    /// ramp crosses on. Quiet holds are exempt — a settled operating
    /// point parks close to the lower threshold by design, and guarding
    /// it would forfeit the multi-rate speedup. `0` disables the check.
    pub boundary_margin: f64,
}

impl Default for MultiRateOptions {
    fn default() -> Self {
        MultiRateOptions {
            guard_ticks: 1,
            handoff_rel_tol: 0.05,
            boundary_margin: 0.04,
        }
    }
}

impl MultiRateOptions {
    /// Validates the options; returns the first violated constraint.
    ///
    /// # Errors
    ///
    /// Returns a static description of the violated constraint.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.guard_ticks == 0 {
            return Err("multi-rate guard window must be at least one tick");
        }
        if !(self.handoff_rel_tol > 0.0 && self.handoff_rel_tol < 1.0) {
            return Err("multi-rate hand-off tolerance must be in (0, 1)");
        }
        if !(self.boundary_margin >= 0.0 && self.boundary_margin < 0.5) {
            return Err("multi-rate boundary margin must be in [0, 0.5)");
        }
        Ok(())
    }
}

/// Which fidelity the multi-rate engine is currently running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateMode {
    /// Averaged envelope dynamics (the fast default between events).
    Envelope,
    /// Cycle-accurate dynamics (guard windows around events).
    Cycle,
}

/// Per-mode work statistics of one multi-rate run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeStats {
    /// Envelope↔cycle fidelity hand-offs performed (either direction).
    pub mode_switches: u64,
    /// Regulation ticks that ran entirely in envelope fidelity.
    pub envelope_ticks: u64,
    /// Regulation ticks with at least one cycle-fidelity span (split
    /// ticks count as cycle ticks — they paid the cycle cost).
    pub cycle_ticks: u64,
    /// Mid-tick event localizations performed by bisection.
    pub bisections: u64,
}

impl ModeStats {
    /// Fraction of ticks spent in envelope fidelity, in permille
    /// (integer, so the value can ride the byte-stable trace stream).
    pub fn envelope_permille(&self) -> u64 {
        let total = self.envelope_ticks + self.cycle_ticks;
        (1000 * self.envelope_ticks).checked_div(total).unwrap_or(0)
    }
}

/// Whether a code step needs a cycle-fidelity guard window: steps that
/// cross a DAC segment edge (prescaler/Gm-weight reconfiguration — the
/// output staircase is locally non-uniform there) and steps that land on
/// a range stop (saturation is a latched safety condition).
pub fn code_step_needs_guard(old: Code, new: Code) -> bool {
    old.segment_index() != new.segment_index()
        || new.value() == 0
        || new.value() == Code::MAX.value()
}

/// The envelope↔cycle hand-off state machine.
///
/// One controller instance lives inside a multi-rate
/// [`crate::sim::ClosedLoopSim`]; the simulation reports events via
/// [`MultiRateController::arm`] / [`MultiRateController::on_code_step`]
/// and closes every regulation tick with
/// [`MultiRateController::finish_tick`], which decides re-entry.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRateController {
    opts: MultiRateOptions,
    mode: RateMode,
    guard_left: u32,
    armed_this_tick: bool,
    stats: ModeStats,
}

impl MultiRateController {
    /// Creates a controller starting in envelope fidelity.
    pub fn new(opts: MultiRateOptions) -> Self {
        MultiRateController {
            opts,
            mode: RateMode::Envelope,
            guard_left: 0,
            armed_this_tick: false,
            stats: ModeStats::default(),
        }
    }

    /// The options.
    pub fn options(&self) -> &MultiRateOptions {
        &self.opts
    }

    /// The current fidelity.
    pub fn mode(&self) -> RateMode {
        self.mode
    }

    /// Accumulated per-mode statistics.
    pub fn stats(&self) -> ModeStats {
        self.stats
    }

    /// Whether an event armed the guard during the current tick.
    pub fn armed_this_tick(&self) -> bool {
        self.armed_this_tick
    }

    /// Reports a guard event (fault injection, detector window-state
    /// change, forced code): switches to cycle fidelity — the hand-off
    /// itself is performed by the simulation — and (re)starts the guard
    /// window.
    pub fn arm(&mut self) {
        self.armed_this_tick = true;
        if self.mode == RateMode::Envelope {
            self.mode = RateMode::Cycle;
            self.stats.mode_switches += 1;
        }
        self.guard_left = self.guard_left.max(self.opts.guard_ticks);
    }

    /// Reports a regulation code step; arms the guard when the step needs
    /// one (see [`code_step_needs_guard`]).
    pub fn on_code_step(&mut self, old: Code, new: Code) {
        if old != new && code_step_needs_guard(old, new) {
            self.arm();
        }
    }

    /// Records one mid-tick event localization.
    pub fn note_bisection(&mut self) {
        self.stats.bisections += 1;
    }

    /// Closes a regulation tick. `agree` is the envelope-shadow /
    /// cycle-amplitude agreement test (only meaningful in cycle mode).
    /// Returns `true` when the controller re-entered envelope fidelity —
    /// the simulation must then perform the cycle→envelope hand-off
    /// (adopt the measured amplitude, retime the detector).
    pub fn finish_tick(&mut self, agree: bool) -> bool {
        let quiet = !self.armed_this_tick;
        self.armed_this_tick = false;
        match self.mode {
            RateMode::Envelope => {
                self.stats.envelope_ticks += 1;
                false
            }
            RateMode::Cycle => {
                self.stats.cycle_ticks += 1;
                self.guard_left = self.guard_left.saturating_sub(1);
                if self.guard_left == 0 && quiet && agree {
                    self.mode = RateMode::Envelope;
                    self.stats.mode_switches += 1;
                    true
                } else {
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(v: u32) -> Code {
        Code::new(v).unwrap()
    }

    #[test]
    fn default_options_validate() {
        MultiRateOptions::default().validate().unwrap();
    }

    #[test]
    fn degenerate_options_are_rejected() {
        let o = MultiRateOptions {
            guard_ticks: 0,
            ..Default::default()
        };
        assert!(o.validate().is_err());
        let mut o = MultiRateOptions {
            handoff_rel_tol: 0.0,
            ..Default::default()
        };
        assert!(o.validate().is_err());
        o.handoff_rel_tol = 1.5;
        assert!(o.validate().is_err());
        let o = MultiRateOptions {
            boundary_margin: 0.5,
            ..Default::default()
        };
        assert!(o.validate().is_err());
    }

    #[test]
    fn segment_interior_steps_need_no_guard() {
        // 40 → 42 stays inside segment 2: quiet ramping.
        assert!(!code_step_needs_guard(code(40), code(42)));
        // 20 → 21 stays inside segment 1.
        assert!(!code_step_needs_guard(code(20), code(21)));
    }

    #[test]
    fn segment_crossings_and_range_stops_need_guards() {
        assert!(code_step_needs_guard(code(31), code(32)));
        assert!(code_step_needs_guard(code(63), code(64)));
        assert!(code_step_needs_guard(code(15), code(16)));
        assert!(code_step_needs_guard(code(126), code(127)));
        assert!(code_step_needs_guard(code(1), code(0)));
    }

    #[test]
    fn guard_holds_cycle_mode_for_its_window() {
        let mut c = MultiRateController::new(MultiRateOptions {
            guard_ticks: 2,
            handoff_rel_tol: 0.05,
            ..MultiRateOptions::default()
        });
        assert_eq!(c.mode(), RateMode::Envelope);
        c.arm();
        assert_eq!(c.mode(), RateMode::Cycle);
        // Tick 1 of the guard: stays in cycle even with agreement.
        assert!(!c.finish_tick(true));
        assert_eq!(c.mode(), RateMode::Cycle);
        // Tick 2: guard exhausted, quiet and agreeing → re-entry.
        assert!(c.finish_tick(true));
        assert_eq!(c.mode(), RateMode::Envelope);
        assert_eq!(c.stats().mode_switches, 2);
        assert_eq!(c.stats().cycle_ticks, 2);
    }

    #[test]
    fn disagreement_blocks_reentry_until_it_clears() {
        let mut c = MultiRateController::new(MultiRateOptions {
            guard_ticks: 1,
            handoff_rel_tol: 0.05,
            ..MultiRateOptions::default()
        });
        c.arm();
        assert!(!c.finish_tick(false));
        assert_eq!(c.mode(), RateMode::Cycle);
        assert!(!c.finish_tick(false));
        assert!(c.finish_tick(true));
        assert_eq!(c.mode(), RateMode::Envelope);
    }

    #[test]
    fn event_during_guard_rearms_the_window() {
        let mut c = MultiRateController::new(MultiRateOptions {
            guard_ticks: 2,
            handoff_rel_tol: 0.05,
            ..MultiRateOptions::default()
        });
        c.arm();
        assert!(!c.finish_tick(true));
        // A new event mid-guard: the tick is not quiet and the window
        // restarts at its full width — one more cycle tick than an
        // undisturbed guard would have taken.
        c.arm();
        assert!(!c.finish_tick(true));
        assert!(c.finish_tick(true));
        assert_eq!(c.stats().cycle_ticks, 3);
    }

    #[test]
    fn interior_code_steps_keep_envelope_mode() {
        let mut c = MultiRateController::new(MultiRateOptions::default());
        c.on_code_step(code(40), code(41));
        assert_eq!(c.mode(), RateMode::Envelope);
        c.on_code_step(code(63), code(64));
        assert_eq!(c.mode(), RateMode::Cycle);
    }

    #[test]
    fn envelope_permille_reflects_the_tick_split() {
        let mut s = ModeStats::default();
        assert_eq!(s.envelope_permille(), 0);
        s.envelope_ticks = 9;
        s.cycle_ticks = 1;
        assert_eq!(s.envelope_permille(), 900);
        s.cycle_ticks = 0;
        assert_eq!(s.envelope_permille(), 1000);
    }
}
