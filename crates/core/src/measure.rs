//! Measurement helpers: amplitude, frequency and settling extraction from
//! recorded waveforms and code histories.

use lcosc_num::ode::frequency_from_crossings;
use lcosc_num::stats::peak_to_peak;

/// Peak-to-peak value of the trailing `tail_fraction` of a trace (the
/// settled portion). Returns `None` for an empty trace.
///
/// # Panics
///
/// Panics unless `0 < tail_fraction <= 1`.
pub fn amplitude_pp(samples: &[f64], tail_fraction: f64) -> Option<f64> {
    assert!(
        tail_fraction > 0.0 && tail_fraction <= 1.0,
        "tail fraction must be in (0, 1]"
    );
    if samples.is_empty() {
        return None;
    }
    let start = ((1.0 - tail_fraction) * samples.len() as f64) as usize;
    peak_to_peak(&samples[start.min(samples.len() - 1)..])
}

/// Fundamental frequency of the trailing half of a uniformly sampled trace
/// via zero crossings of its AC component. Returns `None` when too few
/// crossings exist.
pub fn frequency_of(samples: &[f64], dt: f64) -> Option<f64> {
    if samples.len() < 4 {
        return None;
    }
    let tail = &samples[samples.len() / 2..];
    let mean = tail.iter().sum::<f64>() / tail.len() as f64;
    let ac: Vec<f64> = tail.iter().map(|v| v - mean).collect();
    frequency_from_crossings(0.0, dt, &ac)
}

/// First index after which a code history stays within ±1 of its final
/// value (the regulation loop's ±1 hunting is "settled" by design).
/// Returns `None` if the history never settles or is empty.
pub fn settling_tick(codes: &[u8]) -> Option<usize> {
    let last = *codes.last()?;
    let settled = |c: u8| (c as i32 - last as i32).abs() <= 1;
    // Walk backwards to the first violation.
    let mut idx = codes.len();
    for (k, &c) in codes.iter().enumerate().rev() {
        if !settled(c) {
            idx = k + 1;
            break;
        }
        idx = k;
    }
    // A lone settled final sample does not count — the code only just
    // arrived there.
    if idx + 1 >= codes.len() {
        None
    } else {
        Some(idx)
    }
}

/// Mean absolute code activity per tick over the trailing half of a code
/// history (0 = frozen, 1 = toggling every tick).
pub fn steady_state_activity(codes: &[u8]) -> f64 {
    if codes.len() < 2 {
        return 0.0;
    }
    let tail = &codes[codes.len() / 2..];
    if tail.len() < 2 {
        return 0.0;
    }
    let changes: u32 = tail
        .windows(2)
        .map(|w| (w[1] as i32 - w[0] as i32).unsigned_abs())
        .sum();
    changes as f64 / (tail.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplitude_pp_of_sine_tail() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| 2.0 * (2.0 * std::f64::consts::PI * i as f64 / 100.0).sin())
            .collect();
        let a = amplitude_pp(&xs, 0.5).unwrap();
        assert!((a - 4.0).abs() < 1e-2);
    }

    #[test]
    fn amplitude_pp_ignores_transient_head() {
        let mut xs = vec![100.0; 10];
        xs.extend((0..990).map(|i| (2.0 * std::f64::consts::PI * i as f64 / 100.0).sin()));
        let a = amplitude_pp(&xs, 0.5).unwrap();
        assert!((a - 2.0).abs() < 1e-2, "{a}");
    }

    #[test]
    fn amplitude_pp_empty_is_none() {
        assert!(amplitude_pp(&[], 0.5).is_none());
    }

    #[test]
    fn frequency_of_offset_sine() {
        let f = 5.0e3;
        let fs = 1.0e6;
        let xs: Vec<f64> = (0..10_000)
            .map(|i| 1.65 + (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin())
            .collect();
        let est = frequency_of(&xs, 1.0 / fs).unwrap();
        assert!((est / f - 1.0).abs() < 1e-3, "est {est}");
    }

    #[test]
    fn frequency_of_flat_trace_is_none() {
        assert!(frequency_of(&[1.0; 100], 1e-6).is_none());
    }

    #[test]
    fn settling_tick_finds_convergence() {
        // 10, 20, ..., then hovers around 61/60.
        let codes = [10u8, 20, 30, 40, 50, 60, 61, 60, 61, 60];
        assert_eq!(settling_tick(&codes), Some(5));
    }

    #[test]
    fn settling_tick_none_when_still_moving() {
        let codes = [10u8, 20, 30, 40, 50];
        assert_eq!(settling_tick(&codes), None);
        assert_eq!(settling_tick(&[]), None);
    }

    #[test]
    fn settling_tick_immediate_when_constant() {
        assert_eq!(settling_tick(&[42u8; 10]), Some(0));
    }

    #[test]
    fn steady_state_activity_of_frozen_code_is_zero() {
        assert_eq!(steady_state_activity(&[60u8; 100]), 0.0);
    }

    #[test]
    fn steady_state_activity_of_toggling_code_is_one() {
        let codes: Vec<u8> = (0..100).map(|i| 60 + (i % 2) as u8).collect();
        assert!((steady_state_activity(&codes) - 1.0).abs() < 0.05);
    }
}
