//! # lcosc-core — the LC oscillator driver and its amplitude regulation
//!
//! Behavioral model of the DATE'05 oscillator driver (paper §2–§4, §6):
//!
//! - [`tank::LcTank`] — the external resonance network (Losc, Cosc1, Cosc2,
//!   series loss Rs) whose quality factor may span two decades,
//! - [`gm_driver::GmDriver`] — the current-limited transconductance stage
//!   (Fig 2's static I–V), with the limit set by the DAC code,
//! - [`condition`] — the analytic oscillation condition (eq 1) and
//!   steady-state amplitude (eq 4),
//! - [`oscillator::OscillatorModel`] — the cycle-accurate 3-state ODE,
//! - [`envelope::EnvelopeModel`] — the averaged (describing-function)
//!   amplitude dynamics for millisecond-scale sweeps,
//! - [`detector::AmplitudeDetector`] — full-wave rectifier, low-pass filter
//!   and window comparator (Fig 8),
//! - [`multirate::MultiRateController`] — the envelope↔cycle fidelity
//!   hand-off state machine for long-horizon multi-rate runs,
//! - [`regulator::RegulationFsm`] — the 1 ms ±1/hold digital loop (§4),
//! - [`startup::StartupSequencer`] — POR preset (code 105) and NVM hand-over,
//! - [`sim::ClosedLoopSim`] — everything wired together.
//!
//! ## Example
//!
//! ```
//! use lcosc_core::{ClosedLoopSim, OscillatorConfig};
//!
//! # fn main() -> Result<(), lcosc_core::CoreError> {
//! let mut sim = ClosedLoopSim::new(OscillatorConfig::fast_test())?;
//! let report = sim.run_until_settled()?;
//! assert!(report.settled);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod condition;
pub mod config;
pub mod detector;
pub mod emc;
pub mod envelope;
pub mod gm_driver;
pub mod measure;
pub mod multirate;
pub mod oscillator;
pub mod regulator;
pub mod sim;
pub mod startup;
pub mod tank;
pub mod thresholds;

pub use condition::OscillationCondition;
pub use config::{fidelity_forced, Fidelity, OscillatorConfig};
pub use detector::AmplitudeDetector;
pub use emc::{analyze_emissions, EmissionReport};
pub use envelope::EnvelopeModel;
pub use gm_driver::{DriverShape, GmDriver};
pub use measure::{amplitude_pp, frequency_of, settling_tick};
pub use multirate::{
    code_step_needs_guard, ModeStats, MultiRateController, MultiRateOptions, RateMode,
};
pub use oscillator::{OscillatorModel, OscillatorState, OscillatorWaveform};
pub use regulator::RegulationFsm;
pub use sim::{CheckLevel, ClosedLoopSim, SettleReport, SimEvent, SimTrace};
pub use startup::StartupSequencer;
pub use tank::LcTank;
pub use thresholds::ReferenceStyle;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration value failed validation.
    InvalidConfig(&'static str),
    /// The static verification pass (`lcosc-check`) found errors.
    CheckFailed(lcosc_check::Report),
    /// The oscillator never started within the allotted simulation time.
    NoOscillation {
        /// Time simulated before giving up, seconds.
        simulated: f64,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::CheckFailed(report) => {
                write!(f, "static check failed:\n{}", report.render_human())
            }
            CoreError::NoOscillation { simulated } => {
                write!(f, "no oscillation detected after {simulated:.3e} s")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(CoreError::InvalidConfig("bad q")
            .to_string()
            .contains("bad q"));
        assert!(CoreError::NoOscillation { simulated: 1e-3 }
            .to_string()
            .contains("no oscillation"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
