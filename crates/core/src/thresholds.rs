//! Threshold-reference study (paper §6, Fig 8): the window-comparator
//! thresholds VR3/VR4 are created by adding a *fraction of the bandgap
//! voltage* to the filtered LC mid-point VR1. This module quantifies why —
//! a supply-derived reference would drag the regulated amplitude around
//! with supply tolerance and temperature, a bandgap-derived one holds it.

use lcosc_device::bandgap::Bandgap;

/// How the window-comparator reference voltage is generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReferenceStyle {
    /// Fraction of the bandgap voltage (the paper's choice).
    Bandgap(Bandgap),
    /// Fraction of the supply rail (the cheap alternative).
    SupplyFraction {
        /// Actual supply voltage, volts (tolerance applies here).
        vdd: f64,
        /// Supply temperature coefficient, V/K (regulator drift).
        tc: f64,
    },
}

impl ReferenceStyle {
    /// Reference voltage at `temp_k` kelvin.
    ///
    /// # Panics
    ///
    /// Panics if `temp_k` is not positive.
    pub fn reference(&self, temp_k: f64) -> f64 {
        assert!(temp_k > 0.0, "temperature must be positive kelvin");
        match self {
            ReferenceStyle::Bandgap(bg) => bg.voltage(temp_k),
            ReferenceStyle::SupplyFraction { vdd, tc } => vdd + tc * (temp_k - 300.0),
        }
    }

    /// Relative drift of the regulated amplitude at `temp_k` compared to
    /// 300 K: the loop servoes `VDC1` to the reference, so the amplitude
    /// scales one-to-one with it.
    pub fn amplitude_drift(&self, temp_k: f64) -> f64 {
        self.reference(temp_k) / self.reference(300.0) - 1.0
    }

    /// Worst absolute amplitude drift over the automotive range
    /// (−40 °C … 125 °C).
    pub fn worst_automotive_drift(&self) -> f64 {
        [233.15, 253.15, 273.15, 300.0, 333.15, 363.15, 398.15]
            .iter()
            .map(|&t| self.amplitude_drift(t).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bandgap_style() -> ReferenceStyle {
        ReferenceStyle::Bandgap(Bandgap::default())
    }

    /// A 3.3 V automotive regulator: ±3 % initial tolerance and
    /// ~300 ppm/K drift.
    fn supply_style(tolerance: f64) -> ReferenceStyle {
        ReferenceStyle::SupplyFraction {
            vdd: 3.3 * (1.0 + tolerance),
            tc: 3.3 * 300e-6,
        }
    }

    #[test]
    fn bandgap_reference_is_flat_over_temperature() {
        let drift = bandgap_style().worst_automotive_drift();
        assert!(drift < 0.02, "bandgap drift {drift}");
    }

    #[test]
    fn supply_reference_drifts_more() {
        let bg = bandgap_style().worst_automotive_drift();
        let supply = supply_style(0.0).worst_automotive_drift();
        assert!(
            supply > bg,
            "supply {supply} should beat bandgap {bg} in drift"
        );
    }

    #[test]
    fn supply_tolerance_shifts_amplitude_directly() {
        // A +3 % supply makes the regulated amplitude +3 % — exactly what a
        // precision sensor cannot afford; the bandgap is immune.
        let nominal = supply_style(0.0);
        let high = supply_style(0.03);
        let shift = high.reference(300.0) / nominal.reference(300.0) - 1.0;
        assert!((shift - 0.03).abs() < 1e-12);
    }

    #[test]
    fn regulated_amplitude_tracks_reference_in_the_loop() {
        // Close the loop twice with the window center scaled by the two
        // references' 398 K drift and verify the settled amplitude moves
        // exactly with the reference (the loop servoes to the window).
        use crate::config::OscillatorConfig;
        use crate::sim::ClosedLoopSim;

        let run_with_target_scale = |scale: f64| {
            let mut cfg = OscillatorConfig::fast_test();
            cfg.target_vpp *= scale;
            cfg.nvm_code = cfg.recommended_nvm_code();
            let mut sim = ClosedLoopSim::new(cfg).expect("valid config");
            sim.run_until_settled().expect("infallible").final_vpp
        };

        let base = run_with_target_scale(1.0);
        let bg_scale = 1.0 + bandgap_style().amplitude_drift(398.15);
        let sup_scale = 1.0 + supply_style(0.03).amplitude_drift(398.15) + 0.03;
        let vpp_bg = run_with_target_scale(bg_scale);
        let vpp_sup = run_with_target_scale(sup_scale);

        let err_bg = (vpp_bg / base - 1.0).abs();
        let err_sup = (vpp_sup / base - 1.0).abs();
        assert!(err_bg < 0.05, "bandgap-referenced error {err_bg}");
        assert!(
            err_sup > err_bg,
            "supply-referenced {err_sup} vs bandgap {err_bg}"
        );
    }
}
