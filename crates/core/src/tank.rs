//! The external LC resonance network (paper Fig 1).
//!
//! The sensor's excitation coil `Losc` sits between the LC1 and LC2 pins
//! with all network losses lumped into the series resistance `Rs`; each pin
//! carries a capacitor (`Cosc1`, `Cosc2`) to ground. The driver only has to
//! replace the losses, which is why consumption tracks the quality factor.

use crate::{CoreError, Result};
use lcosc_num::units::{Farads, Henries, Hertz, Ohms};

/// External LC resonance network parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LcTank {
    l: f64,
    c1: f64,
    c2: f64,
    rs: f64,
}

impl LcTank {
    /// Creates a tank from component values.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless every value is positive
    /// and finite.
    pub fn new(l: Henries, c1: Farads, c2: Farads, rs: Ohms) -> Result<Self> {
        let (l, c1, c2, rs) = (l.value(), c1.value(), c2.value(), rs.value());
        if !(l > 0.0 && l.is_finite()) {
            return Err(CoreError::InvalidConfig("inductance must be positive"));
        }
        if !(c1 > 0.0 && c1.is_finite() && c2 > 0.0 && c2.is_finite()) {
            return Err(CoreError::InvalidConfig("capacitances must be positive"));
        }
        if !(rs > 0.0 && rs.is_finite()) {
            return Err(CoreError::InvalidConfig(
                "series resistance must be positive",
            ));
        }
        Ok(LcTank { l, c1, c2, rs })
    }

    /// Creates a symmetric tank (`Cosc1 = Cosc2 = c`) with the series
    /// resistance chosen to hit a target quality factor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for non-positive values.
    pub fn with_q(l: Henries, c: Farads, q: f64) -> Result<Self> {
        if !(q > 0.0 && q.is_finite()) {
            return Err(CoreError::InvalidConfig("quality factor must be positive"));
        }
        // Q = ω₀ L / Rs with ω₀² = 2 / (L C).
        let omega0 = (2.0 / (l.value() * c.value())).sqrt();
        let rs = omega0 * l.value() / q;
        LcTank::new(l, c, c, Ohms(rs))
    }

    /// The paper's nominal sensor network: ≈3 MHz, Q = 50
    /// (L = 4.7 µH, C = 1.5 nF ⇒ f₀ ≈ 2.68 MHz, Rs ≈ 1.6 Ω).
    pub fn datasheet_3mhz() -> Self {
        LcTank::with_q(Henries::from_micro(4.7), Farads::from_nano(1.5), 50.0)
            .expect("datasheet constants are valid")
    }

    /// A poor-quality network two decades below the datasheet Q (paper §1:
    /// "quality factor of the external LC network can vary two decades").
    pub fn poor_q() -> Self {
        LcTank::with_q(Henries::from_micro(4.7), Farads::from_nano(1.5), 0.5)
            .expect("constants are valid")
    }

    /// Inductance.
    pub fn l(&self) -> Henries {
        Henries(self.l)
    }

    /// Capacitor on the LC1 pin.
    pub fn c1(&self) -> Farads {
        Farads(self.c1)
    }

    /// Capacitor on the LC2 pin.
    pub fn c2(&self) -> Farads {
        Farads(self.c2)
    }

    /// Series loss resistance.
    pub fn rs(&self) -> Ohms {
        Ohms(self.rs)
    }

    /// Returns a copy with a different series resistance (loss drift
    /// faults).
    ///
    /// # Panics
    ///
    /// Panics if `rs` is not positive.
    pub fn with_rs(mut self, rs: Ohms) -> Self {
        assert!(rs.value() > 0.0, "series resistance must be positive");
        self.rs = rs.value();
        self
    }

    /// Effective series capacitance seen by the inductor
    /// (`C1·C2 / (C1 + C2)`; `C/2` for a symmetric tank).
    pub fn c_series(&self) -> Farads {
        Farads(self.c1 * self.c2 / (self.c1 + self.c2))
    }

    /// Average pin capacitance `(C1 + C2) / 2`.
    pub fn c_avg(&self) -> Farads {
        Farads(0.5 * (self.c1 + self.c2))
    }

    /// Resonant angular frequency `ω₀ = 1/√(L·Cs)` in rad/s.
    pub fn omega0(&self) -> f64 {
        1.0 / (self.l * self.c_series().value()).sqrt()
    }

    /// Resonant frequency.
    pub fn f0(&self) -> Hertz {
        Hertz(self.omega0() / (2.0 * std::f64::consts::PI))
    }

    /// Quality factor `Q = ω₀·L / Rs`.
    pub fn q(&self) -> f64 {
        self.omega0() * self.l / self.rs
    }

    /// Whether the two pin capacitors match within `tol` (relative).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        (self.c1 / self.c2 - 1.0).abs() <= tol
    }
}

impl std::fmt::Display for LcTank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LcTank(L={}, C1={}, C2={}, Rs={}, f0={}, Q={:.1})",
            self.l(),
            self.c1(),
            self.c2(),
            self.rs(),
            self.f0(),
            self.q()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasheet_frequency_in_paper_band() {
        let t = LcTank::datasheet_3mhz();
        let f = t.f0().value();
        // Paper: oscillation frequency 2–5 MHz.
        assert!((2e6..5e6).contains(&f), "f0 {f}");
        assert!((t.q() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn symmetric_omega0_is_sqrt_2_over_lc() {
        let t = LcTank::new(
            Henries::from_micro(100.0),
            Farads::from_nano(10.0),
            Farads::from_nano(10.0),
            Ohms(1.0),
        )
        .unwrap();
        let expect = (2.0f64 / (100e-6 * 10e-9)).sqrt();
        assert!((t.omega0() / expect - 1.0).abs() < 1e-12);
    }

    #[test]
    fn with_q_round_trips_q() {
        for q in [0.5, 5.0, 50.0] {
            let t = LcTank::with_q(Henries::from_micro(10.0), Farads::from_nano(2.2), q).unwrap();
            assert!((t.q() / q - 1.0).abs() < 1e-12, "q {q}");
        }
    }

    #[test]
    fn two_decades_of_q_map_to_two_decades_of_rs() {
        let hi = LcTank::datasheet_3mhz();
        let lo = LcTank::poor_q();
        assert!((hi.q() / lo.q() - 100.0).abs() < 1e-9);
        assert!((lo.rs().value() / hi.rs().value() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_series_capacitance() {
        let t = LcTank::new(
            Henries::from_micro(10.0),
            Farads::from_nano(2.0),
            Farads::from_nano(6.0),
            Ohms(1.0),
        )
        .unwrap();
        assert!((t.c_series().value() - 1.5e-9).abs() < 1e-18);
        assert!((t.c_avg().value() - 4e-9).abs() < 1e-18);
        assert!(!t.is_symmetric(0.01));
        assert!(t.is_symmetric(5.0));
    }

    #[test]
    fn missing_cap_shifts_frequency_up() {
        // A missing Cosc2 is modeled as a tiny residual capacitance: the
        // series capacitance collapses toward it and f0 rises.
        let good = LcTank::datasheet_3mhz();
        let bad = LcTank::new(good.l(), good.c1(), Farads::from_pico(20.0), good.rs()).unwrap();
        assert!(bad.f0().value() > 3.0 * good.f0().value());
    }

    #[test]
    fn validation_rejects_bad_values() {
        let l = Henries::from_micro(4.7);
        let c = Farads::from_nano(1.5);
        assert!(LcTank::new(Henries(0.0), c, c, Ohms(1.0)).is_err());
        assert!(LcTank::new(l, Farads(0.0), c, Ohms(1.0)).is_err());
        assert!(LcTank::new(l, c, c, Ohms(-1.0)).is_err());
        assert!(LcTank::with_q(l, c, 0.0).is_err());
        assert!(LcTank::new(l, c, c, Ohms(f64::NAN)).is_err());
    }

    #[test]
    fn display_mentions_f0_and_q() {
        let s = LcTank::datasheet_3mhz().to_string();
        assert!(s.contains("f0=") && s.contains("Q=50.0"), "{s}");
    }
}
