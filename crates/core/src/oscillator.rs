//! Cycle-accurate oscillator model: the 3-state ODE of Fig 1.
//!
//! States are the two pin voltages and the coil current:
//!
//! ```text
//! C1·dv1/dt = −i_drv(v2 − Vref) − iL          (stage 1 drives LC1 from LC2)
//! C2·dv2/dt = −i_drv(v1 − Vref) + iL          (stage 2 drives LC2 from LC1)
//! L ·diL/dt = (v1 − v2) − Rs·iL
//! ```
//!
//! The two limited Gm stages are cross-coupled *inverting*, which gives
//! positive feedback for the differential mode (oscillation) and negative
//! feedback for the common mode (the Vref operating point holds without a
//! separate regulator, matching §6's transimpedance buffer behaviorally).

use crate::gm_driver::GmDriver;
use crate::tank::LcTank;
use lcosc_num::ode::{rk4_step, OdeSystem};

/// Oscillator state: pin voltages and coil current.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OscillatorState {
    /// Voltage on the LC1 pin, volts.
    pub v1: f64,
    /// Voltage on the LC2 pin, volts.
    pub v2: f64,
    /// Coil current flowing LC1 → LC2, amperes.
    pub il: f64,
}

impl OscillatorState {
    /// Rest state at the DC operating point `vref` with a tiny differential
    /// seed so oscillation can grow from "noise".
    pub fn at_rest(vref: f64) -> Self {
        OscillatorState {
            v1: vref + 0.5e-3,
            v2: vref - 0.5e-3,
            il: 0.0,
        }
    }

    /// Differential voltage `v1 − v2`.
    pub fn v_diff(&self) -> f64 {
        self.v1 - self.v2
    }

    /// Common-mode voltage `(v1 + v2)/2`.
    pub fn v_cm(&self) -> f64 {
        0.5 * (self.v1 + self.v2)
    }
}

/// The oscillator ODE: tank + two cross-coupled limited drivers.
#[derive(Debug, Clone, PartialEq)]
pub struct OscillatorModel {
    tank: LcTank,
    driver: GmDriver,
    vref: f64,
    /// Optional extra parallel loss at each pin (models pin shorts), S.
    pin_leak: [f64; 2],
    /// Per-driver enable (a dead driver models a hard internal failure).
    driver_enabled: bool,
    /// Supply rail for the behavioral pin clamp (None = unclamped).
    rails_vdd: Option<f64>,
}

impl OscillatorModel {
    /// Creates a model with the DC operating point `vref` (mid-supply on
    /// the real chip).
    pub fn new(tank: LcTank, driver: GmDriver, vref: f64) -> Self {
        OscillatorModel {
            tank,
            driver,
            vref,
            pin_leak: [0.0, 0.0],
            driver_enabled: true,
            rails_vdd: None,
        }
    }

    /// Returns a copy whose pins are clamped to the `0..vdd` supply range
    /// (behavioral rail diodes).
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not positive.
    pub fn with_rails(mut self, vdd: f64) -> Self {
        assert!(vdd > 0.0, "vdd must be positive");
        self.rails_vdd = Some(vdd);
        self
    }

    /// The tank.
    pub fn tank(&self) -> &LcTank {
        &self.tank
    }

    /// The driver.
    pub fn driver(&self) -> &GmDriver {
        &self.driver
    }

    /// DC operating point.
    pub fn vref(&self) -> f64 {
        self.vref
    }

    /// Updates the driver current limit (regulation loop interface).
    pub fn set_i_max(&mut self, i_max: f64) {
        self.driver.set_i_max(i_max);
    }

    /// Updates the driver small-signal transconductance (Gm-stage enables).
    pub fn set_gm(&mut self, gm: f64) {
        self.driver.set_gm(gm);
    }

    /// Adds a leak conductance from a pin to ground
    /// (0 = LC1, 1 = LC2) — fault injection for shorts.
    ///
    /// # Panics
    ///
    /// Panics if `pin > 1` or `siemens` is negative.
    pub fn set_pin_leak(&mut self, pin: usize, siemens: f64) {
        assert!(pin < 2, "pin must be 0 (LC1) or 1 (LC2)");
        assert!(siemens >= 0.0, "leak must be non-negative");
        self.pin_leak[pin] = siemens;
    }

    /// Enables or disables both driver stages (internal failure injection).
    pub fn set_driver_enabled(&mut self, enabled: bool) {
        self.driver_enabled = enabled;
    }

    /// Advances the state by one RK4 step of size `dt`.
    pub fn step(&self, state: &mut OscillatorState, dt: f64, scratch: &mut [f64]) {
        let mut x = [state.v1, state.v2, state.il];
        rk4_step(self, 0.0, dt, &mut x, scratch);
        state.v1 = x[0];
        state.v2 = x[1];
        state.il = x[2];
    }

    /// Runs for `duration` seconds with step `dt`, recording every
    /// `stride`-th sample.
    ///
    /// # Panics
    ///
    /// Panics unless `dt > 0`, `duration > dt` and `stride > 0`.
    pub fn run(
        &self,
        mut state: OscillatorState,
        duration: f64,
        dt: f64,
        stride: usize,
    ) -> OscillatorWaveform {
        assert!(dt > 0.0 && duration > dt, "need duration > dt > 0");
        assert!(stride > 0, "stride must be non-zero");
        let steps = (duration / dt).ceil() as usize;
        let mut wf = OscillatorWaveform {
            dt: dt * stride as f64,
            v1: Vec::with_capacity(steps / stride + 1),
            v2: Vec::with_capacity(steps / stride + 1),
            il: Vec::with_capacity(steps / stride + 1),
        };
        let mut scratch = vec![0.0; 15];
        wf.push(&state);
        for k in 1..=steps {
            self.step(&mut state, dt, &mut scratch);
            if k % stride == 0 {
                wf.push(&state);
            }
        }
        wf
    }

    /// Driver currents injected into (LC1, LC2) at a given state.
    pub fn driver_currents(&self, state: &OscillatorState) -> (f64, f64) {
        if !self.driver_enabled {
            return (0.0, 0.0);
        }
        // Inverting cross-coupled stages.
        (
            -self.driver.current(state.v2 - self.vref),
            -self.driver.current(state.v1 - self.vref),
        )
    }
}

impl OdeSystem for OscillatorModel {
    fn dim(&self) -> usize {
        3
    }

    fn derivatives(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
        let state = OscillatorState {
            v1: x[0],
            v2: x[1],
            il: x[2],
        };
        let (i1, i2) = self.driver_currents(&state);
        let c1 = self.tank.c1().value();
        let c2 = self.tank.c2().value();
        let l = self.tank.l().value();
        let rs = self.tank.rs().value();
        let leak1 = self.pin_leak[0] * (state.v1 - 0.0);
        let leak2 = self.pin_leak[1] * (state.v2 - 0.0);
        // Behavioral rail clamp: 20 mS (≈50 Ω ESD/junction path) beyond the
        // supply range — strong enough to bound the swing, soft enough to
        // keep the RK4 step non-stiff at the default step size.
        const G_CLAMP: f64 = 0.02;
        let clamp = |v: f64| -> f64 {
            match self.rails_vdd {
                Some(vdd) if v > vdd => -G_CLAMP * (v - vdd),
                Some(_) if v < 0.0 => -G_CLAMP * v,
                _ => 0.0,
            }
        };
        dx[0] = (i1 - state.il - leak1 + clamp(state.v1)) / c1;
        dx[1] = (i2 + state.il - leak2 + clamp(state.v2)) / c2;
        dx[2] = ((state.v1 - state.v2) - rs * state.il) / l;
    }
}

/// A recorded oscillator run (uniformly sampled).
#[derive(Debug, Clone, PartialEq)]
pub struct OscillatorWaveform {
    /// Sample spacing in seconds.
    pub dt: f64,
    /// LC1 pin voltage samples.
    pub v1: Vec<f64>,
    /// LC2 pin voltage samples.
    pub v2: Vec<f64>,
    /// Coil current samples.
    pub il: Vec<f64>,
}

impl OscillatorWaveform {
    fn push(&mut self, s: &OscillatorState) {
        self.v1.push(s.v1);
        self.v2.push(s.v2);
        self.il.push(s.il);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.v1.len()
    }

    /// Whether the record is empty.
    pub fn is_empty(&self) -> bool {
        self.v1.is_empty()
    }

    /// Differential voltage trace `v1 − v2`.
    pub fn v_diff(&self) -> Vec<f64> {
        self.v1.iter().zip(&self.v2).map(|(a, b)| a - b).collect()
    }

    /// Final state of the run.
    ///
    /// # Panics
    ///
    /// Panics if the waveform is empty.
    pub fn last_state(&self) -> OscillatorState {
        let k = self.len().checked_sub(1).expect("waveform is empty");
        OscillatorState {
            v1: self.v1[k],
            v2: self.v2[k],
            il: self.il[k],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::OscillationCondition;
    use crate::gm_driver::DriverShape;
    use lcosc_num::ode::frequency_from_crossings;
    use lcosc_num::units::Amps;

    /// A fast, low-frequency tank for unit tests (f0 ≈ 1 MHz, Q = 10).
    fn test_tank() -> LcTank {
        LcTank::with_q(
            lcosc_num::units::Henries::from_micro(25.0),
            lcosc_num::units::Farads::from_nano(2.0),
            10.0,
        )
        .unwrap()
    }

    fn test_driver(i_max: f64) -> GmDriver {
        GmDriver::new(DriverShape::LinearSaturate { gm: 10e-3 }, i_max)
    }

    fn dt_for(tank: &LcTank) -> f64 {
        1.0 / tank.f0().value() / 80.0
    }

    #[test]
    fn oscillation_grows_from_noise_and_saturates() {
        let tank = test_tank();
        let model = OscillatorModel::new(tank, test_driver(1e-3), 1.65);
        let dt = dt_for(&tank);
        // ~200 cycles.
        let wf = model.run(
            OscillatorState::at_rest(1.65),
            200.0 / tank.f0().value(),
            dt,
            1,
        );
        let vd = wf.v_diff();
        // Early window: the first oscillation cycle (amplitude saturates
        // within a few microseconds at this gain margin).
        let early = vd[..80].iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let late = vd[9 * vd.len() / 10..]
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(late > 50.0 * early, "no growth: early {early}, late {late}");
        // Saturated amplitude close to the describing-function prediction.
        let predict = OscillationCondition::new(tank)
            .steady_amplitude_pp(Amps(1e-3))
            .value();
        let measured_pp = 2.0 * late;
        assert!(
            (measured_pp / predict - 1.0).abs() < 0.15,
            "amplitude {measured_pp} vs predicted {predict}"
        );
    }

    #[test]
    fn oscillation_frequency_matches_tank() {
        let tank = test_tank();
        let model = OscillatorModel::new(tank, test_driver(1e-3), 1.65);
        let dt = dt_for(&tank);
        let wf = model.run(
            OscillatorState::at_rest(1.65),
            150.0 / tank.f0().value(),
            dt,
            1,
        );
        let vd = wf.v_diff();
        // Measure over the saturated tail.
        let tail = &vd[vd.len() / 2..];
        let f = frequency_from_crossings(0.0, dt, tail).unwrap();
        assert!(
            (f / tank.f0().value() - 1.0).abs() < 0.02,
            "f {} vs f0 {}",
            f,
            tank.f0().value()
        );
    }

    #[test]
    fn amplitude_scales_with_current_limit() {
        let tank = test_tank();
        let run_amp = |i_max: f64| {
            let model = OscillatorModel::new(tank, test_driver(i_max), 1.65);
            let dt = dt_for(&tank);
            let wf = model.run(
                OscillatorState::at_rest(1.65),
                250.0 / tank.f0().value(),
                dt,
                1,
            );
            let vd = wf.v_diff();
            vd[4 * vd.len() / 5..]
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()))
        };
        let a1 = run_amp(0.5e-3);
        let a2 = run_amp(1.0e-3);
        assert!((a2 / a1 - 2.0).abs() < 0.1, "a1 {a1}, a2 {a2}");
    }

    #[test]
    fn subcritical_driver_decays() {
        let tank = test_tank();
        let crit = OscillationCondition::new(tank).critical_gm();
        let weak = GmDriver::new(DriverShape::LinearSaturate { gm: 0.5 * crit }, 1e-3);
        let model = OscillatorModel::new(tank, weak, 1.65);
        let dt = dt_for(&tank);
        let mut state = OscillatorState::at_rest(1.65);
        state.v1 += 0.1; // sizeable kick
        state.v2 -= 0.1;
        let wf = model.run(state, 100.0 / tank.f0().value(), dt, 1);
        let vd = wf.v_diff();
        let early = vd[..vd.len() / 5]
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()));
        let late = vd[4 * vd.len() / 5..]
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(late < 0.5 * early, "should decay: {early} -> {late}");
    }

    #[test]
    fn disabled_driver_rings_down() {
        let tank = test_tank();
        let mut model = OscillatorModel::new(tank, test_driver(1e-3), 1.65);
        model.set_driver_enabled(false);
        let dt = dt_for(&tank);
        let mut state = OscillatorState::at_rest(1.65);
        state.v1 += 0.5;
        state.v2 -= 0.5;
        let wf = model.run(state, 60.0 / tank.f0().value(), dt, 1);
        let vd = wf.v_diff();
        let late = vd[4 * vd.len() / 5..]
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()));
        // Q = 10: envelope decays as exp(−π f t / Q): 60 cycles ≈ 6·10⁻⁹·...
        // 60 cycles -> exp(−π·60/10) ≈ 6·10⁻⁹ of the initial 1.0.
        assert!(late < 1e-3, "ring-down amplitude {late}");
    }

    #[test]
    fn common_mode_stays_at_vref() {
        let tank = test_tank();
        let model = OscillatorModel::new(tank, test_driver(1e-3), 1.65);
        let dt = dt_for(&tank);
        let wf = model.run(
            OscillatorState::at_rest(1.65),
            150.0 / tank.f0().value(),
            dt,
            1,
        );
        let cm_late: f64 = wf.v1[wf.len() - 100..]
            .iter()
            .zip(&wf.v2[wf.len() - 100..])
            .map(|(a, b)| 0.5 * (a + b))
            .sum::<f64>()
            / 100.0;
        assert!(
            (cm_late - 1.65).abs() < 0.05,
            "common mode drifted to {cm_late}"
        );
    }

    #[test]
    fn pin_leak_lowers_amplitude() {
        let tank = test_tank();
        let dt = dt_for(&tank);
        let amp = |leak: f64| {
            let mut model = OscillatorModel::new(tank, test_driver(1e-3), 1.65);
            model.set_pin_leak(0, leak);
            let wf = model.run(
                OscillatorState::at_rest(1.65),
                250.0 / tank.f0().value(),
                dt,
                1,
            );
            let vd = wf.v_diff();
            vd[4 * vd.len() / 5..]
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()))
        };
        let clean = amp(0.0);
        let leaky = amp(2e-3); // 500 Ω to ground on LC1
        assert!(
            leaky < 0.8 * clean,
            "leak should reduce amplitude: {clean} -> {leaky}"
        );
    }

    #[test]
    fn waveform_helpers() {
        let tank = test_tank();
        let model = OscillatorModel::new(tank, test_driver(1e-3), 1.65);
        let wf = model.run(
            OscillatorState::at_rest(1.65),
            20.0 / tank.f0().value(),
            dt_for(&tank),
            4,
        );
        assert!(!wf.is_empty());
        assert_eq!(wf.v_diff().len(), wf.len());
        let last = wf.last_state();
        assert_eq!(last.v1, *wf.v1.last().unwrap());
        assert!((last.v_cm() - 1.65).abs() < 0.2);
    }

    #[test]
    #[should_panic(expected = "pin must be")]
    fn set_pin_leak_rejects_bad_pin() {
        let mut m = OscillatorModel::new(test_tank(), test_driver(1e-3), 1.65);
        m.set_pin_leak(2, 1e-3);
    }
}
