//! Startup sequencing (paper §4).
//!
//! On power-on reset the current limitation is preset to **code 105** —
//! below maximum (reducing inrush to ≈40 % of maximum consumption) yet high
//! enough to start the oscillator even when full amplitude would need the
//! maximum code. A few microseconds later the non-volatile memory is read
//! and a predefined code close to the expected operating point takes over,
//! speeding up amplitude settling. Regulation ticks begin afterwards.

use lcosc_dac::Code;

/// Startup phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartupPhase {
    /// POR released; code forced to the preset (105).
    PorPreset,
    /// NVM value loaded; code forced to the stored value.
    NvmLoaded,
    /// Regulation loop owns the code.
    Regulating,
}

/// POR/NVM startup sequencer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StartupSequencer {
    nvm_code: Code,
    nvm_delay: f64,
    regulation_start: f64,
}

impl StartupSequencer {
    /// Creates a sequencer: the NVM code is applied `nvm_delay` seconds
    /// after POR release, and regulation begins at `regulation_start`
    /// (the first 1 ms tick boundary on the chip).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < nvm_delay <= regulation_start`.
    pub fn new(nvm_code: Code, nvm_delay: f64, regulation_start: f64) -> Self {
        assert!(nvm_delay > 0.0, "nvm delay must be positive");
        assert!(
            regulation_start >= nvm_delay,
            "regulation must start after the nvm load"
        );
        StartupSequencer {
            nvm_code,
            nvm_delay,
            regulation_start,
        }
    }

    /// Chip-like defaults: NVM read 5 µs after POR, regulation from 1 ms.
    pub fn chip_default(nvm_code: Code) -> Self {
        StartupSequencer::new(nvm_code, 5e-6, 1e-3)
    }

    /// The NVM-stored code.
    pub fn nvm_code(&self) -> Code {
        self.nvm_code
    }

    /// Phase at time `t` after POR release.
    pub fn phase(&self, t: f64) -> StartupPhase {
        if t < self.nvm_delay {
            StartupPhase::PorPreset
        } else if t < self.regulation_start {
            StartupPhase::NvmLoaded
        } else {
            StartupPhase::Regulating
        }
    }

    /// Code forced at time `t`, or `None` once regulation owns the code.
    pub fn forced_code(&self, t: f64) -> Option<Code> {
        match self.phase(t) {
            StartupPhase::PorPreset => Some(Code::POR_PRESET),
            StartupPhase::NvmLoaded => Some(self.nvm_code),
            StartupPhase::Regulating => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_in_order() {
        let s = StartupSequencer::chip_default(Code::new(60).unwrap());
        assert_eq!(s.phase(0.0), StartupPhase::PorPreset);
        assert_eq!(s.phase(1e-6), StartupPhase::PorPreset);
        assert_eq!(s.phase(10e-6), StartupPhase::NvmLoaded);
        assert_eq!(s.phase(2e-3), StartupPhase::Regulating);
    }

    #[test]
    fn por_preset_is_code_105() {
        let s = StartupSequencer::chip_default(Code::new(60).unwrap());
        assert_eq!(s.forced_code(0.0), Some(Code::POR_PRESET));
        assert_eq!(s.forced_code(0.0).unwrap().value(), 105);
    }

    #[test]
    fn nvm_code_takes_over() {
        let s = StartupSequencer::chip_default(Code::new(60).unwrap());
        assert_eq!(s.forced_code(100e-6), Some(Code::new(60).unwrap()));
        assert_eq!(s.nvm_code().value(), 60);
    }

    #[test]
    fn regulation_owns_code_after_start() {
        let s = StartupSequencer::chip_default(Code::new(60).unwrap());
        assert_eq!(s.forced_code(1e-3), None);
    }

    #[test]
    fn por_preset_is_about_40_percent_of_max_consumption() {
        // Paper: the preset reduces startup consumption to ≈40 % of max.
        let preset = lcosc_dac::multiplication_factor(Code::POR_PRESET) as f64;
        let max = lcosc_dac::multiplication_factor(Code::MAX) as f64;
        let ratio = preset / max;
        assert!((0.35..0.45).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "after the nvm load")]
    fn rejects_regulation_before_nvm() {
        let _ = StartupSequencer::new(Code::MIN, 1e-3, 1e-6);
    }
}
