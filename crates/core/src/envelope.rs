//! Averaged (envelope) amplitude dynamics.
//!
//! Millisecond-scale behavior — startup settling, regulation sweeps, FMEA
//! matrices — would need millions of cycle-accurate ODE steps. Averaging
//! over one oscillation period gives the classical envelope equation
//!
//! ```text
//! da/dt = a · (N(a) − Gm₀) / (2·C)
//! ```
//!
//! where `a` is the per-pin peak amplitude, `N(a)` the driver's describing
//! function and `Gm₀` the critical transconductance. Its fixed point is the
//! steady-state amplitude of [`crate::condition::OscillationCondition`],
//! and the model is validated against the cycle-accurate ODE in the
//! integration tests.

use crate::condition::OscillationCondition;
use crate::gm_driver::GmDriver;
use crate::tank::LcTank;

/// Averaged amplitude model.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopeModel {
    tank: LcTank,
    driver: GmDriver,
    gm_crit: f64,
    a_clamp: f64,
    /// Cached fixed point a* (0 when the oscillation cannot be sustained).
    a_star: f64,
}

impl EnvelopeModel {
    /// Creates the model without a rail clamp.
    pub fn new(tank: LcTank, driver: GmDriver) -> Self {
        let gm_crit = OscillationCondition::new(tank).critical_gm();
        let mut m = EnvelopeModel {
            tank,
            driver,
            gm_crit,
            a_clamp: f64::INFINITY,
            a_star: 0.0,
        };
        m.a_star = m.compute_steady();
        m
    }

    /// Returns a copy whose per-pin amplitude is clamped to `a_max` (the
    /// supply rails limit the swing to `min(vref, vdd − vref)`).
    ///
    /// # Panics
    ///
    /// Panics if `a_max` is not positive.
    pub fn with_clamp(mut self, a_max: f64) -> Self {
        assert!(a_max > 0.0, "clamp must be positive");
        self.a_clamp = a_max;
        self.a_star = self.compute_steady();
        self
    }

    /// The tank.
    pub fn tank(&self) -> &LcTank {
        &self.tank
    }

    /// The driver.
    pub fn driver(&self) -> &GmDriver {
        &self.driver
    }

    /// Updates the driver current limit.
    pub fn set_i_max(&mut self, i_max: f64) {
        self.driver.set_i_max(i_max);
        self.a_star = self.compute_steady();
    }

    /// Updates the driver small-signal transconductance (Gm-stage enables).
    pub fn set_gm(&mut self, gm: f64) {
        self.driver.set_gm(gm);
        self.a_star = self.compute_steady();
    }

    /// Amplitude growth rate `da/dt` at per-pin amplitude `a`.
    pub fn rate(&self, a: f64) -> f64 {
        if a <= 0.0 {
            return 0.0;
        }
        let n = self.driver.describing_function(a);
        a * (n - self.gm_crit) / (2.0 * self.tank.c_avg().value())
    }

    /// Instantaneous exponential growth rate `λ(a) = (N(a) − Gm₀)/(2C)` in
    /// 1/s (`da/dt = λ·a`).
    pub fn lambda(&self, a: f64) -> f64 {
        if a <= 0.0 {
            return 0.0;
        }
        (self.driver.describing_function(a) - self.gm_crit) / (2.0 * self.tank.c_avg().value())
    }

    /// Advances the amplitude by `dt` seconds.
    ///
    /// Uses an exponential integrator with internal sub-stepping bounded by
    /// `|λ|·h ≤ 0.2`. Because `λ(a)` is strictly decreasing in `a`, the
    /// continuous envelope approaches the fixed point monotonically and
    /// never crosses it; each sub-iterate is clamped at the cached a* so
    /// the discrete map inherits that property (no limit cycling, no bias)
    /// and stays stable however long the caller's `dt` is.
    pub fn step(&self, mut a: f64, dt: f64) -> f64 {
        // Below this amplitude the oscillation is considered extinguished;
        // without the floor an over-damped decay would crawl through
        // hundreds of subnormal decades one sub-step at a time.
        const A_FLOOR: f64 = 1e-9;
        let mut remaining = dt;
        // Hard bound on iterations in case λ is extreme.
        for _ in 0..1_000_000 {
            if remaining <= 0.0 || a <= 0.0 {
                break;
            }
            let lam = self.lambda(a);
            let h = if lam.abs() > 1e-30 {
                remaining.min(0.2 / lam.abs())
            } else {
                remaining
            };
            let mut next = (a * (lam * h).exp()).clamp(0.0, self.a_clamp);
            // Monotone approach: never step across the fixed point.
            if self.a_star > 0.0 {
                if lam > 0.0 {
                    next = next.min(self.a_star.min(self.a_clamp));
                } else if lam < 0.0 && a > self.a_star {
                    next = next.max(self.a_star);
                }
            }
            a = next;
            if lam < 0.0 && a <= A_FLOOR {
                break;
            }
            remaining -= h;
        }
        a
    }

    /// Advances by `dt` using `substeps` internal steps (for large tick
    /// intervals).
    ///
    /// # Panics
    ///
    /// Panics if `substeps == 0`.
    pub fn advance(&self, mut a: f64, dt: f64, substeps: usize) -> f64 {
        assert!(substeps > 0, "need at least one substep");
        let h = dt / substeps as f64;
        for _ in 0..substeps {
            a = self.step(a, h);
        }
        a
    }

    /// Steady-state per-pin amplitude (fixed point of the rate), or 0 when
    /// the oscillation cannot be sustained.
    pub fn steady_amplitude(&self) -> f64 {
        self.a_star
    }

    /// Recomputes the fixed point (bisection on the monotone `N(a)`).
    fn compute_steady(&self) -> f64 {
        if self.driver.i_max() == 0.0 || self.driver.gm_small_signal() <= self.gm_crit {
            return 0.0;
        }
        // For the limited driver the fixed point is where N(a) = Gm0; the
        // hard-limit expression gives a* directly, other shapes are close —
        // refine by bisection on the monotone N(a).
        let hard = 4.0 * self.driver.i_max() / (std::f64::consts::PI * self.gm_crit);
        let f = |a: f64| self.driver.describing_function(a) - self.gm_crit;
        let mut lo = hard * 0.1;
        let mut hi = hard * 2.0;
        if f(lo) < 0.0 {
            return 0.0; // cannot even sustain a tenth of the target
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if f(mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (0.5 * (lo + hi)).min(self.a_clamp)
    }

    /// The rail clamp (infinite when unclamped).
    pub fn clamp(&self) -> f64 {
        self.a_clamp
    }

    /// Time for the amplitude to grow from `a0` to `a1` (simple forward
    /// integration; `None` if it fails to get there within `t_max`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < a0 < a1` and `t_max > 0`.
    pub fn time_to_grow(&self, a0: f64, a1: f64, t_max: f64) -> Option<f64> {
        assert!(a0 > 0.0 && a1 > a0, "need 0 < a0 < a1");
        assert!(t_max > 0.0, "t_max must be positive");
        let dt = t_max / 200_000.0;
        let mut a = a0;
        let mut t = 0.0;
        while t < t_max {
            a = self.step(a, dt);
            t += dt;
            if a >= a1 {
                return Some(t);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gm_driver::DriverShape;
    use lcosc_num::units::{Amps, Farads, Henries};

    fn test_tank() -> LcTank {
        LcTank::with_q(Henries::from_micro(25.0), Farads::from_nano(2.0), 10.0).unwrap()
    }

    fn driver(i_max: f64) -> GmDriver {
        GmDriver::new(DriverShape::LinearSaturate { gm: 10e-3 }, i_max)
    }

    #[test]
    fn steady_amplitude_matches_condition_formula() {
        let tank = test_tank();
        let m = EnvelopeModel::new(tank, driver(1e-3));
        let analytic = OscillationCondition::new(tank)
            .steady_amplitude_peak(Amps(1e-3))
            .value();
        let fixed_point = m.steady_amplitude();
        assert!(
            (fixed_point / analytic - 1.0).abs() < 0.02,
            "{fixed_point} vs {analytic}"
        );
    }

    #[test]
    fn rate_positive_below_and_negative_above_fixed_point() {
        let m = EnvelopeModel::new(test_tank(), driver(1e-3));
        let a_star = m.steady_amplitude();
        assert!(m.rate(0.5 * a_star) > 0.0);
        assert!(m.rate(1.5 * a_star) < 0.0);
        assert!(m.rate(a_star).abs() < m.rate(0.5 * a_star) * 0.05);
    }

    #[test]
    fn integration_converges_to_fixed_point_from_both_sides() {
        let m = EnvelopeModel::new(test_tank(), driver(1e-3));
        let a_star = m.steady_amplitude();
        for a0 in [0.01 * a_star, 3.0 * a_star] {
            let a = m.advance(a0, 200e-6, 20_000);
            assert!(
                (a / a_star - 1.0).abs() < 0.01,
                "from {a0}: {a} vs {a_star}"
            );
        }
    }

    #[test]
    fn dead_driver_decays_to_zero() {
        let mut m = EnvelopeModel::new(test_tank(), driver(1e-3));
        m.set_i_max(0.0);
        assert_eq!(m.steady_amplitude(), 0.0);
        let a = m.advance(0.5, 100e-6, 10_000);
        assert!(a < 1e-3, "should ring down, got {a}");
    }

    #[test]
    fn subcritical_gm_cannot_sustain() {
        let tank = test_tank();
        let crit = OscillationCondition::new(tank).critical_gm();
        let weak = GmDriver::new(DriverShape::LinearSaturate { gm: 0.8 * crit }, 1e-3);
        let m = EnvelopeModel::new(tank, weak);
        assert_eq!(m.steady_amplitude(), 0.0);
    }

    #[test]
    fn time_to_grow_shrinks_with_current() {
        let tank = test_tank();
        let m_small = EnvelopeModel::new(tank, driver(0.5e-3));
        let m_large = EnvelopeModel::new(tank, driver(2e-3));
        let t_small = m_small.time_to_grow(1e-3, 0.3, 1e-3).unwrap();
        let t_large = m_large.time_to_grow(1e-3, 0.3, 1e-3).unwrap();
        // Exponential growth-rate is set by gm, identical; but the larger
        // limit keeps growing linearly for longer — it reaches 0.3 V no
        // later than the small one.
        assert!(t_large <= t_small, "{t_large} vs {t_small}");
    }

    #[test]
    fn time_to_grow_none_when_unreachable() {
        let m = EnvelopeModel::new(test_tank(), driver(1e-5));
        // Fixed point is tiny; 1 V is unreachable.
        assert!(m.time_to_grow(1e-3, 1.0, 1e-3).is_none());
    }

    #[test]
    fn zero_amplitude_is_an_equilibrium() {
        let m = EnvelopeModel::new(test_tank(), driver(1e-3));
        assert_eq!(m.rate(0.0), 0.0);
        assert_eq!(m.step(0.0, 1e-6), 0.0);
    }

    #[test]
    fn rail_clamp_caps_amplitude() {
        // Unclamped fixed point ≈ 1.0 V; rails at 0.4 V win.
        let m = EnvelopeModel::new(test_tank(), driver(1e-3)).with_clamp(0.4);
        assert_eq!(m.steady_amplitude(), 0.4);
        let a = m.advance(1e-3, 200e-6, 1_000);
        assert!((a - 0.4).abs() < 1e-9, "clamped at {a}");
        assert_eq!(m.clamp(), 0.4);
    }

    #[test]
    fn step_is_stable_for_huge_dt() {
        // The adaptive exponential integrator must land on the fixed point
        // even when one step spans thousands of time constants.
        let m = EnvelopeModel::new(test_tank(), driver(1e-3));
        let a_star = m.steady_amplitude();
        let a = m.step(1e-3, 1.0);
        assert!((a / a_star - 1.0).abs() < 0.05, "{a} vs {a_star}");
    }
}
