//! EMC emission analysis (the abstract's "low EMC emissions" claim).
//!
//! Two mechanisms keep the driver quiet:
//!
//! 1. the LC tank filters the clipped driver current into a near-sinusoidal
//!    pin voltage — the *conducted* harmonic content on the (long, antenna-
//!    like) sensor cable is far below the driver-current harmonics;
//! 2. the window comparator freezes the current-limitation code in steady
//!    state (§4: "minimize the number of changes of the current limitation
//!    when working in steady state"), avoiding periodic amplitude steps
//!    that would spread spectral skirts.
//!
//! [`EmissionReport`] quantifies the first mechanism from a cycle-accurate
//! run; the second is covered by the window-width ablation
//! (`lcosc-bench`).

use crate::gm_driver::GmDriver;
use crate::oscillator::{OscillatorModel, OscillatorState};
use crate::tank::LcTank;
use lcosc_num::fft::thd;

/// Harmonic summary of a steady-state oscillation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmissionReport {
    /// THD of the differential pin voltage (what the cable radiates).
    pub voltage_thd: f64,
    /// THD of the driver output current (the internal clipped waveform).
    pub current_thd: f64,
    /// Ratio `current_thd / voltage_thd`: the tank's cleanup factor.
    pub filtering_gain: f64,
}

/// Runs a cycle-accurate steady-state analysis and reports the harmonic
/// content of the pin voltage and of the driver current.
///
/// # Panics
///
/// Panics if the oscillation fails to start (subcritical driver) — EMC
/// analysis of a dead oscillator is meaningless.
pub fn analyze_emissions(tank: LcTank, driver: GmDriver, vref: f64) -> EmissionReport {
    let model = OscillatorModel::new(tank, driver, vref);
    let f0 = tank.f0().value();
    let dt = 1.0 / (f0 * 128.0);
    // Run to steady state, then record an analysis window.
    let settle = model.run(OscillatorState::at_rest(vref), 200.0 / f0, dt, 1);
    let steady = settle.last_state();
    let wf = model.run(steady, 64.0 / f0, dt, 1);

    let vd = wf.v_diff();
    let i_drv: Vec<f64> = wf
        .v1
        .iter()
        .zip(&wf.v2)
        .map(|(&v1, &v2)| {
            model
                .driver_currents(&OscillatorState { v1, v2, il: 0.0 })
                .0
        })
        .collect();

    let fs = 1.0 / dt;
    let voltage_thd = thd(&vd, fs, 9).expect("oscillation present");
    let current_thd = thd(&i_drv, fs, 9).expect("drive present");
    EmissionReport {
        voltage_thd,
        current_thd,
        filtering_gain: current_thd / voltage_thd.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gm_driver::DriverShape;
    use lcosc_num::units::{Farads, Henries};

    fn test_tank(q: f64) -> LcTank {
        LcTank::with_q(Henries::from_micro(25.0), Farads::from_nano(2.0), q)
            .expect("tank constants are valid")
    }

    fn driver() -> GmDriver {
        GmDriver::new(DriverShape::LinearSaturate { gm: 10e-3 }, 1e-3)
    }

    #[test]
    fn tank_filters_the_clipped_drive() {
        let r = analyze_emissions(test_tank(10.0), driver(), 1.65);
        // The driver current is deeply clipped (tens of % THD); the pin
        // voltage stays clean (a few %).
        assert!(r.current_thd > 0.15, "current thd {}", r.current_thd);
        assert!(r.voltage_thd < 0.05, "voltage thd {}", r.voltage_thd);
        assert!(r.filtering_gain > 5.0, "gain {}", r.filtering_gain);
    }

    #[test]
    fn higher_q_filters_harder() {
        let lo = analyze_emissions(test_tank(5.0), driver(), 1.65);
        let hi = analyze_emissions(test_tank(40.0), driver(), 1.65);
        assert!(
            hi.voltage_thd < lo.voltage_thd,
            "hi-q {} vs lo-q {}",
            hi.voltage_thd,
            lo.voltage_thd
        );
    }

    #[test]
    fn smooth_driver_emits_less_current_harmonics() {
        let hard = analyze_emissions(
            test_tank(10.0),
            GmDriver::new(DriverShape::HardLimit, 1e-3),
            1.65,
        );
        let smooth = analyze_emissions(
            test_tank(10.0),
            GmDriver::new(DriverShape::Tanh { gm: 10e-3 }, 1e-3),
            1.65,
        );
        assert!(
            smooth.current_thd < hard.current_thd,
            "smooth {} vs hard {}",
            smooth.current_thd,
            hard.current_thd
        );
    }
}
