//! The closed regulation loop: oscillator + detector + FSM + startup,
//! stepped together (paper Fig 16's startup and Fig 15's steady-state
//! regulation come from this module).

use crate::config::{Fidelity, OscillatorConfig};
use crate::detector::{AmplitudeDetector, RECTIFIER_GAIN};
use crate::envelope::EnvelopeModel;
use crate::gm_driver::GmDriver;
use crate::multirate::{ModeStats, MultiRateController, RateMode};
use crate::oscillator::{OscillatorModel, OscillatorState};
use crate::regulator::{RegulationAction, RegulationFsm};
use crate::startup::StartupSequencer;
use crate::tank::LcTank;
use crate::Result;
use lcosc_dac::Code;
use lcosc_device::comparator::WindowState;
use lcosc_trace::{PhaseId, StepAction, Trace, TraceEvent, WindowClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maps the comparator state onto the trace vocabulary.
fn window_class(w: WindowState) -> WindowClass {
    match w {
        WindowState::Below => WindowClass::Below,
        WindowState::Inside => WindowClass::Inside,
        WindowState::Above => WindowClass::Above,
    }
}

/// Maps the regulation decision onto the trace vocabulary.
fn step_action(a: RegulationAction) -> StepAction {
    match a {
        RegulationAction::Increment => StepAction::Increment,
        RegulationAction::Decrement => StepAction::Decrement,
        RegulationAction::Hold => StepAction::Hold,
    }
}

/// How much static verification [`ClosedLoopSim::new_with_level`] runs
/// before the first tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CheckLevel {
    /// The concrete-value `lcosc-check` pass (what [`ClosedLoopSim::new`]
    /// runs): lints this configuration's values.
    #[default]
    Standard,
    /// The concrete pass plus the `A0xx` static prover: interval abstract
    /// interpretation over the whole DAC mismatch box and exhaustive
    /// reachability of the regulation/safety automaton. Slower, but the
    /// verdict covers every die and input sequence, not just this one.
    Prove,
}

/// Events logged by the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEvent {
    /// NVM code applied (end of the POR-preset phase).
    NvmLoaded {
        /// Event time, seconds.
        t: f64,
        /// Loaded code.
        code: Code,
    },
    /// The regulation loop changed the code.
    CodeChanged {
        /// Event time, seconds.
        t: f64,
        /// Previous code.
        from: Code,
        /// New code.
        to: Code,
    },
    /// The loop hit the top code while still below the window (possible
    /// component failure; feeds the low-amplitude safety detector).
    SaturatedHigh {
        /// Event time, seconds.
        t: f64,
    },
    /// A fault was injected by the caller.
    FaultInjected {
        /// Event time, seconds.
        t: f64,
    },
}

/// Recorded per-tick history of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimTrace {
    /// Tick timestamps, seconds.
    pub tick_times: Vec<f64>,
    /// Code at the end of each tick.
    pub codes: Vec<u8>,
    /// Detector output `VDC1` at each tick.
    pub vdc1: Vec<f64>,
    /// Per-pin peak amplitude estimate at each tick.
    pub amplitudes: Vec<f64>,
    /// Logged events.
    pub events: Vec<SimEvent>,
    /// Cycle mode only: time step between decimated waveform samples.
    /// Kept in lock-step with the ODE step (a function of the tank) and
    /// the record stride — refreshed by [`ClosedLoopSim::inject_tank`] and
    /// [`ClosedLoopSim::set_record_stride`], so samples recorded after a
    /// mid-run change carry the correct timestamps.
    pub waveform_dt: f64,
    /// Cycle mode only: decimated `v1 − v2` samples.
    pub waveform_vdiff: Vec<f64>,
}

/// Result of [`ClosedLoopSim::run_until_settled`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SettleReport {
    /// Whether the code settled (stayed within ±1 for several ticks).
    pub settled: bool,
    /// Ticks executed.
    pub ticks: usize,
    /// Final regulation code.
    pub final_code: Code,
    /// Final differential peak-to-peak amplitude, volts.
    pub final_vpp: f64,
    /// Estimated supply current at the final code, amperes.
    pub supply_current: f64,
}

/// The closed amplitude-regulation loop.
#[derive(Debug, Clone)]
pub struct ClosedLoopSim {
    cfg: OscillatorConfig,
    model: OscillatorModel,
    envelope: EnvelopeModel,
    detector: AmplitudeDetector,
    fsm: RegulationFsm,
    startup: StartupSequencer,
    t: f64,
    state: OscillatorState,
    amp: f64,
    nvm_applied: bool,
    driver_dead: bool,
    trace: SimTrace,
    /// Cycle mode: record every n-th ODE sample into the waveform.
    record_stride: usize,
    scratch: Vec<f64>,
    noise_rng: StdRng,
    tracer: Trace,
    regulating_logged: bool,
    /// Multi-rate fidelity hand-off state machine.
    rate: MultiRateController,
    /// Multi-rate: which representation currently owns the dynamic state.
    /// Trails [`MultiRateController::mode`] by at most the gap between an
    /// externally armed event (fault injection between ticks) and the next
    /// tick's hand-off.
    live: RateMode,
    /// Multi-rate: whether the previous tick stepped the code (the loop is
    /// actively ramping, so threshold approaches get a cycle guard).
    code_stepped_last_tick: bool,
}

impl ClosedLoopSim {
    /// Builds the loop from a configuration, running the full static
    /// verification pass first.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::CheckFailed`] with the complete
    /// diagnostic report when the `lcosc-check` pass finds errors, or
    /// [`crate::CoreError::InvalidConfig`] when plain validation fails.
    pub fn new(cfg: OscillatorConfig) -> Result<Self> {
        Self::new_with_level(cfg, CheckLevel::Standard)
    }

    /// Builds the loop with an explicit verification level: `Standard` is
    /// [`ClosedLoopSim::new`]; `Prove` additionally discharges the `A0xx`
    /// proof obligations and refuses to construct when any is refuted.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::CheckFailed`] carrying the combined
    /// diagnostic report when the static pass (or, at `Prove` level, the
    /// prover) finds errors, or [`crate::CoreError::InvalidConfig`] when
    /// plain validation fails.
    pub fn new_with_level(cfg: OscillatorConfig, level: CheckLevel) -> Result<Self> {
        let mut report = cfg.check();
        if level == CheckLevel::Prove {
            report.merge(cfg.prove().report);
        }
        if report.has_errors() {
            return Err(crate::CoreError::CheckFailed(report));
        }
        Self::new_unchecked(cfg)
    }

    /// Builds the loop without the static verification pass (escape hatch
    /// for fault-injection studies that construct deliberately out-of-spec
    /// configurations). Basic validation still applies.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`] when the configuration
    /// fails validation.
    pub fn new_unchecked(cfg: OscillatorConfig) -> Result<Self> {
        let mut cfg = cfg;
        cfg.validate()?;
        // The LCOSC_FIDELITY hatch pins every simulation in the process to
        // one fidelity — the triage lever for multi-rate divergences,
        // mirroring LCOSC_SOLVER on the circuit side.
        if let Some(forced) = crate::config::fidelity_forced() {
            cfg.fidelity = forced;
        }
        let driver = GmDriver::new(cfg.driver_shape, 0.0);
        let model = OscillatorModel::new(cfg.tank, driver, cfg.vref).with_rails(cfg.vdd);
        let envelope = EnvelopeModel::new(cfg.tank, driver).with_clamp(cfg.rail_clamp());
        let det_dt = match cfg.fidelity {
            Fidelity::Cycle => cfg.dt(),
            // Multi-rate starts (and mostly lives) on the envelope grid.
            Fidelity::Envelope | Fidelity::MultiRate => {
                cfg.tick_period / cfg.envelope_substeps as f64
            }
        };
        let detector = AmplitudeDetector::new(
            cfg.target_peak(),
            cfg.window_rel_width,
            cfg.detector_tau,
            det_dt,
            cfg.vref,
        );
        let fsm = RegulationFsm::new(Code::POR_PRESET, cfg.tick_period);
        let startup = StartupSequencer::new(cfg.nvm_code, cfg.nvm_delay, cfg.tick_period);
        let mut sim = ClosedLoopSim {
            model,
            envelope,
            detector,
            fsm,
            startup,
            t: 0.0,
            state: OscillatorState::at_rest(cfg.vref),
            amp: 0.5e-3,
            nvm_applied: false,
            driver_dead: false,
            trace: SimTrace::default(),
            record_stride: (cfg.steps_per_period / 8).max(1),
            scratch: vec![0.0; 15],
            noise_rng: StdRng::seed_from_u64(cfg.noise_seed),
            tracer: Trace::off(),
            regulating_logged: false,
            rate: MultiRateController::new(cfg.multirate),
            live: RateMode::Envelope,
            code_stepped_last_tick: false,
            cfg,
        };
        sim.refresh_waveform_dt();
        sim.apply_code(Code::POR_PRESET);
        Ok(sim)
    }

    /// Attaches a structured-event trace; pass [`Trace::off`] to detach.
    /// When attached before the first tick, the POR-preset startup phase
    /// is logged retroactively so the stream starts at phase zero.
    pub fn set_trace(&mut self, tracer: Trace) {
        self.tracer = tracer;
        if self.trace.tick_times.is_empty() && !self.nvm_applied {
            self.tracer.emit(|| TraceEvent::StartupPhase {
                tick: 0,
                phase: PhaseId::PorPreset,
                code: Code::POR_PRESET.value(),
            });
        }
    }

    /// Builder-style [`ClosedLoopSim::set_trace`].
    #[must_use]
    pub fn with_trace(mut self, tracer: Trace) -> Self {
        self.set_trace(tracer);
        self
    }

    /// Keeps the waveform decimation metadata in lock-step with the ODE
    /// step and the record stride. The ODE step is a function of the tank
    /// (`f0`), so a mid-run tank swap changes it too.
    fn refresh_waveform_dt(&mut self) {
        self.trace.waveform_dt = self.cfg.dt() * self.record_stride as f64;
    }

    /// Sets the cycle-mode waveform decimation (record every `stride`-th
    /// ODE sample) and updates the trace's `waveform_dt` to match.
    ///
    /// # Panics
    ///
    /// Panics when `stride` is zero.
    pub fn set_record_stride(&mut self, stride: usize) {
        assert!(stride > 0, "record stride must be positive");
        self.record_stride = stride;
        self.refresh_waveform_dt();
    }

    /// Cycle-mode waveform decimation stride.
    pub fn record_stride(&self) -> usize {
        self.record_stride
    }

    /// The configuration.
    pub fn config(&self) -> &OscillatorConfig {
        &self.cfg
    }

    /// Current simulation time, seconds.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Current regulation code.
    pub fn code(&self) -> Code {
        self.fsm.code()
    }

    /// Number of regulation ticks executed — the discrete clock trace
    /// events are stamped with.
    pub fn ticks(&self) -> u64 {
        self.fsm.ticks()
    }

    /// Whether the regulation loop is (latched) saturated at the top code
    /// while still below the window — the condition the low-amplitude
    /// safety detector samples. See [`RegulationFsm::saturated_high`].
    pub fn saturated_high(&self) -> bool {
        self.fsm.saturated_high()
    }

    /// Whether the regulation loop is (latched) saturated at the bottom
    /// code while still above the window.
    pub fn saturated_low(&self) -> bool {
        self.fsm.saturated_low()
    }

    /// Current per-pin peak amplitude estimate.
    pub fn amplitude_peak(&self) -> f64 {
        match self.cfg.fidelity {
            Fidelity::Envelope => self.amp,
            Fidelity::Cycle => self.detector.vdc1() / RECTIFIER_GAIN,
            Fidelity::MultiRate => match self.live {
                RateMode::Envelope => self.amp,
                RateMode::Cycle => self.detector.vdc1() / RECTIFIER_GAIN,
            },
        }
    }

    /// Multi-rate per-mode work statistics (all-zero in the single-fidelity
    /// modes — no hand-offs ever happen there).
    pub fn mode_stats(&self) -> ModeStats {
        self.rate.stats()
    }

    /// Current differential peak-to-peak amplitude estimate.
    pub fn amplitude_vpp(&self) -> f64 {
        4.0 * self.amplitude_peak()
    }

    /// Detector output `VDC1`.
    pub fn vdc1(&self) -> f64 {
        self.detector.vdc1()
    }

    /// Recorded history.
    pub fn trace(&self) -> &SimTrace {
        &self.trace
    }

    /// Consumes the simulation, returning the recorded history.
    pub fn into_trace(self) -> SimTrace {
        self.trace
    }

    /// Replaces the tank mid-run (component drift / fault injection).
    /// Any previously injected pin leaks are reset.
    pub fn inject_tank(&mut self, tank: LcTank) {
        let driver = *self.model.driver();
        self.model = OscillatorModel::new(tank, driver, self.cfg.vref).with_rails(self.cfg.vdd);
        self.envelope = EnvelopeModel::new(tank, driver).with_clamp(self.cfg.rail_clamp());
        self.cfg.tank = tank;
        // The ODE step follows the tank's resonance frequency; the
        // decimation metadata must follow or cycle-mode waveform
        // timestamps recorded after the swap are wrong.
        self.refresh_waveform_dt();
        self.trace
            .events
            .push(SimEvent::FaultInjected { t: self.t });
        self.emit_fault_injected();
    }

    /// Overrides the regulation code immediately (safe-state reaction or
    /// test stimulus); the loop keeps regulating from there.
    pub fn force_code(&mut self, code: Code) {
        self.fsm.set_code(code);
        self.apply_code(code);
        self.arm_guard();
    }

    /// Multi-rate only: reports a guard event to the hand-off controller.
    /// The actual envelope→cycle hand-off is deferred to the next fidelity
    /// decision point (tick start), so external events between ticks —
    /// fault injections, forced codes — are safe to report from anywhere.
    fn arm_guard(&mut self) {
        if self.cfg.fidelity == Fidelity::MultiRate {
            self.rate.arm();
        }
    }

    /// Kills both driver stages (hard internal failure).
    pub fn inject_driver_failure(&mut self) {
        self.driver_dead = true;
        self.model.set_driver_enabled(false);
        self.envelope.set_i_max(0.0);
        self.trace
            .events
            .push(SimEvent::FaultInjected { t: self.t });
        self.emit_fault_injected();
    }

    fn emit_fault_injected(&mut self) {
        let tick = self.fsm.ticks();
        self.tracer.emit(|| TraceEvent::FaultInjected { tick });
        self.arm_guard();
    }

    /// Adds a leak conductance at a pin (0 = LC1, 1 = LC2); cycle mode only
    /// affects the waveform, envelope mode folds it into extra loss.
    ///
    /// A leak approaching `ω₀·C` overdamps the pin node entirely — the
    /// resonant mode disappears and no driver transconductance can sustain
    /// it; the envelope equivalent is made correspondingly extreme.
    pub fn inject_pin_leak(&mut self, pin: usize, siemens: f64) {
        self.model.set_pin_leak(pin, siemens);
        // Envelope equivalent: a small pin leak g appears as g/2 of extra
        // differential loss; fold into Rs via the critical-gm relation.
        let tank = self.cfg.tank;
        let quench = 0.5 * tank.omega0() * tank.c_avg().value();
        let extra_gm = if siemens >= quench {
            // Overdamped: no oscillation regardless of drive.
            1e6
        } else {
            siemens / 2.0
        };
        let gm0 = tank.rs().value() * tank.c_avg().value() / tank.l().value();
        let scale = (gm0 + extra_gm) / gm0;
        let faulted = tank.with_rs(lcosc_num::units::Ohms(tank.rs().value() * scale));
        let driver = *self.model.driver();
        self.envelope = EnvelopeModel::new(faulted, driver).with_clamp(self.cfg.rail_clamp());
        self.trace
            .events
            .push(SimEvent::FaultInjected { t: self.t });
        self.emit_fault_injected();
    }

    fn apply_code(&mut self, code: Code) {
        let i_max = if self.driver_dead {
            0.0
        } else {
            self.cfg.dac.current(code).value()
        };
        self.model.set_i_max(i_max);
        self.envelope.set_i_max(i_max);
        // The OscE bus also enables more parallel Gm stages at higher codes
        // (Table 1's "Active Gm stages" column): the small-signal
        // transconductance scales with the stage weight.
        let weight = lcosc_dac::ControlWord::encode(code).gm_weight() as f64;
        if let crate::gm_driver::DriverShape::LinearSaturate { gm }
        | crate::gm_driver::DriverShape::Tanh { gm } = self.cfg.driver_shape
        {
            self.model.set_gm(gm * weight);
            self.envelope.set_gm(gm * weight);
        }
    }

    /// Runs one regulation tick (1 ms of simulated time); returns the
    /// window state the FSM acted on.
    pub fn tick(&mut self) -> WindowState {
        let tick_end = self.t + self.cfg.tick_period;
        let mut window = WindowState::Below;
        match self.cfg.fidelity {
            Fidelity::Envelope => {
                let h = self.cfg.tick_period / self.cfg.envelope_substeps as f64;
                for _ in 0..self.cfg.envelope_substeps {
                    self.advance_startup(self.t + h);
                    self.amp = self.envelope.step(self.amp, h);
                    window = self.detector.update_from_amplitude(self.amp);
                    self.t += h;
                }
            }
            Fidelity::Cycle => {
                let dt = self.cfg.dt();
                // Reserve the tick's recorded samples up front so the push
                // below never reallocates mid-loop (the transient stepping
                // machinery is allocation-free after warm-up; keep the
                // waveform recording that way too).
                let steps = ((tick_end - self.t) / dt).ceil().max(0.0) as usize;
                self.trace
                    .waveform_vdiff
                    .reserve(steps / self.record_stride.max(1) + 1);
                let mut k = 0usize;
                while self.t < tick_end {
                    self.advance_startup(self.t + dt);
                    self.model.step(&mut self.state, dt, &mut self.scratch);
                    window = self.detector.update(self.state.v1, self.state.v2);
                    self.t += dt;
                    if k.is_multiple_of(self.record_stride) {
                        self.trace.waveform_vdiff.push(self.state.v_diff());
                    }
                    k += 1;
                }
            }
            Fidelity::MultiRate => {
                window = self.multirate_dynamics(tick_end);
            }
        }

        // Measurement noise perturbs the comparator decision (comparator
        // offset drift, coupled interference); the window must absorb it.
        if self.cfg.detector_noise_rms > 0.0 {
            let u1: f64 = 1.0 - self.noise_rng.gen::<f64>();
            let u2: f64 = self.noise_rng.gen();
            let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let noisy = self.detector.vdc1() + self.cfg.detector_noise_rms * gauss;
            window = self.detector.window().classify(noisy);
        }

        // Regulation acts from the first tick boundary onwards.
        let before = self.fsm.code();
        let sat_before = (self.fsm.saturated_low(), self.fsm.saturated_high());
        let action = self.fsm.tick(window);
        let after = self.fsm.code();
        let tick = self.fsm.ticks();
        if !self.regulating_logged {
            self.regulating_logged = true;
            self.tracer.emit(|| TraceEvent::StartupPhase {
                tick,
                phase: PhaseId::Regulating,
                code: before.value(),
            });
        }
        self.tracer.emit(|| TraceEvent::CodeStep {
            tick,
            old: before.value(),
            new: after.value(),
            action: step_action(action),
            window: window_class(window),
        });
        if after != before {
            self.trace.events.push(SimEvent::CodeChanged {
                t: self.t,
                from: before,
                to: after,
            });
            self.apply_code(after);
            if self.cfg.fidelity == Fidelity::MultiRate {
                self.rate.on_code_step(before, after);
            }
        }
        self.code_stepped_last_tick = after != before;
        // The SimEvent stream keeps its historical cadence (one event per
        // tick actively pinned at the top stop); the latched FSM flag is
        // what the safety path samples.
        if window == WindowState::Below && after == Code::MAX {
            self.trace
                .events
                .push(SimEvent::SaturatedHigh { t: self.t });
        }
        if self.fsm.saturated_high() && !sat_before.1 {
            self.tracer
                .emit(|| TraceEvent::Saturated { tick, high: true });
            self.arm_guard();
        }
        if self.fsm.saturated_low() && !sat_before.0 {
            self.tracer
                .emit(|| TraceEvent::Saturated { tick, high: false });
            self.arm_guard();
        }
        if self.cfg.fidelity == Fidelity::MultiRate {
            self.close_multirate_tick();
        }

        self.trace.tick_times.push(self.t);
        self.trace.codes.push(self.fsm.code().value());
        self.trace.vdc1.push(self.detector.vdc1());
        self.trace.amplitudes.push(self.amplitude_peak());
        window
    }

    /// Applies startup-forced codes when crossing the NVM-load instant.
    fn advance_startup(&mut self, t_next: f64) {
        if !self.nvm_applied {
            if let Some(forced) = self.startup.forced_code(t_next) {
                if forced != self.fsm.code() {
                    self.fsm.set_code(forced);
                    self.apply_code(forced);
                    if forced == self.startup.nvm_code() {
                        self.nvm_applied = true;
                        self.trace.events.push(SimEvent::NvmLoaded {
                            t: t_next,
                            code: forced,
                        });
                        let tick = self.fsm.ticks();
                        self.tracer.emit(|| TraceEvent::StartupPhase {
                            tick,
                            phase: PhaseId::NvmLoaded,
                            code: forced.value(),
                        });
                    }
                }
            }
        }
    }

    /// Multi-rate: runs one tick's dynamics, handing fidelity back and
    /// forth around events. Envelope substeps by default; a window-state
    /// crossing is localized by bisection inside its substep and the rest
    /// of the tick runs cycle-accurately; a tick entered with the guard
    /// armed runs cycle-accurately throughout.
    fn multirate_dynamics(&mut self, tick_end: f64) -> WindowState {
        // Perform a hand-off decided since the last fidelity decision
        // point (fault injection between ticks, a segment-boundary code
        // step at the previous tick boundary).
        if self.rate.mode() == RateMode::Cycle && self.live == RateMode::Envelope {
            self.enter_cycle_from_envelope();
        }
        // While the loop is actively ramping, don't let the envelope model
        // decide a tick that starts close to a comparator threshold.
        if self.live == RateMode::Envelope && self.code_stepped_last_tick && self.near_threshold() {
            self.rate.arm();
            self.enter_cycle_from_envelope();
        }
        if self.live == RateMode::Cycle {
            let (window, class_changed) = self.run_cycle_span(tick_end);
            if class_changed {
                self.rate.arm();
            }
            return window;
        }
        // Envelope substeps with mid-tick event localization.
        let substeps = self.cfg.envelope_substeps;
        let h = self.cfg.tick_period / substeps as f64;
        let mut window = self.detector.state();
        for _ in 0..substeps {
            let class_before = self.detector.state();
            let a_before = self.amp;
            let det_before = self.detector.clone();
            self.advance_startup(self.t + h);
            self.amp = self.envelope.step(self.amp, h);
            window = self.detector.update_from_amplitude(self.amp);
            self.t += h;
            if window != class_before {
                // The crossing is somewhere inside this substep: rewind,
                // localize it by bisection, commit the partial substep and
                // hand the rest of the tick to cycle fidelity.
                self.amp = a_before;
                self.detector = det_before;
                self.t -= h;
                let s = self.bisect_crossing(a_before, h, class_before);
                self.detector.retime(s);
                self.amp = self.envelope.step(a_before, s);
                // Advance the filter over the partial substep; the tick's
                // classification comes from the cycle span that follows.
                self.detector.update_from_amplitude(self.amp);
                self.t += s;
                self.rate.note_bisection();
                self.rate.arm();
                self.enter_cycle_from_envelope();
                let (w, _) = self.run_cycle_span(tick_end);
                return w;
            }
        }
        window
    }

    /// Whether the detector output starts this tick within the boundary
    /// margin of either comparator threshold.
    fn near_threshold(&self) -> bool {
        let margin = self.cfg.multirate.boundary_margin;
        if margin <= 0.0 {
            return false;
        }
        let vdc1 = self.detector.vdc1();
        let w = self.detector.window();
        let band = margin * 0.5 * (w.low() + w.high());
        (vdc1 - w.low()).abs() <= band || (vdc1 - w.high()).abs() <= band
    }

    /// Finds where inside an envelope substep of width `h` the window
    /// classification first leaves `class0`, by bisection on the substep
    /// fraction (`VDC1` moves one way through a substep, so 20 halvings
    /// localize the crossing to h/10⁶). Returns the partial-step size to
    /// commit — the earliest fraction known to have crossed.
    fn bisect_crossing(&self, a0: f64, h: f64, class0: WindowState) -> f64 {
        let mut lo = 0.0_f64;
        let mut hi = h;
        for _ in 0..20 {
            let mid = 0.5 * (lo + hi);
            if !(mid > lo && mid < hi) {
                break;
            }
            let mut det = self.detector.clone();
            det.retime(mid);
            let class = det.update_from_amplitude(self.envelope.step(a0, mid));
            if class == class0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }

    /// Runs cycle-accurate dynamics up to `t_end`; returns the final window
    /// classification and whether it changed inside the span. The envelope
    /// amplitude keeps shadowing the span — envelope re-entry compares it
    /// against the cycle-measured amplitude.
    fn run_cycle_span(&mut self, t_end: f64) -> (WindowState, bool) {
        let span = t_end - self.t;
        let mut window = self.detector.state();
        if span <= 0.0 {
            return (window, false);
        }
        let entry_class = window;
        let mut changed = false;
        let dt = self.cfg.dt();
        while self.t < t_end {
            self.advance_startup(self.t + dt);
            self.model.step(&mut self.state, dt, &mut self.scratch);
            window = self.detector.update(self.state.v1, self.state.v2);
            self.t += dt;
            changed |= window != entry_class;
        }
        self.amp = self.envelope.step(self.amp, span);
        (window, changed)
    }

    /// Envelope→cycle hand-off: seeds the oscillator at the peak of the
    /// differential swing implied by the envelope amplitude (each pin's
    /// share is inverse to its capacitance — the same series current flows
    /// through both), and re-discretizes the detector onto the ODE grid.
    fn enter_cycle_from_envelope(&mut self) {
        let c1 = self.cfg.tank.c1().value();
        let c2 = self.cfg.tank.c2().value();
        let a = self.amp;
        self.state = OscillatorState {
            v1: self.cfg.vref + 2.0 * a * c2 / (c1 + c2),
            v2: self.cfg.vref - 2.0 * a * c1 / (c1 + c2),
            il: 0.0,
        };
        self.detector.retime(self.cfg.dt());
        self.live = RateMode::Cycle;
    }

    /// Cycle→envelope hand-off: adopts the cycle-measured amplitude as the
    /// envelope state (re-calibrating away any envelope model drift) and
    /// re-discretizes the detector onto the envelope substep grid.
    fn enter_envelope_from_cycle(&mut self) {
        self.amp = (self.detector.vdc1() / RECTIFIER_GAIN).max(0.0);
        self.detector
            .retime(self.cfg.tick_period / self.cfg.envelope_substeps as f64);
        self.live = RateMode::Envelope;
    }

    /// Multi-rate tick epilogue: computes the envelope-shadow agreement and
    /// lets the controller decide envelope re-entry. The absolute floor on
    /// the comparison scale keeps a dead oscillator (both amplitudes ≈ 0)
    /// from failing a relative test against noise-level values.
    fn close_multirate_tick(&mut self) {
        let agree = if self.rate.mode() == RateMode::Cycle {
            let meas = (self.detector.vdc1() / RECTIFIER_GAIN).max(0.0);
            let floor = 0.02 * self.cfg.target_peak();
            (self.amp - meas).abs() <= self.cfg.multirate.handoff_rel_tol * meas.max(floor)
        } else {
            true
        };
        if self.rate.finish_tick(agree) {
            self.enter_envelope_from_cycle();
        }
    }

    /// Runs `n` ticks.
    pub fn run_ticks(&mut self, n: usize) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Runs until the code settles (stays within a ±1 band for 6 ticks) or
    /// 300 ticks elapse.
    ///
    /// # Errors
    ///
    /// Currently infallible beyond construction; returns `Ok` with
    /// `settled = false` when the loop never stabilizes (e.g. under an
    /// injected fault).
    pub fn run_until_settled(&mut self) -> Result<SettleReport> {
        const HOLD: usize = 6;
        const MAX_TICKS: usize = 300;
        let mut executed = 0usize;
        let mut settled = false;
        while executed < MAX_TICKS {
            self.tick();
            executed += 1;
            let codes = &self.trace.codes;
            if codes.len() >= HOLD + 2 {
                let tail = &codes[codes.len() - HOLD..];
                if let (Some(&lo), Some(&hi)) = (tail.iter().min(), tail.iter().max()) {
                    if hi - lo <= 1 {
                        settled = true;
                        break;
                    }
                }
            }
        }
        let cond = crate::condition::OscillationCondition::new(self.cfg.tank);
        let i_max = self.cfg.dac.current(self.fsm.code()).value();
        Ok(SettleReport {
            settled,
            ticks: executed,
            final_code: self.fsm.code(),
            final_vpp: self.amplitude_vpp(),
            supply_current: cond.supply_current(lcosc_num::units::Amps(i_max)).value(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_loop_settles_near_recommended_code() {
        let cfg = OscillatorConfig::fast_test();
        let expected = cfg.recommended_nvm_code();
        let mut sim = ClosedLoopSim::new(cfg).unwrap();
        let report = sim.run_until_settled().unwrap();
        assert!(report.settled, "did not settle: {report:?}");
        let d = (report.final_code.value() as i32 - expected.value() as i32).abs();
        assert!(
            d <= 2,
            "settled at {} vs expected {}",
            report.final_code,
            expected
        );
    }

    #[test]
    fn settled_amplitude_is_within_window() {
        let cfg = OscillatorConfig::fast_test();
        let target = cfg.target_vpp;
        let width = cfg.window_rel_width;
        let mut sim = ClosedLoopSim::new(cfg).unwrap();
        let report = sim.run_until_settled().unwrap();
        assert!(
            (report.final_vpp / target - 1.0).abs() < width,
            "vpp {} vs target {target}",
            report.final_vpp
        );
    }

    #[test]
    fn startup_sequence_events_in_order() {
        let cfg = OscillatorConfig::fast_test();
        let mut sim = ClosedLoopSim::new(cfg).unwrap();
        sim.run_ticks(3);
        let events = &sim.trace().events;
        let nvm = events.iter().find_map(|e| match e {
            SimEvent::NvmLoaded { t, code } => Some((*t, *code)),
            _ => None,
        });
        let (t_nvm, code_nvm) = nvm.expect("nvm event logged");
        assert!(t_nvm <= 10e-6, "nvm at {t_nvm}");
        assert_eq!(code_nvm, sim.config().nvm_code);
    }

    #[test]
    fn steady_state_hunting_is_bounded_by_one_code() {
        let cfg = OscillatorConfig::fast_test();
        let mut sim = ClosedLoopSim::new(cfg).unwrap();
        sim.run_ticks(60);
        let codes = &sim.trace().codes[30..];
        let lo = *codes.iter().min().unwrap();
        let hi = *codes.iter().max().unwrap();
        assert!(hi - lo <= 1, "hunting range {lo}..{hi}");
    }

    #[test]
    fn driver_failure_kills_amplitude_and_saturates_code() {
        let cfg = OscillatorConfig::fast_test();
        let mut sim = ClosedLoopSim::new(cfg).unwrap();
        sim.run_until_settled().unwrap();
        sim.inject_driver_failure();
        sim.run_ticks(150);
        assert!(
            sim.amplitude_vpp() < 0.05,
            "amplitude {}",
            sim.amplitude_vpp()
        );
        // The loop keeps asking for more current until it saturates high.
        assert_eq!(sim.code(), Code::MAX);
        assert!(sim
            .trace()
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::SaturatedHigh { .. })));
    }

    #[test]
    fn rs_drift_raises_regulated_code() {
        let cfg = OscillatorConfig::fast_test();
        let tank = cfg.tank;
        let mut sim = ClosedLoopSim::new(cfg).unwrap();
        let before = sim.run_until_settled().unwrap().final_code.value();
        // Double the losses: the loop must roughly double the current.
        sim.inject_tank(tank.with_rs(lcosc_num::units::Ohms(tank.rs().value() * 2.0)));
        sim.run_ticks(120);
        let after = sim.code().value();
        assert!(after > before + 5, "code {before} -> {after}");
    }

    #[test]
    fn cycle_fidelity_settles_too() {
        let mut cfg = OscillatorConfig::fast_test();
        cfg.fidelity = Fidelity::Cycle;
        cfg.tick_period = 0.2e-3; // keep the debug-build test quick
        cfg.detector_tau = 15e-6;
        let expected = cfg.recommended_nvm_code();
        let mut sim = ClosedLoopSim::new(cfg).unwrap();
        sim.run_ticks(12);
        let d = (sim.code().value() as i32 - expected.value() as i32).abs();
        assert!(d <= 3, "cycle mode at {} vs {}", sim.code(), expected);
        assert!(!sim.trace().waveform_vdiff.is_empty());
    }

    #[test]
    fn cycle_and_envelope_agree_on_final_amplitude() {
        let mut cyc_cfg = OscillatorConfig::fast_test();
        cyc_cfg.fidelity = Fidelity::Cycle;
        cyc_cfg.tick_period = 0.2e-3;
        cyc_cfg.detector_tau = 15e-6;
        let mut env_cfg = OscillatorConfig::fast_test();
        env_cfg.tick_period = 0.2e-3;
        env_cfg.detector_tau = 15e-6;
        let mut cyc = ClosedLoopSim::new(cyc_cfg).unwrap();
        let mut env = ClosedLoopSim::new(env_cfg).unwrap();
        cyc.run_ticks(12);
        env.run_ticks(12);
        let (a, b) = (cyc.amplitude_vpp(), env.amplitude_vpp());
        assert!((a / b - 1.0).abs() < 0.1, "cycle {a} vs envelope {b}");
    }

    #[test]
    fn trace_records_every_tick() {
        let mut sim = ClosedLoopSim::new(OscillatorConfig::fast_test()).unwrap();
        sim.run_ticks(10);
        let tr = sim.trace();
        assert_eq!(tr.tick_times.len(), 10);
        assert_eq!(tr.codes.len(), 10);
        assert_eq!(tr.vdc1.len(), 10);
        assert_eq!(tr.amplitudes.len(), 10);
        // Tick times are uniform.
        let dt = tr.tick_times[1] - tr.tick_times[0];
        for w in tr.tick_times.windows(2) {
            assert!((w[1] - w[0] - dt).abs() < 1e-12);
        }
    }

    #[test]
    fn noise_below_window_margin_does_not_destabilize() {
        // Window half-width = 7.5 % of VDC1 target; noise at 1/5 of that
        // must leave the loop settled with bounded hunting.
        let mut cfg = OscillatorConfig::fast_test();
        let vdc_target = crate::detector::RECTIFIER_GAIN * cfg.target_peak();
        cfg.detector_noise_rms = 0.015 * vdc_target;
        cfg.noise_seed = 42;
        let mut sim = ClosedLoopSim::new(cfg).unwrap();
        sim.run_ticks(120);
        let codes = &sim.trace().codes[60..];
        let lo = *codes.iter().min().unwrap();
        let hi = *codes.iter().max().unwrap();
        assert!(hi - lo <= 2, "noisy hunting range {lo}..{hi}");
    }

    #[test]
    fn noise_wider_than_window_causes_hunting() {
        let mut cfg = OscillatorConfig::fast_test();
        let vdc_target = crate::detector::RECTIFIER_GAIN * cfg.target_peak();
        cfg.detector_noise_rms = 0.25 * vdc_target; // swamps the ±7.5 % window
        cfg.noise_seed = 42;
        let mut sim = ClosedLoopSim::new(cfg).unwrap();
        sim.run_ticks(200);
        let activity = crate::measure::steady_state_activity(&sim.trace().codes);
        assert!(activity > 0.3, "activity {activity}");
    }

    #[test]
    fn noise_runs_are_reproducible() {
        let mut cfg = OscillatorConfig::fast_test();
        cfg.detector_noise_rms = 0.01;
        cfg.noise_seed = 7;
        let mut a = ClosedLoopSim::new(cfg.clone()).unwrap();
        let mut b = ClosedLoopSim::new(cfg).unwrap();
        a.run_ticks(50);
        b.run_ticks(50);
        assert_eq!(a.trace().codes, b.trace().codes);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = OscillatorConfig::fast_test();
        cfg.window_rel_width = 0.01;
        assert!(ClosedLoopSim::new(cfg).is_err());
    }

    #[test]
    fn check_failure_carries_the_full_report() {
        let mut cfg = OscillatorConfig::fast_test();
        cfg.window_rel_width = 0.01;
        match ClosedLoopSim::new(cfg.clone()) {
            Err(crate::CoreError::CheckFailed(report)) => {
                assert!(report.contains("S001"), "{}", report.render_human());
            }
            other => panic!("expected CheckFailed, got {other:?}"),
        }
        // The escape hatch skips the static pass but still validates.
        assert!(matches!(
            ClosedLoopSim::new_unchecked(cfg),
            Err(crate::CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn unchecked_constructor_accepts_valid_configs() {
        assert!(ClosedLoopSim::new_unchecked(OscillatorConfig::fast_test()).is_ok());
    }

    #[test]
    fn prove_level_accepts_the_presets() {
        for cfg in [
            OscillatorConfig::datasheet_3mhz(),
            OscillatorConfig::low_q(),
            OscillatorConfig::fast_test(),
        ] {
            let sim = ClosedLoopSim::new_with_level(cfg, CheckLevel::Prove);
            assert!(sim.is_ok(), "{:?}", sim.err());
        }
    }

    #[test]
    fn prove_level_rejects_an_unprovable_window() {
        // 8 % clears plain validation (> 6.25 % ideal max step) and the
        // concrete S001 check, but is narrower than the ≈11 % worst-case
        // step over the mismatch box — only the prover catches it.
        let mut cfg = OscillatorConfig::fast_test();
        cfg.window_rel_width = 0.08;
        assert!(ClosedLoopSim::new(cfg.clone()).is_ok());
        match ClosedLoopSim::new_with_level(cfg, CheckLevel::Prove) {
            Err(crate::CoreError::CheckFailed(report)) => {
                assert!(report.contains("A001"), "{}", report.render_human());
            }
            other => panic!("expected CheckFailed, got {other:?}"),
        }
    }

    fn cycle_cfg() -> OscillatorConfig {
        let mut cfg = OscillatorConfig::fast_test();
        cfg.fidelity = Fidelity::Cycle;
        cfg.tick_period = 0.2e-3;
        cfg.detector_tau = 15e-6;
        cfg
    }

    #[test]
    fn waveform_dt_follows_tank_swap() {
        // Regression: waveform_dt used to be computed once at construction;
        // a mid-run tank swap changes the ODE step (dt tracks f0) and left
        // the decimation metadata stale.
        let mut sim = ClosedLoopSim::new(cycle_cfg()).unwrap();
        let stride = sim.record_stride() as f64;
        assert!((sim.trace().waveform_dt / (sim.config().dt() * stride) - 1.0).abs() < 1e-12);
        // 4x the inductance halves f0 and doubles dt.
        let tank = LcTank::with_q(
            lcosc_num::units::Henries::from_micro(100.0),
            lcosc_num::units::Farads::from_nano(2.0),
            10.0,
        )
        .unwrap();
        sim.inject_tank(tank);
        assert!(
            (sim.trace().waveform_dt / (sim.config().dt() * stride) - 1.0).abs() < 1e-12,
            "stale waveform_dt {} vs dt*stride {}",
            sim.trace().waveform_dt,
            sim.config().dt() * stride
        );
    }

    #[test]
    fn waveform_dt_follows_stride_change() {
        let mut sim = ClosedLoopSim::new(cycle_cfg()).unwrap();
        let dt = sim.config().dt();
        sim.set_record_stride(3);
        assert_eq!(sim.record_stride(), 3);
        assert!((sim.trace().waveform_dt / (dt * 3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_stride_is_rejected() {
        let mut sim = ClosedLoopSim::new(cycle_cfg()).unwrap();
        sim.set_record_stride(0);
    }

    fn multirate_cfg() -> OscillatorConfig {
        let mut cfg = cycle_cfg();
        cfg.fidelity = Fidelity::MultiRate;
        cfg
    }

    #[test]
    fn multirate_reproduces_the_cycle_code_trajectory() {
        // The whole point of the multi-rate engine: the discrete outcomes
        // (per-tick codes) match a full cycle-fidelity run exactly.
        let mut mr = ClosedLoopSim::new(multirate_cfg()).unwrap();
        let mut cyc = ClosedLoopSim::new(cycle_cfg()).unwrap();
        mr.run_ticks(40);
        cyc.run_ticks(40);
        assert_eq!(mr.trace().codes, cyc.trace().codes);
    }

    #[test]
    fn multirate_spends_most_ticks_in_envelope_mode() {
        let mut sim = ClosedLoopSim::new(multirate_cfg()).unwrap();
        sim.run_ticks(60);
        let stats = sim.mode_stats();
        assert!(stats.mode_switches >= 2, "{stats:?}");
        assert!(stats.envelope_permille() >= 600, "{stats:?}");
        assert_eq!(stats.envelope_ticks + stats.cycle_ticks, 60);
    }

    #[test]
    fn multirate_fault_collapse_matches_cycle_saturation_tick() {
        let mut mr = ClosedLoopSim::new(multirate_cfg()).unwrap();
        let mut cyc = ClosedLoopSim::new(cycle_cfg()).unwrap();
        // 120 post-fault ticks: enough to ramp from the settled code
        // (≈36 on the fast-test tank) all the way to the top stop.
        for sim in [&mut mr, &mut cyc] {
            sim.run_until_settled().unwrap();
            sim.inject_driver_failure();
            sim.run_ticks(120);
        }
        assert_eq!(mr.code(), Code::MAX);
        assert_eq!(mr.code(), cyc.code());
        assert_eq!(mr.saturated_high(), cyc.saturated_high());
        // A fault run still spends the quiet saturated tail in envelope
        // mode — that's where the long-horizon speedup comes from.
        let stats = mr.mode_stats();
        assert!(stats.envelope_permille() >= 500, "{stats:?}");
    }

    #[test]
    fn single_fidelity_modes_report_zero_mode_stats() {
        let mut sim = ClosedLoopSim::new(OscillatorConfig::fast_test()).unwrap();
        sim.run_ticks(20);
        assert_eq!(sim.mode_stats(), crate::multirate::ModeStats::default());
    }

    #[test]
    fn trace_stream_has_one_code_step_per_tick_and_ordered_phases() {
        use lcosc_trace::{MemorySink, PhaseId, TraceEvent};
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        let mut sim = ClosedLoopSim::new(OscillatorConfig::fast_test())
            .unwrap()
            .with_trace(lcosc_trace::Trace::new(sink.clone()));
        sim.run_ticks(10);
        let events = sink.snapshot();
        let steps: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::CodeStep { .. }))
            .collect();
        assert_eq!(steps.len(), 10, "one CodeStep per tick, holds included");
        let phases: Vec<PhaseId> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::StartupPhase { phase, .. } => Some(*phase),
                _ => None,
            })
            .collect();
        assert_eq!(
            phases,
            vec![PhaseId::PorPreset, PhaseId::NvmLoaded, PhaseId::Regulating]
        );
        // The stream mirrors the recorded per-tick code history.
        let final_code = events
            .iter()
            .rev()
            .find_map(|e| match e {
                TraceEvent::CodeStep { new, .. } => Some(*new),
                _ => None,
            })
            .unwrap();
        assert_eq!(final_code, sim.code().value());
    }

    #[test]
    fn disabled_trace_changes_nothing() {
        let cfg = OscillatorConfig::fast_test();
        let mut plain = ClosedLoopSim::new(cfg.clone()).unwrap();
        let sink = std::sync::Arc::new(lcosc_trace::MemorySink::new());
        let mut traced = ClosedLoopSim::new(cfg)
            .unwrap()
            .with_trace(lcosc_trace::Trace::new(sink));
        plain.run_ticks(40);
        traced.run_ticks(40);
        assert_eq!(plain.trace().codes, traced.trace().codes);
        assert_eq!(plain.trace().vdc1, traced.trace().vdc1);
    }
}
