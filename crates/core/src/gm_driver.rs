//! The current-limited transconductance driver (paper Fig 2).
//!
//! Amplitude regulation inserts non-linearity by limiting the driver output
//! current to ±I_M; the DAC code sets I_M. Three static I–V shapes are
//! provided: the paper's linear-with-saturation approximation (Fig 2), an
//! ideal hard limiter, and a smooth `tanh` (closer to a real differential
//! pair). The shape determines the power factor *k* of eq 3 — ≈0.9 for the
//! linear approximation, as the paper states.

/// Static I–V shape of the limited driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriverShape {
    /// Ideal comparator-like limiter: `i = I_M · sign(v)`.
    HardLimit,
    /// Linear region with slope `gm` clipped at ±I_M (the paper's Fig 2).
    LinearSaturate {
        /// Small-signal transconductance in siemens.
        gm: f64,
    },
    /// Smooth saturation `i = I_M · tanh(gm·v / I_M)`.
    Tanh {
        /// Small-signal transconductance in siemens.
        gm: f64,
    },
}

/// A current-limited transconductor.
///
/// # Example
///
/// ```
/// use lcosc_core::gm_driver::{DriverShape, GmDriver};
///
/// let drv = GmDriver::new(DriverShape::LinearSaturate { gm: 10e-3 }, 1e-3);
/// assert_eq!(drv.current(10.0), 1e-3);        // saturated
/// assert!((drv.current(0.01) - 1e-4).abs() < 1e-12); // linear region
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmDriver {
    shape: DriverShape,
    i_max: f64,
}

impl GmDriver {
    /// Creates a driver with the given shape and current limit.
    ///
    /// # Panics
    ///
    /// Panics if `i_max` is negative, or a shape `gm` is not positive.
    pub fn new(shape: DriverShape, i_max: f64) -> Self {
        assert!(
            i_max >= 0.0 && i_max.is_finite(),
            "i_max must be non-negative"
        );
        match shape {
            DriverShape::LinearSaturate { gm } | DriverShape::Tanh { gm } => {
                assert!(gm > 0.0, "gm must be positive");
            }
            DriverShape::HardLimit => {}
        }
        GmDriver { shape, i_max }
    }

    /// The paper's driver: linear-saturate with the chip's ≈10 mS maximum
    /// equivalent transconductance (§9).
    pub fn datasheet(i_max: f64) -> Self {
        GmDriver::new(DriverShape::LinearSaturate { gm: 10e-3 }, i_max)
    }

    /// Current limit I_M.
    pub fn i_max(&self) -> f64 {
        self.i_max
    }

    /// Shape of the static characteristic.
    pub fn shape(&self) -> DriverShape {
        self.shape
    }

    /// Updates the current limit (the regulation loop does this every tick).
    ///
    /// # Panics
    ///
    /// Panics if `i_max` is negative or non-finite.
    pub fn set_i_max(&mut self, i_max: f64) {
        assert!(
            i_max >= 0.0 && i_max.is_finite(),
            "i_max must be non-negative"
        );
        self.i_max = i_max;
    }

    /// Updates the small-signal transconductance (the `OscE` bus enables
    /// more parallel Gm stages at higher codes, Fig 7). No effect on the
    /// hard limiter, whose origin slope is unbounded anyway.
    ///
    /// # Panics
    ///
    /// Panics if `gm` is not positive.
    pub fn set_gm(&mut self, new_gm: f64) {
        assert!(new_gm > 0.0, "gm must be positive");
        match &mut self.shape {
            DriverShape::LinearSaturate { gm } | DriverShape::Tanh { gm } => *gm = new_gm,
            DriverShape::HardLimit => {}
        }
    }

    /// Static output current for an input voltage (odd, saturating).
    pub fn current(&self, v: f64) -> f64 {
        match self.shape {
            DriverShape::HardLimit => {
                if v > 0.0 {
                    self.i_max
                } else if v < 0.0 {
                    -self.i_max
                } else {
                    0.0
                }
            }
            DriverShape::LinearSaturate { gm } => (gm * v).clamp(-self.i_max, self.i_max),
            DriverShape::Tanh { gm } => {
                if self.i_max == 0.0 {
                    0.0
                } else {
                    self.i_max * (gm * v / self.i_max).tanh()
                }
            }
        }
    }

    /// Small-signal transconductance at the origin (∞ for the hard limiter,
    /// represented as `f64::INFINITY`).
    pub fn gm_small_signal(&self) -> f64 {
        match self.shape {
            DriverShape::HardLimit => f64::INFINITY,
            DriverShape::LinearSaturate { gm } | DriverShape::Tanh { gm } => gm,
        }
    }

    /// Describing function `N(a)`: equivalent transconductance for a
    /// sinusoidal input of amplitude `a` (fundamental component of the
    /// output divided by `a`).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not positive.
    pub fn describing_function(&self, a: f64) -> f64 {
        assert!(a > 0.0, "amplitude must be positive");
        match self.shape {
            DriverShape::HardLimit => 4.0 * self.i_max / (std::f64::consts::PI * a),
            DriverShape::LinearSaturate { gm } => {
                if self.i_max == 0.0 {
                    return 0.0;
                }
                let ac = self.i_max / gm; // clipping corner
                if a <= ac {
                    gm
                } else {
                    let r = ac / a;
                    2.0 * gm / std::f64::consts::PI * (r.asin() + r * (1.0 - r * r).sqrt())
                }
            }
            DriverShape::Tanh { .. } => {
                // No closed form: integrate the fundamental numerically.
                let n = 400;
                let mut acc = 0.0;
                for k in 0..n {
                    let th = std::f64::consts::PI * (k as f64 + 0.5) / n as f64;
                    acc += self.current(a * th.sin()) * th.sin();
                }
                // (2/π)·∫ i(a sin θ) sin θ dθ over 0..π equals the
                // fundamental amplitude; divide by a for N(a).
                2.0 / std::f64::consts::PI * acc * (std::f64::consts::PI / n as f64) / a
            }
        }
    }

    /// Power factor `k` of paper eq 3 at oscillation amplitude `a` (peak,
    /// per driver input): `P_drv = k · V_rms · I_M` per driver.
    ///
    /// For the deeply limited linear driver this approaches `2√2/π ≈ 0.90`,
    /// the paper's *k ≈ 0.9*.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not positive.
    pub fn power_factor(&self, a: f64) -> f64 {
        assert!(a > 0.0, "amplitude must be positive");
        if self.i_max == 0.0 {
            return 0.0;
        }
        // P = mean(i(a sin θ) · a sin θ); k = P / (V_rms · I_M),
        // V_rms = a/√2.
        let n = 1000;
        let mut p = 0.0;
        for k in 0..n {
            let th = 2.0 * std::f64::consts::PI * (k as f64 + 0.5) / n as f64;
            let v = a * th.sin();
            p += self.current(v) * v;
        }
        p /= n as f64;
        p / (a / std::f64::consts::SQRT_2 * self.i_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PI: f64 = std::f64::consts::PI;

    #[test]
    fn shapes_are_odd_and_limited() {
        for shape in [
            DriverShape::HardLimit,
            DriverShape::LinearSaturate { gm: 1e-2 },
            DriverShape::Tanh { gm: 1e-2 },
        ] {
            let d = GmDriver::new(shape, 1e-3);
            for v in [-10.0, -0.5, -0.01, 0.01, 0.5, 10.0] {
                let i = d.current(v);
                assert!(
                    (i + d.current(-v)).abs() < 1e-15,
                    "{shape:?} not odd at {v}"
                );
                assert!(i.abs() <= 1e-3 + 1e-15, "{shape:?} exceeds limit at {v}");
            }
            assert_eq!(d.current(0.0), 0.0);
        }
    }

    #[test]
    fn linear_region_has_design_slope() {
        let d = GmDriver::new(DriverShape::LinearSaturate { gm: 5e-3 }, 1e-3);
        assert!((d.current(0.1) - 5e-4).abs() < 1e-15);
        assert_eq!(d.gm_small_signal(), 5e-3);
    }

    #[test]
    fn hard_limit_describing_function() {
        let d = GmDriver::new(DriverShape::HardLimit, 1e-3);
        let a = 0.5;
        assert!((d.describing_function(a) - 4.0 * 1e-3 / (PI * a)).abs() < 1e-12);
    }

    #[test]
    fn linear_describing_function_continuous_at_corner() {
        let d = GmDriver::new(DriverShape::LinearSaturate { gm: 1e-2 }, 1e-3);
        let ac = 0.1;
        let below = d.describing_function(ac * 0.999);
        let above = d.describing_function(ac * 1.001);
        assert!((below - above).abs() < 1e-4 * below);
        assert!((below - 1e-2).abs() < 1e-12);
    }

    #[test]
    fn describing_function_decreases_with_amplitude() {
        let d = GmDriver::new(DriverShape::LinearSaturate { gm: 1e-2 }, 1e-3);
        let mut prev = d.describing_function(0.05);
        for a in [0.1, 0.2, 0.5, 1.0, 2.0] {
            let n = d.describing_function(a);
            assert!(n <= prev + 1e-15, "N not decreasing at {a}");
            prev = n;
        }
    }

    #[test]
    fn tanh_describing_function_between_limits() {
        let d = GmDriver::new(DriverShape::Tanh { gm: 1e-2 }, 1e-3);
        // Deeply limited: approaches the hard-limit value.
        let a = 5.0;
        let hard = 4.0 * 1e-3 / (PI * a);
        let n = d.describing_function(a);
        assert!((n / hard - 1.0).abs() < 0.02, "{n} vs {hard}");
        // Small signal: approaches gm.
        let n0 = d.describing_function(1e-4);
        assert!((n0 / 1e-2 - 1.0).abs() < 0.01, "{n0}");
    }

    #[test]
    fn power_factor_is_0_9_when_deeply_limited() {
        // Paper: "for linear approximation (Fig 2) k ≈ 0.9".
        let d = GmDriver::new(DriverShape::LinearSaturate { gm: 1e-2 }, 1e-3);
        let k = d.power_factor(2.0); // 20x the clipping corner
        assert!((k - 2.0 * 2f64.sqrt() / PI).abs() < 0.01, "k {k}");
        assert!((k - 0.9).abs() < 0.01, "k {k}");
    }

    #[test]
    fn power_factor_in_linear_region_scales_with_amplitude() {
        let d = GmDriver::new(DriverShape::LinearSaturate { gm: 1e-2 }, 1e-3);
        // Below the corner the driver is linear: P = gm·V_rms², so
        // k = gm·V_rms/I_M < deep-limit k.
        let k_small = d.power_factor(0.05);
        let k_large = d.power_factor(2.0);
        assert!(k_small < k_large);
    }

    #[test]
    fn set_i_max_rescales_limit() {
        let mut d = GmDriver::datasheet(1e-3);
        d.set_i_max(2e-3);
        assert_eq!(d.i_max(), 2e-3);
        assert_eq!(d.current(10.0), 2e-3);
    }

    #[test]
    fn zero_limit_driver_is_dead() {
        let d = GmDriver::new(DriverShape::Tanh { gm: 1e-2 }, 0.0);
        assert_eq!(d.current(1.0), 0.0);
        assert_eq!(d.power_factor(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_limit() {
        let _ = GmDriver::new(DriverShape::HardLimit, -1.0);
    }

    #[test]
    #[should_panic(expected = "amplitude must be positive")]
    fn describing_function_rejects_zero_amplitude() {
        let _ = GmDriver::new(DriverShape::HardLimit, 1e-3).describing_function(0.0);
    }
}
