//! Deterministic benchmark harness for the PR 7 batched campaign solver.
//!
//! Runs two campaign shapes drawn from the paper's workloads — an
//! FMEA-style fault-variant sweep and a Monte-Carlo yield die population,
//! both value-only variants of the §2 tank so every deck shares one
//! structural digest — through three executions of identical results:
//!
//! - **batched**: [`CampaignBatch`] groups the jobs by structural digest
//!   and each unit is solved as one SoA batch by
//!   [`lcosc_circuit::run_transient_batch`];
//! - **per-job**: the same scheduler in solo mode, each deck solved alone
//!   on the per-job fast path (informational ratio);
//! - **reference**: each deck solved alone on
//!   [`SolverPath::Reference`] — the pre-batching per-job baseline the
//!   determinism contract is stated against, and the denominator of the
//!   gated campaign-throughput ratio.
//!
//! Every lane of every campaign is byte-compared against the per-job
//! reference waveforms; any bitwise divergence is a hard error — the bench
//! refuses to report a throughput for a wrong answer. The ≥
//! [`GATE_MIN_SPEEDUP`]× gate applies to the *minimum* batched-vs-reference
//! ratio across campaigns at a fixed thread count, and is recorded in
//! `BENCH_PR7.json` (`repro --batch-bench`).

use crate::solver_bench::bits_equal;
use lcosc_campaign::{job_seed, CampaignBatch, Json};
use lcosc_circuit::{
    run_transient, run_transient_batch, CircuitError, Netlist, SolverPath, SolverStats,
    TransientOptions, TransientResult,
};
use lcosc_trace::{Trace, TraceEvent};
use std::time::{Duration, Instant};

/// Timing laps per (campaign, path); the minimum is reported.
const LAPS: u32 = 3;

/// Paper tank parameters (§2: L = 25 µH, C1 = C2 = 2 nF, Rs = 15 Ω).
const TANK_L: f64 = 25e-6;
const TANK_C: f64 = 2e-9;
const TANK_RS: f64 = 15.0;

/// Fault variants in the FMEA-shaped campaign.
const FMEA_JOBS: usize = 24;

/// Dies in the yield-shaped campaign.
const YIELD_JOBS: usize = 64;

/// Seed of the yield die population (mirrors the DAC yield campaign's
/// default seed base).
const YIELD_SEED: u64 = 1;

/// The campaign-throughput gate: the minimum batched-vs-reference speedup
/// every campaign must clear at the fixed thread count.
pub const GATE_MIN_SPEEDUP: f64 = 4.0;

/// Measured outcome of one campaign shape.
pub struct BatchCampaignOutcome {
    /// Campaign identifier (stable across PRs — the regression key).
    pub name: &'static str,
    /// Jobs in the campaign.
    pub jobs: usize,
    /// MNA unknowns per deck.
    pub unknowns: usize,
    /// Units the batch plan scheduled (groups chunked at the width cap).
    pub units: usize,
    /// Widest unit in the plan.
    pub max_width: usize,
    /// Batched execution, minimum wall-clock over the laps.
    pub batched_wall: Duration,
    /// Per-job fast-path execution, minimum wall-clock over the laps.
    pub perjob_wall: Duration,
    /// Per-job reference-path execution, minimum wall-clock over the laps.
    pub reference_wall: Duration,
    /// Solver counters of the first job's batched solve.
    pub batched_stats: SolverStats,
}

impl BatchCampaignOutcome {
    /// Reference-path campaign wall divided by batched wall — the gated
    /// throughput ratio.
    pub fn speedup_vs_reference(&self) -> f64 {
        self.reference_wall.as_secs_f64() / self.batched_wall.as_secs_f64().max(1e-12)
    }

    /// Per-job fast-path campaign wall divided by batched wall
    /// (informational: how much the batch wins over PR 4's cached-LU
    /// per-job solver at baseline codegen).
    pub fn speedup_vs_perjob(&self) -> f64 {
        self.perjob_wall.as_secs_f64() / self.batched_wall.as_secs_f64().max(1e-12)
    }
}

/// The full batched-campaign benchmark report.
pub struct BatchBenchReport {
    /// Per-campaign outcomes in declaration order.
    pub campaigns: Vec<BatchCampaignOutcome>,
    /// Worker threads used for every execution (the gate is defined at a
    /// fixed thread count).
    pub threads: usize,
    /// Whether `LCOSC_SOLVER` forced a solver path (the gate is
    /// meaningless then — `reference` puts every run on the reference
    /// solver and `sparse` routes the decks off the batched kernels).
    pub solver_hatch: bool,
}

impl BatchBenchReport {
    /// The headline number: the minimum batched-vs-reference speedup
    /// across campaigns.
    pub fn campaign_speedup(&self) -> f64 {
        self.campaigns
            .iter()
            .map(BatchCampaignOutcome::speedup_vs_reference)
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether every campaign clears [`GATE_MIN_SPEEDUP`].
    pub fn gate_met(&self) -> bool {
        self.campaigns
            .iter()
            .all(|c| c.speedup_vs_reference() >= GATE_MIN_SPEEDUP)
    }

    /// Renders the report as the `BENCH_PR7.json` document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("bench", Json::from("pr7_batched_campaign_solver")),
            ("threads", Json::from(self.threads)),
            ("solver_hatch", Json::from(self.solver_hatch)),
            ("gate_min_speedup", Json::from(GATE_MIN_SPEEDUP)),
            ("gate_met", Json::from(self.gate_met())),
            ("campaign_speedup", Json::from(self.campaign_speedup())),
            (
                "campaigns",
                Json::Array(self.campaigns.iter().map(campaign_json).collect()),
            ),
        ])
    }
}

fn campaign_json(c: &BatchCampaignOutcome) -> Json {
    let int = |v: u64| Json::from(i64::try_from(v).unwrap_or(i64::MAX));
    Json::obj([
        ("name", Json::from(c.name)),
        ("jobs", Json::from(c.jobs)),
        ("unknowns", Json::from(c.unknowns)),
        ("units", Json::from(c.units)),
        ("max_width", Json::from(c.max_width)),
        ("bit_identical", Json::from(true)),
        ("speedup_vs_reference", Json::from(c.speedup_vs_reference())),
        ("speedup_vs_perjob", Json::from(c.speedup_vs_perjob())),
        ("batched_wall_s", Json::from(c.batched_wall.as_secs_f64())),
        ("perjob_wall_s", Json::from(c.perjob_wall.as_secs_f64())),
        (
            "reference_wall_s",
            Json::from(c.reference_wall.as_secs_f64()),
        ),
        ("batched_lanes", int(c.batched_stats.batched_lanes)),
        ("steps", int(c.batched_stats.steps)),
        ("factorizations", int(c.batched_stats.factorizations)),
        ("factor_reuses", int(c.batched_stats.factor_reuses)),
    ])
}

/// The paper tank with per-deck value scalings (structure fixed, values
/// free — exactly the shape the structural digest groups).
fn scaled_tank(c1: f64, c2: f64, l: f64, rs: f64) -> Netlist {
    let mut nl = Netlist::new();
    let lc1 = nl.node("lc1");
    let lc2 = nl.node("lc2");
    let mid = nl.node("mid");
    nl.capacitor_ic(lc1, Netlist::GROUND, TANK_C * c1, 1.0);
    nl.capacitor_ic(lc2, Netlist::GROUND, TANK_C * c2, -1.0);
    nl.inductor(lc1, mid, TANK_L * l);
    nl.resistor(mid, lc2, TANK_RS * rs);
    nl
}

/// Paper-tank resonance, series Ceff = C/2.
fn tank_f0() -> f64 {
    1.0 / (2.0 * std::f64::consts::PI * (TANK_L * TANK_C / 2.0).sqrt())
}

/// The FMEA-shaped campaign: the paper's §7 component fault modes as
/// value-only scalings of the tank (capacitor drift, partial coil short,
/// loop-resistance degradation, combinations), each at three severities.
fn fmea_fault_decks() -> Vec<Netlist> {
    const FAULTS: [(f64, f64, f64, f64); 8] = [
        (1.0, 1.0, 1.0, 1.0),  // nominal
        (0.6, 1.0, 1.0, 1.0),  // C1 drift low
        (1.4, 1.0, 1.0, 1.0),  // C1 drift high
        (1.0, 0.6, 1.0, 1.0),  // C2 drift low
        (1.0, 1.4, 1.0, 1.0),  // C2 drift high
        (1.0, 1.0, 0.5, 1.0),  // partial coil short
        (1.0, 1.0, 1.0, 10.0), // high-ESR loop
        (0.9, 1.1, 0.8, 3.0),  // combined degradation
    ];
    let mut decks = Vec::with_capacity(FMEA_JOBS);
    for severity in [1.0, 0.5, 0.25] {
        for (c1, c2, l, rs) in FAULTS {
            let sev = |s: f64| 1.0 + (s - 1.0) * severity;
            decks.push(scaled_tank(sev(c1), sev(c2), sev(l), sev(rs)));
        }
    }
    decks
}

/// One mismatch factor (±5 %) from an 11-bit slice of the die seed.
fn die_factor(seed: u64, slot: u32) -> f64 {
    let bits = (seed >> (8 + 11 * slot)) & 0x7ff;
    1.0 + 0.05 * (bits as f64 / 1023.5 - 1.0)
}

/// The yield-shaped campaign: a Monte-Carlo die population with per-die
/// component mismatch drawn from the campaign engine's hoisted seed
/// schedule `job_seed(YIELD_SEED, k)` — the same derivation the DAC yield
/// campaign pins.
fn yield_die_decks() -> Vec<Netlist> {
    (0..YIELD_JOBS as u64)
        .map(|k| {
            let seed = job_seed(YIELD_SEED, k);
            scaled_tank(
                die_factor(seed, 0),
                die_factor(seed, 1),
                die_factor(seed, 2),
                die_factor(seed, 3),
            )
        })
        .collect()
}

/// Cycle-fidelity run options over `cycles` carrier cycles (200 steps per
/// cycle, trapezoidal, stride 8 — the envelope-artifact deck shape).
fn campaign_opts(cycles: f64) -> TransientOptions {
    let f0 = tank_f0();
    let mut opts = TransientOptions::new(1.0 / (f0 * 200.0), cycles / f0);
    opts.record_stride = 8;
    opts
}

/// Times `LAPS` campaign executions of `decks` with the given per-unit
/// worker, returning the minimum wall and the (identical every lap)
/// per-job results.
fn time_campaign<F>(
    name: &str,
    decks: &[Netlist],
    worker: F,
    solo: bool,
) -> Result<(Duration, Vec<TransientResult>), String>
where
    F: Fn(&[&Netlist]) -> Vec<Result<TransientResult, CircuitError>> + Sync,
{
    let mut best: Option<(Duration, Vec<TransientResult>)> = None;
    for _ in 0..LAPS {
        let campaign = CampaignBatch::new(name, decks.to_vec())
            .threads(1)
            .solo(solo);
        let start = Instant::now();
        let outcome = campaign
            .try_run(Netlist::structural_digest, |_ctxs, unit| worker(unit))
            .map_err(|e| format!("campaign {name}: {e}"))?;
        let wall = start.elapsed();
        best = match best {
            Some((w, r)) if w <= wall => Some((w, r)),
            _ => Some((wall, outcome.results)),
        };
    }
    best.ok_or_else(|| "no laps run".to_string())
}

/// Runs one campaign shape through all three executions and byte-compares
/// every job's waveforms.
fn run_campaign(
    name: &'static str,
    decks: &[Netlist],
    opts: &TransientOptions,
    tracer: &Trace,
) -> Result<BatchCampaignOutcome, String> {
    let plan = CampaignBatch::new(name, decks.to_vec()).plan(Netlist::structural_digest);
    let mut ref_opts = *opts;
    ref_opts.solver = SolverPath::Reference;

    let (batched_wall, batched) =
        time_campaign(name, decks, |unit| run_transient_batch(unit, opts), false)?;
    let (perjob_wall, perjob) = time_campaign(
        name,
        decks,
        |unit| unit.iter().map(|d| run_transient(d, opts)).collect(),
        true,
    )?;
    let (reference_wall, reference) = time_campaign(
        name,
        decks,
        |unit| unit.iter().map(|d| run_transient(d, &ref_opts)).collect(),
        true,
    )?;

    for (job, (b, r)) in batched.iter().zip(&reference).enumerate() {
        if !bits_equal(b.times(), r.times())
            || !bits_equal(b.voltages_flat(), r.voltages_flat())
            || !bits_equal(b.currents_flat(), r.currents_flat())
        {
            return Err(format!(
                "campaign {name} job {job}: batched waveforms diverged bitwise from the \
                 per-job reference path"
            ));
        }
    }
    for (job, (p, r)) in perjob.iter().zip(&reference).enumerate() {
        if !bits_equal(p.voltages_flat(), r.voltages_flat()) {
            return Err(format!(
                "campaign {name} job {job}: per-job fast path diverged bitwise from the \
                 reference path"
            ));
        }
    }

    let s = batched[0].stats();
    tracer.emit(|| TraceEvent::SolverStats {
        steps: s.steps,
        newton_iterations: s.newton_iterations,
        factorizations: s.factorizations,
        factor_reuses: s.factor_reuses,
        post_warmup_allocations: s.post_warmup_allocations,
        batched_lanes: s.batched_lanes,
        symbolic_analyses: s.symbolic_analyses,
        symbolic_reuses: s.symbolic_reuses,
        steps_accepted: s.steps_accepted,
        steps_rejected: s.steps_rejected,
        mode_switches: s.mode_switches,
        envelope_permille: s.envelope_permille,
    });

    Ok(BatchCampaignOutcome {
        name,
        jobs: decks.len(),
        unknowns: decks[0].unknown_count(),
        units: plan.units.len(),
        max_width: plan.stats.max_width,
        batched_wall,
        perjob_wall,
        reference_wall,
        batched_stats: s,
    })
}

/// Runs the full batched-campaign benchmark at the given cycle count.
fn run_batch_bench_cycles(tracer: &Trace, cycles: f64) -> Result<BatchBenchReport, String> {
    let opts = campaign_opts(cycles);
    let campaigns = vec![
        run_campaign("fmea_fault_variants", &fmea_fault_decks(), &opts, tracer)?,
        run_campaign("yield_die_population", &yield_die_decks(), &opts, tracer)?,
    ];
    Ok(BatchBenchReport {
        campaigns,
        threads: 1,
        // Any forced solver invalidates the batched-vs-reference gate:
        // `reference` forces every path onto the reference solver and
        // `sparse` routes the batch's decks off the batched kernels.
        solver_hatch: std::env::var_os("LCOSC_SOLVER").is_some(),
    })
}

/// Runs the full benchmark: both campaign shapes at cycle-fidelity step
/// density, every lane byte-compared against the per-job reference path.
/// Batched solver counters are emitted as [`TraceEvent::SolverStats`] on
/// `tracer`.
///
/// # Errors
///
/// A transient failure or any bitwise divergence between the batched,
/// per-job and reference executions, with the campaign and job index.
pub fn run_batch_bench(tracer: &Trace) -> Result<BatchBenchReport, String> {
    run_batch_bench_cycles(tracer, 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decks_are_uniform_value_variants() {
        let fmea = fmea_fault_decks();
        let dies = yield_die_decks();
        assert_eq!(fmea.len(), FMEA_JOBS);
        assert_eq!(dies.len(), YIELD_JOBS);
        let digest = fmea[0].structural_digest();
        assert!(fmea.iter().chain(&dies).all(Netlist::is_linear));
        assert!(fmea
            .iter()
            .chain(&dies)
            .all(|d| d.structural_digest() == digest));
        // Values must actually differ — a constant population would let a
        // broken lane mapping pass the differential check by accident.
        assert!((0..fmea.len() - 1).any(|i| fmea[i] != fmea[i + 1]));
        assert!((0..dies.len() - 1).any(|i| dies[i] != dies[i + 1]));
    }

    #[test]
    fn die_factors_stay_in_band() {
        for k in 0..YIELD_JOBS as u64 {
            let seed = job_seed(YIELD_SEED, k);
            for slot in 0..4 {
                let f = die_factor(seed, slot);
                assert!((0.95..=1.0501).contains(&f), "factor {f}");
            }
        }
    }

    #[test]
    fn short_bench_is_bit_identical_and_reports() {
        // A miniature of the real bench: same machinery, few cycles. The
        // bitwise differential (batched vs per-job vs reference) is fully
        // meaningful at any length; only the speedups need the long run.
        let report = run_batch_bench_cycles(&Trace::off(), 3.0).expect("bench");
        assert_eq!(report.campaigns.len(), 2);
        assert_eq!(report.threads, 1);
        let fmea = &report.campaigns[0];
        assert_eq!(fmea.jobs, FMEA_JOBS);
        assert_eq!(fmea.unknowns, 4);
        if !report.solver_hatch {
            // One digest group chunked at the default width cap.
            assert_eq!(fmea.units, 1);
            assert_eq!(fmea.max_width, FMEA_JOBS);
            assert_eq!(fmea.batched_stats.batched_lanes, FMEA_JOBS as u64);
            assert_eq!(report.campaigns[1].max_width, 64);
            assert!(fmea.batched_stats.used_linear_fast_path);
        }
        let json = report.to_json().render_pretty(2);
        for key in [
            "pr7_batched_campaign_solver",
            "gate_min_speedup",
            "gate_met",
            "campaign_speedup",
            "speedup_vs_reference",
            "speedup_vs_perjob",
            "bit_identical",
            "batched_lanes",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn gate_logic_tracks_the_minimum_campaign() {
        let mk = |num: u64, den: u64| BatchCampaignOutcome {
            name: "c",
            jobs: 1,
            unknowns: 4,
            units: 1,
            max_width: 1,
            batched_wall: Duration::from_millis(den),
            perjob_wall: Duration::from_millis(num),
            reference_wall: Duration::from_millis(num),
            batched_stats: SolverStats::default(),
        };
        let good = BatchBenchReport {
            campaigns: vec![mk(50, 10), mk(41, 10)],
            threads: 1,
            solver_hatch: false,
        };
        assert!(good.gate_met());
        assert!((good.campaign_speedup() - 4.1).abs() < 1e-12);
        let bad = BatchBenchReport {
            campaigns: vec![mk(50, 10), mk(39, 10)],
            threads: 1,
            solver_hatch: false,
        };
        assert!(!bad.gate_met());
    }
}
