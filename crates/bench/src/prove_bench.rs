//! Benchmark of the `lcosc-check` static safety prover.
//!
//! Runs the full `A0xx` obligation set (abstract DAC interpretation over
//! all 128 codes plus exhaustive product-automaton reachability) over
//! every configuration preset, three laps each, and reports the
//! min-of-3 wall-clock next to the proof's own size counters
//! (reachable states, transitions, obligation tally). The run doubles
//! as the prover's determinism regression: the rendered JSON verdict
//! must be byte-identical across laps — a hard error, not a log line,
//! when violated.

use lcosc_campaign::Json;
use lcosc_core::config::OscillatorConfig;
use std::time::{Duration, Instant};

/// Laps per preset; the report keeps the fastest.
pub const LAPS: usize = 3;

/// One preset's proof measurement.
#[derive(Debug, Clone)]
pub struct ProveLap {
    /// Preset name (stable protocol token).
    pub preset: &'static str,
    /// Fastest of [`LAPS`] wall-clock laps.
    pub wall: Duration,
    /// Whether every obligation was discharged.
    pub proved: bool,
    /// Obligations checked.
    pub obligations: usize,
    /// Reachable product-automaton states.
    pub reach_states: usize,
    /// Explored transitions.
    pub reach_transitions: usize,
    /// Rendered verdict size, bytes.
    pub verdict_bytes: usize,
}

/// The full prover benchmark report.
#[derive(Debug, Clone)]
pub struct ProveBenchReport {
    /// One entry per preset.
    pub laps: Vec<ProveLap>,
}

impl ProveBenchReport {
    /// Renders the `BENCH_PR6.json` payload. Wall-clock fields are the
    /// only machine-dependent values; everything else is deterministic.
    pub fn to_json(&self) -> Json {
        let laps: Vec<Json> = self
            .laps
            .iter()
            .map(|l| {
                Json::obj([
                    ("preset", Json::from(l.preset)),
                    ("wall_ms", Json::from(l.wall.as_secs_f64() * 1e3)),
                    ("proved", Json::from(l.proved)),
                    ("obligations", Json::from(l.obligations)),
                    ("reach_states", Json::from(l.reach_states)),
                    ("reach_transitions", Json::from(l.reach_transitions)),
                    ("verdict_bytes", Json::from(l.verdict_bytes)),
                ])
            })
            .collect();
        Json::obj([
            ("bench", Json::from("lcosc-check static safety prover")),
            ("laps_per_preset", Json::from(LAPS)),
            ("presets", Json::Array(laps)),
            ("verdicts_byte_identical_across_laps", Json::from(true)),
        ])
    }
}

/// The benchmarked presets, by stable token.
fn presets() -> [(&'static str, OscillatorConfig); 3] {
    [
        ("fast_test", OscillatorConfig::fast_test()),
        ("datasheet_3mhz", OscillatorConfig::datasheet_3mhz()),
        ("low_q", OscillatorConfig::low_q()),
    ]
}

/// Runs the prover benchmark.
///
/// # Errors
///
/// A verdict that changes between laps, or a preset whose proof fails,
/// is an error (CI fails on it).
pub fn run_prove_bench() -> Result<ProveBenchReport, String> {
    let mut laps = Vec::new();
    for (token, cfg) in presets() {
        let facts = cfg.prove_facts();
        let mut best: Option<Duration> = None;
        let mut reference: Option<String> = None;
        let mut outcome = None;
        for _ in 0..LAPS {
            let start = Instant::now();
            let o = lcosc_check::prove(&facts);
            let wall = start.elapsed();
            let rendered = o.render_json();
            match &reference {
                None => reference = Some(rendered),
                Some(first) if *first != rendered => {
                    return Err(format!(
                        "determinism violation: prover verdict for {token} changed between laps"
                    ));
                }
                Some(_) => {}
            }
            best = Some(best.map_or(wall, |b| b.min(wall)));
            outcome = Some(o);
        }
        let o = outcome.expect("LAPS > 0");
        if !o.proved() {
            return Err(format!(
                "preset {token} fails its safety proof:\n{}",
                o.render_human()
            ));
        }
        laps.push(ProveLap {
            preset: token,
            wall: best.expect("LAPS > 0"),
            proved: o.proved(),
            obligations: o.obligations.len(),
            reach_states: o.reach.states,
            reach_transitions: o.reach.transitions,
            verdict_bytes: reference.expect("LAPS > 0").len(),
        });
    }
    Ok(ProveBenchReport { laps })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prove_bench_runs_and_reports_every_preset() {
        let report = run_prove_bench().expect("presets prove");
        assert_eq!(report.laps.len(), 3);
        for lap in &report.laps {
            assert!(lap.proved, "{}", lap.preset);
            assert_eq!(lap.obligations, 7, "{}", lap.preset);
            assert!(lap.reach_states >= 128, "{}", lap.preset);
            assert!(lap.reach_transitions > lap.reach_states, "{}", lap.preset);
        }
        let rendered = report.to_json().render();
        assert!(rendered.contains("\"preset\":\"datasheet_3mhz\""));
    }
}
