//! Generators for the paper's figures and tables.

use lcosc_core::config::{Fidelity, OscillatorConfig};
use lcosc_core::gm_driver::{DriverShape, GmDriver};
use lcosc_core::sim::ClosedLoopSim;
use lcosc_dac::{multiplication_factor, relative_step, Code, ControlWord, MismatchedDac, SEGMENTS};
use lcosc_pad::topology::PadTopology;
use lcosc_pad::unsupplied::{UnsuppliedBench, UnsuppliedPoint};
use lcosc_safety::{DualOutcome, DualSystem, FmeaReport};

/// Fig 2 — static driver I–V (linear-saturate shape, I_M = 1 mA).
pub fn fig02_driver_iv() -> Vec<(f64, f64)> {
    let drv = GmDriver::new(DriverShape::LinearSaturate { gm: 10e-3 }, 1e-3);
    (-60..=60)
        .map(|k| {
            let v = k as f64 * 0.01;
            (v, drv.current(v))
        })
        .collect()
}

/// Fig 3 — multiplication factor `Mₙ` for every code.
pub fn fig03_transfer() -> Vec<(u8, u32)> {
    Code::all()
        .map(|c| (c.value(), multiplication_factor(c)))
        .collect()
}

/// Fig 4 — relative voltage step per code (`None` where undefined).
pub fn fig04_relative_step() -> Vec<(u8, Option<f64>)> {
    Code::all().map(|c| (c.value(), relative_step(c))).collect()
}

/// Table 1 — one row per segment (the control coding), formatted.
pub fn table1() -> String {
    let mut out = String::from(
        "segment  prescale  gm  step  range_min  range_max  OscD  OscE   OscF placement\n",
    );
    for s in &SEGMENTS {
        out.push_str(&format!(
            "{:>7}  {:>8}  {:>2}  {:>4}  {:>9}  {:>9}  {:>4}  {:>4}   B<<{}\n",
            s.index,
            s.prescale,
            s.gm_weight,
            s.step,
            s.range_min,
            s.range_max,
            format!("{:03b}", s.osc_d),
            format!("{:04b}", s.osc_e),
            s.oscf_shift
        ));
    }
    out
}

/// Verifies the Table 1 encoder against the closed-form staircase for all
/// codes; returns the number of checked codes (128). Used by the bench to
/// have real work to time.
pub fn table1_verify() -> usize {
    Code::all()
        .map(|c| {
            assert_eq!(
                ControlWord::encode(c).output_units(),
                multiplication_factor(c)
            );
            1
        })
        .sum()
}

/// Fig 13 — measured-style current limitation of the reference die, amps.
pub fn fig13_measured_current() -> Vec<(u8, f64)> {
    let die = MismatchedDac::reference_die();
    Code::all()
        .map(|c| (c.value(), die.current(c).value()))
        .collect()
}

/// Fig 14 — measured-style relative step of the reference die.
pub fn fig14_measured_step() -> Vec<(u8, Option<f64>)> {
    let die = MismatchedDac::reference_die();
    Code::all()
        .map(|c| (c.value(), die.relative_step(c)))
        .collect()
}

/// Fig 15 — regulation steps detail: per-tick (time, code, amplitude Vpp)
/// around steady state, with a loss disturbance in the middle so the ±1
/// stepping is visible.
pub fn fig15_regulation_steps() -> Vec<(f64, u8, f64)> {
    let cfg = OscillatorConfig::datasheet_3mhz();
    let tank = cfg.tank;
    let mut sim = ClosedLoopSim::new(cfg).expect("datasheet config is valid");
    sim.run_until_settled().expect("settles");
    // Disturb the losses by 20 % — the loop steps the code a few counts.
    sim.inject_tank(tank.with_rs(lcosc_num::units::Ohms(tank.rs().value() * 1.2)));
    sim.run_ticks(30);
    let tr = sim.trace();
    tr.tick_times
        .iter()
        .zip(&tr.codes)
        .zip(&tr.amplitudes)
        .map(|((t, c), a)| (*t, *c, 4.0 * a))
        .collect()
}

/// Fig 16 — oscillator startup: amplitude envelope (Vpp) and code vs time
/// over the first few regulation ticks, at sub-tick resolution.
pub fn fig16_startup() -> Vec<(f64, u8, f64)> {
    // Startup on this tank resolves in microseconds (the slew-limited
    // growth rate is 2·I_M/(π·C) ≈ 1e8 V/s), so the figure needs µs-scale
    // resolution; the chip sequence (POR 105 → NVM → regulation) is
    // preserved with all delays scaled together.
    let mut cfg = OscillatorConfig::datasheet_3mhz();
    cfg.fidelity = Fidelity::Envelope;
    cfg.tick_period = 5e-6;
    cfg.detector_tau = 0.4e-6;
    cfg.nvm_delay = 2e-6;
    let mut sim = ClosedLoopSim::new(cfg).expect("config is valid");
    sim.run_ticks(200); // 1 ms
    let tr = sim.trace();
    tr.tick_times
        .iter()
        .zip(&tr.codes)
        .zip(&tr.amplitudes)
        .map(|((t, c), a)| (*t, *c, 4.0 * a))
        .collect()
}

/// Fig 17/18 — unsupplied-driver DC sweep for a pad topology.
pub fn fig17_18_unsupplied(topology: PadTopology) -> Vec<UnsuppliedPoint> {
    UnsuppliedBench::new(topology)
        .sweep_paper_range(61)
        .expect("sweep converges")
}

/// §9 — supply current vs tank quality factor at the 2.7 Vpp operating
/// amplitude (the paper's 250 µA … 30 mA consumption claim).
pub fn consumption_vs_q() -> Vec<(f64, f64, u8)> {
    consumption_vs_q_threads(1)
}

/// [`consumption_vs_q`] fanned out over `threads` campaign workers
/// (`1` = serial, `0` = all cores); each Q point is one independent job.
pub fn consumption_vs_q_threads(threads: usize) -> Vec<(f64, f64, u8)> {
    use lcosc_core::tank::LcTank;
    use lcosc_num::units::{Farads, Henries};
    // The supported two-decade band for the datasheet coil (see
    // tests/paper_claims.rs for the derivation).
    let qs = vec![0.65, 1.5, 3.0, 6.5, 15.0, 30.0, 65.0];
    lcosc_campaign::Campaign::new("consumption-vs-q", qs)
        .threads(threads)
        .run(|_ctx, &q| {
            let tank = LcTank::with_q(Henries::from_micro(4.7), Farads::from_nano(1.5), q)
                .expect("tank is valid");
            let mut cfg = OscillatorConfig::for_tank(tank);
            cfg.target_vpp = 2.7;
            cfg.nvm_code = cfg.recommended_nvm_code();
            let mut sim = ClosedLoopSim::new(cfg).expect("config is valid");
            let r = sim.run_until_settled().expect("infallible");
            (q, r.supply_current, r.final_code.value())
        })
        .results
}

/// §7 — the FMEA matrix on the datasheet operating point.
pub fn fmea_matrix() -> FmeaReport {
    FmeaReport::run(&OscillatorConfig::datasheet_3mhz()).expect("config is valid")
}

/// [`fmea_matrix`] as a parallel campaign: returns the matrix plus the
/// campaign's wall-clock/job-count statistics.
pub fn fmea_matrix_threads(threads: usize) -> lcosc_safety::FmeaRun {
    fmea_matrix_threads_traced(threads, &lcosc_trace::Trace::off())
}

/// [`fmea_matrix_threads`] with campaign-level trace events (job index,
/// seed, wall-clock) emitted into `tracer` in catalog order.
pub fn fmea_matrix_threads_traced(
    threads: usize,
    tracer: &lcosc_trace::Trace,
) -> lcosc_safety::FmeaRun {
    FmeaReport::run_with_threads_traced(&OscillatorConfig::datasheet_3mhz(), threads, tracer)
        .expect("config is valid")
}

/// §8 — dual-system supply-loss outcomes for all three pad topologies.
pub fn dual_redundancy() -> Vec<DualOutcome> {
    dual_redundancy_threads(1)
}

/// [`dual_redundancy`] fanned out over `threads` campaign workers; one job
/// per pad topology.
pub fn dual_redundancy_threads(threads: usize) -> Vec<DualOutcome> {
    let mut cfg = OscillatorConfig::datasheet_3mhz();
    cfg.target_vpp = 2.7;
    cfg.nvm_code = cfg.recommended_nvm_code();
    lcosc_campaign::Campaign::new("dual-redundancy", PadTopology::ALL.to_vec())
        .threads(threads)
        .run(|_ctx, &topology| {
            DualSystem::new(cfg.clone(), topology, 0.8)
                .expect("coupling is valid")
                .run_supply_loss()
                .expect("analysis converges")
        })
        .results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig02_is_odd_and_saturates() {
        let pts = fig02_driver_iv();
        assert_eq!(pts.len(), 121);
        assert_eq!(pts[0].1, -1e-3);
        assert_eq!(pts[120].1, 1e-3);
        let mid = pts[60];
        assert_eq!(mid.1, 0.0);
    }

    #[test]
    fn fig03_covers_paper_range() {
        let pts = fig03_transfer();
        assert_eq!(pts.len(), 128);
        assert_eq!(pts[127].1, 1984);
    }

    #[test]
    fn fig04_band_above_16() {
        for (code, step) in fig04_relative_step() {
            if (16..127).contains(&code) {
                let s = step.expect("defined above 16");
                assert!((0.0322..=0.0626).contains(&s), "code {code}: {s}");
            }
        }
    }

    #[test]
    fn table1_verifies_and_formats() {
        assert_eq!(table1_verify(), 128);
        let t = table1();
        assert!(t.contains("1024"));
        assert_eq!(t.lines().count(), 9);
    }

    #[test]
    fn fig13_full_scale_near_25_ma() {
        let pts = fig13_measured_current();
        let fs = pts[127].1;
        assert!((fs - 24.8e-3).abs() < 1.5e-3, "{fs}");
    }

    #[test]
    fn fig14_has_negative_step_at_code_96_boundary() {
        let pts = fig14_measured_step();
        let neg: Vec<u8> = pts
            .iter()
            .filter_map(|(c, s)| s.filter(|s| *s < 0.0).map(|_| *c))
            .collect();
        assert_eq!(neg, vec![95], "negative step into code 96");
    }

    #[test]
    fn fig16_startup_reaches_target() {
        let pts = fig16_startup();
        let last = pts.last().expect("non-empty");
        assert!((last.2 - 2.7).abs() < 0.3, "final vpp {}", last.2);
        // The first recorded tick already runs on the NVM code (the POR
        // preset only lasts the first 5 µs); regulation converges from it.
        let nvm = OscillatorConfig::datasheet_3mhz().nvm_code.value();
        assert!(
            (pts[0].1 as i32 - nvm as i32).abs() <= 1,
            "first code {}",
            pts[0].1
        );
    }

    #[test]
    fn consumption_span_matches_paper() {
        let pts = consumption_vs_q();
        let lo = pts.last().expect("non-empty").1; // highest Q
        let hi = pts[0].1; // lowest Q
        assert!(lo < 400e-6, "best-case consumption {lo}");
        assert!(hi > 5e-3, "worst-case consumption {hi}");
        // Monotone: poorer tanks burn more.
        for w in pts.windows(2) {
            assert!(w[0].1 >= w[1].1, "{:?}", w);
        }
    }
}
