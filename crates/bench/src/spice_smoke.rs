//! `.sp` smoke harnesses behind the `repro` early-exit flags.
//!
//! Three entry points, all deterministic:
//!
//! - [`run_fuzz_smoke`] drives [`lcosc_spice::fuzz::run_fuzz`] with a
//!   *real* [`ServeEngine`] answering the protocol surface, so the fuzz
//!   campaign exercises the full request path (desugar, canonicalize,
//!   execute) rather than a stub.
//! - [`run_spice_smoke`] feeds every `.sp` fixture in a directory through
//!   a live engine twice — once as a `"spice"` request, once as its
//!   JSON-deck spelling — and byte-compares the responses.
//! - [`run_deck_file`] lints (and optionally simulates) one deck file,
//!   dispatching on extension: `.sp` through the SPICE front end,
//!   anything else through the JSON deck reader.

use lcosc_campaign::Json;
use lcosc_check::{check_netlist, Report};
use lcosc_circuit::{netlist_to_json, run_transient, Netlist, TransientOptions};
use lcosc_serve::{ServeConfig, ServeEngine};
use lcosc_spice::{parse_spice, FuzzConfig, FuzzReport};
use lcosc_trace::Trace;
use std::path::Path;
use std::time::Duration;

/// A quiet engine sized for smoke traffic.
fn smoke_engine() -> std::sync::Arc<ServeEngine> {
    ServeEngine::start(&ServeConfig {
        threads: 2,
        queue_depth: 32,
        cache_entries: 64,
        deadline: Duration::from_secs(30),
        max_line_bytes: 1 << 20,
        trace: Trace::off(),
    })
}

/// Runs the three-surface fuzz campaign against a live serve engine.
///
/// Bit-reproducible: the report (including its chained digest) is a pure
/// function of `cfg`, because the engine's responses are themselves
/// deterministic for a given request line.
pub fn run_fuzz_smoke(cfg: &FuzzConfig) -> FuzzReport {
    let engine = smoke_engine();
    let protocol = |line: &str| engine.submit_line(line).wait();
    let report = lcosc_spice::run_fuzz(cfg, &protocol);
    engine.shutdown();
    report
}

/// One fixture's outcome in the spice-vs-deck smoke run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmokeCase {
    /// Fixture file stem.
    pub name: String,
    /// Whether the `"spice"` response was byte-identical (modulo the
    /// echoed id) to the JSON-deck response.
    pub identical: bool,
}

/// Feeds every `.sp` file under `dir` (sorted by name) through a live
/// engine as both spellings and byte-compares the responses.
///
/// # Errors
///
/// Fails on IO problems, unparseable fixtures, or fixtures without a
/// `.tran` card (the deck spelling needs `dt`/`t_end`).
pub fn run_spice_smoke(dir: &Path) -> Result<Vec<SmokeCase>, String> {
    let mut fixtures: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|x| x == "sp"))
        .collect();
    fixtures.sort();
    if fixtures.is_empty() {
        return Err(format!("no .sp fixtures under {}", dir.display()));
    }
    let engine = smoke_engine();
    let mut cases = Vec::new();
    for (k, path) in fixtures.iter().enumerate() {
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let deck = parse_spice(&text).map_err(|e| format!("{name}: {e}"))?;
        let opts = deck
            .tran_options()
            .ok_or_else(|| format!("{name}: fixture has no .tran card"))?;
        let deck_line = Json::obj([
            ("id", Json::from(format!("deck-{k}"))),
            ("kind", Json::from("transient")),
            ("deck", netlist_to_json(&deck.netlist)),
            ("dt", Json::from(opts.dt)),
            ("t_end", Json::from(opts.t_end)),
        ])
        .render();
        let spice_line = Json::obj([
            ("id", Json::from(format!("spice-{k}"))),
            ("kind", Json::from("transient")),
            ("spice", Json::from(text.as_str())),
        ])
        .render();
        let from_deck = engine.submit_line(&deck_line).wait();
        let from_spice = engine.submit_line(&spice_line).wait();
        let identical = from_deck.replace(
            &format!("\"id\":\"deck-{k}\""),
            &format!("\"id\":\"spice-{k}\""),
        ) == from_spice
            && from_deck.contains("\"status\":\"ok\"");
        cases.push(SmokeCase { name, identical });
    }
    engine.shutdown();
    Ok(cases)
}

/// The outcome of linting one deck file with [`run_deck_file`].
pub struct DeckOutcome {
    /// The lcosc-check report (P0xx parse warnings folded in for `.sp`).
    pub report: Report,
    /// Transient summary line, when the deck carried an analysis plan and
    /// the check found no errors.
    pub transient: Option<String>,
}

/// Parses, lints and (when a `.tran` plan is present and the lint is
/// clean) simulates one deck file. `.sp` files go through the SPICE front
/// end; anything else is read as JSON deck text.
///
/// # Errors
///
/// Returns a rendered parse error when the file cannot be read or parsed
/// at all (lint findings are *not* errors here — they are in the report).
pub fn run_deck_file(path: &Path) -> Result<DeckOutcome, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let is_sp = path.extension().is_some_and(|x| x == "sp");
    let (netlist, report, opts) = if is_sp {
        let deck = parse_spice(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let report = deck.check();
        let opts = deck.tran_options();
        (deck.netlist, report, opts)
    } else {
        let json =
            Json::parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
        let nl = lcosc_circuit::netlist_from_json(&json)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let report = check_netlist(&nl);
        (nl, report, None)
    };
    let transient = match (&opts, report.has_errors()) {
        (Some(o), false) => Some(run_deck_transient(&netlist, o)),
        _ => None,
    };
    Ok(DeckOutcome { report, transient })
}

fn run_deck_transient(nl: &Netlist, opts: &TransientOptions) -> String {
    match run_transient(nl, opts) {
        Ok(result) => {
            let steps = result.len();
            let last = result.times().last().copied().unwrap_or(0.0);
            format!("transient: {steps} recorded points to t = {last:e} s")
        }
        Err(e) => format!("transient failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcosc_spice::FuzzConfig;

    fn golden_dir() -> std::path::PathBuf {
        [
            env!("CARGO_MANIFEST_DIR"),
            "..",
            "..",
            "tests",
            "golden",
            "spice",
        ]
        .iter()
        .collect()
    }

    #[test]
    fn fuzz_smoke_against_a_live_engine_is_reproducible() {
        let cfg = FuzzConfig {
            seed: 7,
            cases_per_surface: 40,
            step_budget: 64,
        };
        let a = run_fuzz_smoke(&cfg);
        let b = run_fuzz_smoke(&cfg);
        assert_eq!(a, b, "two runs with one seed diverged");
        assert_eq!(a.panics, 0, "{:?}", a.failures);
        assert!(a.failures.is_empty(), "{:?}", a.failures);
    }

    #[test]
    fn spice_smoke_passes_on_the_golden_fixtures() {
        let cases = run_spice_smoke(&golden_dir()).expect("smoke run");
        assert_eq!(cases.len(), 4, "{cases:?}");
        for case in &cases {
            assert!(case.identical, "{} responses diverged", case.name);
        }
    }

    #[test]
    fn deck_file_runner_lints_and_simulates_sp_decks() {
        let outcome = run_deck_file(&golden_dir().join("paper_tank.sp")).expect("runs");
        assert_eq!(outcome.report.error_count(), 0);
        let transient = outcome.transient.expect("fixture has .tran");
        assert!(transient.starts_with("transient:"), "{transient}");
    }
}
