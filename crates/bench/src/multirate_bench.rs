//! Deterministic benchmark harness for the PR 9 multi-rate engine.
//!
//! One measurement family, recorded in `BENCH_PR9.json`
//! (`repro --multirate-bench`): every fault in the 11-entry FMEA catalog
//! is run as a long mission profile — settle, inject, then
//! [`MISSION_POST_FAULT_TICKS`] regulation ticks of observation
//! (≥ 100 ms of simulated time on the fast-test configuration) — once
//! pinned to full cycle fidelity and once multi-rate. The discrete
//! outcomes (triggered detector set, trip latencies, code saturation,
//! final DAC code) must be identical per fault. Any divergence is a hard
//! error: the bench refuses to report a speedup for a wrong answer.
//!
//! The ≥ [`GATE_MIN_SPEEDUP`]× wall-clock gate applies to the *headline
//! mission* (`DriverDead`, the paper's motivating scenario: a dead
//! oscillator coasting through a long watchdog horizon), not to the
//! summed catalog. That is deliberate: several catalog faults (shorted
//! turns, pin shorts) leave a post-fault operating point the envelope
//! model cannot represent — a relaxation-style oscillation on an
//! overdamped tank — and for those the hand-off controller correctly
//! *refuses* envelope re-entry and pays full cycle price forever. Gating
//! the sum would reward an engine that fakes envelope speed on faults
//! where the envelope answer is wrong; the identity check plus the
//! headline gate reward the engine for being fast exactly where the
//! approximation is faithful. Per-fault timings are still reported so
//! the cycle-bound faults are visible, not hidden.
//!
//! The `DriverDead` mission additionally runs instrumented to publish the
//! hand-off statistics (mode switches, envelope tick share, bisections)
//! as a [`TraceEvent::SolverStats`] on the bench tracer.

use lcosc_campaign::Json;
use lcosc_core::config::Fidelity;
use lcosc_core::{ClosedLoopSim, ModeStats, OscillatorConfig};
use lcosc_safety::{run_scenario_mission, Fault};
use lcosc_trace::{DetectorId, MemorySink, Trace, TraceEvent};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timing laps per (fault, fidelity); the minimum is reported.
const LAPS: u32 = 2;

/// Post-fault observation horizon of the mission profile, in regulation
/// ticks. At the fast-test 1 ms tick this alone is 260 ms of simulated
/// time — comfortably past the 100 ms mission-profile floor the gate is
/// specified against — and long enough that the quiet post-event tail,
/// not the guard windows, dominates the work.
pub const MISSION_POST_FAULT_TICKS: usize = 260;

/// The headline gate: minimum multi-rate-vs-cycle speedup on the
/// [`HEADLINE_FAULT`] mission.
pub const GATE_MIN_SPEEDUP: f64 = 10.0;

/// The mission the wall-clock gate is measured on. `DriverDead` is the
/// long-horizon scenario the multi-rate engine exists for: one guarded
/// event, then hundreds of quiet envelope-faithful ticks.
pub const HEADLINE_FAULT: Fault = Fault::DriverDead;

/// The discrete outcome of one mission, extracted from the scenario
/// result and its golden trace stream. Two runs of the same fault at
/// different fidelities must produce *equal* values of this struct.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionOutcome {
    /// At least one detector fired.
    pub detected: bool,
    /// The FMEA safety verdict.
    pub safe: bool,
    /// Detectors that fired, in evaluation order.
    pub triggered: Vec<DetectorId>,
    /// Fault-to-evaluation latency of each trip, regulation ticks.
    pub trip_latencies: Vec<(DetectorId, u64)>,
    /// The regulation code was pinned at maximum after the fault.
    pub code_saturated: bool,
    /// Final regulation code (last `CodeStep` of the stream).
    pub final_code: u8,
}

/// One fault's mission, cycle vs multi-rate.
pub struct FaultMission {
    /// Human-readable fault name.
    pub name: String,
    /// Full cycle fidelity, minimum wall-clock over the laps.
    pub cycle_wall: Duration,
    /// Multi-rate, minimum wall-clock over the laps.
    pub multirate_wall: Duration,
    /// The (identical across fidelities and laps) discrete outcome.
    pub outcome: MissionOutcome,
}

impl FaultMission {
    /// Cycle wall divided by multi-rate wall (> 1 means multi-rate wins).
    pub fn speedup(&self) -> f64 {
        self.cycle_wall.as_secs_f64() / self.multirate_wall.as_secs_f64().max(1e-12)
    }
}

/// The full multi-rate benchmark report.
pub struct MultirateBenchReport {
    /// Per-fault missions, catalog order.
    pub missions: Vec<FaultMission>,
    /// Hand-off statistics of the instrumented `DriverDead` mission.
    pub mode_stats: ModeStats,
    /// Whether `LCOSC_FIDELITY` was set, pinning both measurement arms to
    /// the same engine and making the speedup meaningless.
    pub fidelity_hatch: bool,
}

impl MultirateBenchReport {
    /// Summed cycle wall-clock across the catalog.
    pub fn cycle_total(&self) -> Duration {
        self.missions.iter().map(|m| m.cycle_wall).sum()
    }

    /// Summed multi-rate wall-clock across the catalog.
    pub fn multirate_total(&self) -> Duration {
        self.missions.iter().map(|m| m.multirate_wall).sum()
    }

    /// Catalog-level speedup: total cycle wall over total multi-rate
    /// wall. Informational — the cycle-bound faults (see module docs)
    /// keep this well below the headline number by design.
    pub fn catalog_speedup(&self) -> f64 {
        self.cycle_total().as_secs_f64() / self.multirate_total().as_secs_f64().max(1e-12)
    }

    /// The gated [`HEADLINE_FAULT`] mission's row.
    pub fn headline(&self) -> Option<&FaultMission> {
        let name = HEADLINE_FAULT.to_string();
        self.missions.iter().find(|m| m.name == name)
    }

    /// The gated speedup: the [`HEADLINE_FAULT`] mission's cycle wall
    /// over its multi-rate wall (0.0 if the mission is absent).
    pub fn speedup(&self) -> f64 {
        self.headline().map_or(0.0, FaultMission::speedup)
    }

    /// Whether the headline speedup gate holds. Outcome identity is not a
    /// term here because any divergence already failed the bench hard.
    pub fn gate_met(&self) -> bool {
        self.speedup() >= GATE_MIN_SPEEDUP
    }

    /// Renders the report as the `BENCH_PR9.json` document.
    pub fn to_json(&self) -> Json {
        let int = |v: u64| Json::from(i64::try_from(v).unwrap_or(i64::MAX));
        let mission = |m: &FaultMission| {
            Json::obj([
                ("fault", Json::from(m.name.clone())),
                ("cycle_wall_s", Json::from(m.cycle_wall.as_secs_f64())),
                (
                    "multirate_wall_s",
                    Json::from(m.multirate_wall.as_secs_f64()),
                ),
                ("speedup", Json::from(m.speedup())),
                ("detected", Json::from(m.outcome.detected)),
                ("safe", Json::from(m.outcome.safe)),
                (
                    "triggered",
                    Json::Array(
                        m.outcome
                            .triggered
                            .iter()
                            .map(|d| Json::from(d.label()))
                            .collect(),
                    ),
                ),
                (
                    "trip_latency_ticks",
                    Json::Array(
                        m.outcome
                            .trip_latencies
                            .iter()
                            .map(|(d, l)| {
                                Json::obj([("detector", Json::from(d.label())), ("ticks", int(*l))])
                            })
                            .collect(),
                    ),
                ),
                ("code_saturated", Json::from(m.outcome.code_saturated)),
                ("final_code", Json::from(m.outcome.final_code)),
            ])
        };
        Json::obj([
            ("bench", Json::from("pr9_multirate")),
            ("fidelity_hatch", Json::from(self.fidelity_hatch)),
            ("gate_min_speedup", Json::from(GATE_MIN_SPEEDUP)),
            ("gate_met", Json::from(self.gate_met())),
            (
                "mission_post_fault_ticks",
                Json::from(MISSION_POST_FAULT_TICKS),
            ),
            ("catalog_faults", Json::from(self.missions.len())),
            ("headline_fault", Json::from(HEADLINE_FAULT.to_string())),
            ("speedup", Json::from(self.speedup())),
            (
                "cycle_total_s",
                Json::from(self.cycle_total().as_secs_f64()),
            ),
            (
                "multirate_total_s",
                Json::from(self.multirate_total().as_secs_f64()),
            ),
            ("catalog_speedup", Json::from(self.catalog_speedup())),
            ("outcomes_identical", Json::from(true)),
            (
                "mode_stats",
                Json::obj([
                    ("mode_switches", int(self.mode_stats.mode_switches)),
                    ("envelope_ticks", int(self.mode_stats.envelope_ticks)),
                    ("cycle_ticks", int(self.mode_stats.cycle_ticks)),
                    ("bisections", int(self.mode_stats.bisections)),
                    (
                        "envelope_permille",
                        int(self.mode_stats.envelope_permille()),
                    ),
                ]),
            ),
            (
                "missions",
                Json::Array(self.missions.iter().map(mission).collect()),
            ),
        ])
    }
}

/// Runs one mission and extracts its discrete outcome from the trace.
fn run_mission(
    fault: Fault,
    cfg: &OscillatorConfig,
    fidelity: Fidelity,
    post_fault_ticks: usize,
) -> Result<MissionOutcome, String> {
    let sink = Arc::new(MemorySink::new());
    let r = run_scenario_mission(
        fault,
        cfg,
        &Trace::new(sink.clone()),
        fidelity,
        post_fault_ticks,
    )
    .map_err(|e| format!("mission {fault}: {e}"))?;
    let events = sink.snapshot();
    let final_code = events
        .iter()
        .rev()
        .find_map(|e| match e {
            TraceEvent::CodeStep { new, .. } => Some(*new),
            _ => None,
        })
        .ok_or_else(|| format!("mission {fault}: no regulation ticks traced"))?;
    let trip_latencies = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::DetectorTrip {
                detector,
                latency_ticks,
                ..
            } => Some((*detector, *latency_ticks)),
            _ => None,
        })
        .collect();
    Ok(MissionOutcome {
        detected: r.detected,
        safe: r.is_safe(),
        triggered: r
            .triggered
            .iter()
            .map(|&k| lcosc_safety::detector_id(k))
            .collect(),
        trip_latencies,
        code_saturated: r.code_saturated,
        final_code,
    })
}

/// Minimum-of-[`LAPS`] wall-clock of one (fault, fidelity) mission, with
/// the lap outcomes byte-compared (the engines are deterministic; a lap
/// divergence means a reproducibility bug, not noise).
fn time_mission(
    fault: Fault,
    cfg: &OscillatorConfig,
    fidelity: Fidelity,
    post_fault_ticks: usize,
) -> Result<(Duration, MissionOutcome), String> {
    let mut best: Option<(Duration, MissionOutcome)> = None;
    for lap in 0..LAPS {
        let start = Instant::now();
        let outcome = run_mission(fault, cfg, fidelity, post_fault_ticks)?;
        let wall = start.elapsed();
        if let Some((_, first)) = &best {
            if *first != outcome {
                return Err(format!(
                    "mission {fault} ({fidelity:?}): lap {lap} diverged from lap 0"
                ));
            }
        }
        best = match best {
            Some((w, o)) if w <= wall => Some((w, o)),
            _ => Some((wall, outcome)),
        };
    }
    best.ok_or_else(|| "no laps run".to_string())
}

/// The instrumented multi-rate mission the hand-off statistics are taken
/// from: settle, kill both driver stages, observe the long tail.
fn driver_dead_mode_stats(
    cfg: &OscillatorConfig,
    post_fault_ticks: usize,
) -> Result<ModeStats, String> {
    let mut mission_cfg = cfg.clone();
    mission_cfg.fidelity = Fidelity::MultiRate;
    let mut sim =
        ClosedLoopSim::new_unchecked(mission_cfg).map_err(|e| format!("mode-stats sim: {e}"))?;
    sim.run_until_settled()
        .map_err(|e| format!("mode-stats settle: {e}"))?;
    sim.inject_driver_failure();
    sim.run_ticks(post_fault_ticks);
    Ok(sim.mode_stats())
}

fn run_multirate_bench_with(
    tracer: &Trace,
    cfg: &OscillatorConfig,
    post_fault_ticks: usize,
) -> Result<MultirateBenchReport, String> {
    let fidelity_hatch = std::env::var_os("LCOSC_FIDELITY").is_some();

    let mut missions = Vec::new();
    for fault in Fault::catalog() {
        let (cycle_wall, cycle) = time_mission(fault, cfg, Fidelity::Cycle, post_fault_ticks)?;
        let (multirate_wall, multirate) =
            time_mission(fault, cfg, Fidelity::MultiRate, post_fault_ticks)?;
        if cycle != multirate {
            return Err(format!(
                "mission {fault}: multi-rate outcome diverged from full fidelity\n  cycle:      {cycle:?}\n  multi-rate: {multirate:?}"
            ));
        }
        missions.push(FaultMission {
            name: fault.to_string(),
            cycle_wall,
            multirate_wall,
            outcome: cycle,
        });
    }

    let mode_stats = driver_dead_mode_stats(cfg, post_fault_ticks)?;
    tracer.emit(|| TraceEvent::SolverStats {
        steps: mode_stats.envelope_ticks + mode_stats.cycle_ticks,
        newton_iterations: 0,
        factorizations: 0,
        factor_reuses: 0,
        post_warmup_allocations: 0,
        batched_lanes: 0,
        symbolic_analyses: 0,
        symbolic_reuses: 0,
        steps_accepted: 0,
        steps_rejected: 0,
        mode_switches: mode_stats.mode_switches,
        envelope_permille: mode_stats.envelope_permille(),
    });

    Ok(MultirateBenchReport {
        missions,
        mode_stats,
        fidelity_hatch,
    })
}

/// Runs the full multi-rate benchmark: the 11-fault mission catalog at
/// cycle and multi-rate fidelity with hard outcome identity, plus the
/// instrumented hand-off statistics (emitted as
/// [`TraceEvent::SolverStats`] on `tracer`).
///
/// # Errors
///
/// A simulation failure, a lap divergence, or any fault whose multi-rate
/// discrete outcome differs from the full-fidelity reference.
pub fn run_multirate_bench(tracer: &Trace) -> Result<MultirateBenchReport, String> {
    run_multirate_bench_with(
        tracer,
        &OscillatorConfig::fast_test(),
        MISSION_POST_FAULT_TICKS,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mission_profile_clears_the_hundred_millisecond_floor() {
        let cfg = OscillatorConfig::fast_test();
        assert!(
            MISSION_POST_FAULT_TICKS as f64 * cfg.tick_period >= 0.1,
            "the post-fault horizon alone must cover the 100 ms mission floor"
        );
    }

    #[test]
    fn short_bench_reports_identical_outcomes() {
        // A miniature of the real bench: same machinery, a shorter
        // regulation tick (fewer ODE steps per cycle-fidelity tick) and a
        // shorter horizon. Outcome identity and report shape are fully
        // meaningful at any size; only the headline speedup needs the
        // long-tick, long-tail run.
        let mut cfg = OscillatorConfig::fast_test();
        cfg.tick_period = 0.2e-3;
        cfg.detector_tau = 15e-6;
        // `expect` is the identity assertion: any cycle-vs-multi-rate
        // outcome divergence makes the bench return Err.
        let report = run_multirate_bench_with(&Trace::off(), &cfg, 40).expect("bench");
        assert_eq!(report.missions.len(), 11);
        // Safety verdicts at this shortened horizon are mid-transient for
        // the regulable faults, so assert only the hard-kill missions.
        let dead = report.missions.last().expect("catalog is non-empty");
        assert_eq!(dead.name, HEADLINE_FAULT.to_string());
        assert!(
            dead.outcome.detected && dead.outcome.safe,
            "{:?}",
            dead.outcome
        );
        assert!(report.mode_stats.envelope_ticks > 0);
        let json = report.to_json().render_pretty(2);
        for key in [
            "pr9_multirate",
            "fidelity_hatch",
            "gate_min_speedup",
            "gate_met",
            "mission_post_fault_ticks",
            "headline_fault",
            "cycle_total_s",
            "multirate_total_s",
            "catalog_speedup",
            "outcomes_identical",
            "envelope_permille",
            "trip_latency_ticks",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn gate_logic_reads_the_headline_mission_only() {
        let mission = |name: &str, cycle_ms: u64, multirate_ms: u64| FaultMission {
            name: name.to_string(),
            cycle_wall: Duration::from_millis(cycle_ms),
            multirate_wall: Duration::from_millis(multirate_ms),
            outcome: MissionOutcome {
                detected: true,
                safe: true,
                triggered: vec![DetectorId::MissingOscillation],
                trip_latencies: vec![(DetectorId::MissingOscillation, 40)],
                code_saturated: true,
                final_code: 127,
            },
        };
        let headline = HEADLINE_FAULT.to_string();
        let mk = |missions: Vec<FaultMission>| MultirateBenchReport {
            missions,
            mode_stats: ModeStats::default(),
            fidelity_hatch: false,
        };
        // A cycle-bound catalog fault at 1x must not sink the gate...
        let r = mk(vec![
            mission("shorted coil turns", 100, 100),
            mission(&headline, 120, 10),
        ]);
        assert!(r.gate_met());
        assert!(r.catalog_speedup() < GATE_MIN_SPEEDUP);
        // ...and a slow headline must fail it even if the rest is fast.
        let r = mk(vec![
            mission("shorted coil turns", 100, 1),
            mission(&headline, 90, 10),
        ]);
        assert!(!r.gate_met(), "headline speedup gate");
        // No headline mission at all reads as gate not met.
        assert!(!mk(vec![mission("shorted coil turns", 100, 1)]).gate_met());
    }
}
