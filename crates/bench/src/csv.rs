//! Tiny CSV writer for the `repro` binary's artifact output.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Writes rows of `f64` columns with a header to `path` (directories are
/// created as needed).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(
    path: &Path,
    header: &[&str],
    rows: impl IntoIterator<Item = Vec<f64>>,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut body = String::new();
    body.push_str(&header.join(","));
    body.push('\n');
    for row in rows {
        let mut first = true;
        for v in row {
            if !first {
                body.push(',');
            }
            let _ = write!(body, "{v:.9e}");
            first = false;
        }
        body.push('\n');
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let dir = std::env::temp_dir().join("lcosc_csv_test");
        let path = dir.join("t.csv");
        write_csv(&path, &["a", "b"], vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.starts_with("a,b\n"));
        assert_eq!(s.lines().count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
