//! Loopback load driver for the `lcosc-serve` batch simulation service.
//!
//! Starts a real TCP server on `127.0.0.1:0`, drives a fixed batch of 64
//! mixed requests from concurrent closed-loop clients, and measures the
//! cold pass (every request computes) against the warmed pass (every
//! request replays from the content-addressed cache). The run doubles as
//! the serving layer's determinism regression: response sets must be
//! byte-identical across 1-thread and 4-thread servers and across
//! cold/warm passes, and the warmed cache must be reported non-empty —
//! hard errors, not log lines, when violated.

use lcosc_campaign::Json;
use lcosc_serve::{serve_tcp, ServeConfig, ServeEngine};
use lcosc_trace::Trace;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Requests in the benchmark batch.
pub const BATCH: usize = 64;
/// Concurrent closed-loop client connections.
pub const CLIENTS: usize = 8;
/// Warmed-over-cold throughput the serving layer must deliver.
pub const MIN_WARM_SPEEDUP: f64 = 5.0;

/// Latency/throughput summary of one pass over the batch.
#[derive(Debug, Clone, Copy)]
pub struct PassStats {
    /// Wall-clock of the whole pass.
    pub wall: Duration,
    /// Requests per second.
    pub rps: f64,
    /// Median request latency.
    pub p50: Duration,
    /// 99th-percentile request latency.
    pub p99: Duration,
}

impl PassStats {
    fn from_latencies(wall: Duration, latencies: &mut [Duration]) -> PassStats {
        latencies.sort_unstable();
        let pick = |q: f64| {
            if latencies.is_empty() {
                Duration::ZERO
            } else {
                // Nearest-rank: the smallest sample with at least q of the
                // population at or below it.
                let rank = (latencies.len() as f64 * q).ceil() as usize;
                latencies[rank.clamp(1, latencies.len()) - 1]
            }
        };
        PassStats {
            wall,
            rps: latencies.len() as f64 / wall.as_secs_f64().max(1e-9),
            p50: pick(0.50),
            p99: pick(0.99),
        }
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("wall_s", Json::from(self.wall.as_secs_f64())),
            ("requests_per_s", Json::from(self.rps)),
            ("p50_ms", Json::from(self.p50.as_secs_f64() * 1e3)),
            ("p99_ms", Json::from(self.p99.as_secs_f64() * 1e3)),
        ])
    }
}

/// Result of benchmarking one server configuration.
#[derive(Debug, Clone)]
pub struct ServerRun {
    /// Worker threads the server ran with.
    pub threads: usize,
    /// Cold pass (empty cache).
    pub cold: PassStats,
    /// Warmed pass (every request already cached).
    pub warm: PassStats,
    /// Cache hits the server reported after both passes.
    pub cache_hits: u64,
    /// Cache hit rate over both passes.
    pub cache_hit_rate: f64,
    /// Sorted cold-pass response lines (the determinism surface).
    pub responses: Vec<String>,
}

impl ServerRun {
    /// Warmed-over-cold throughput ratio.
    pub fn warm_speedup(&self) -> f64 {
        self.warm.rps / self.cold.rps.max(1e-9)
    }
}

/// The full serve benchmark report.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// One run per server thread count (1 and 4).
    pub servers: Vec<ServerRun>,
}

impl ServeBenchReport {
    /// Renders the `BENCH_PR5.json` payload.
    pub fn to_json(&self) -> Json {
        let servers: Vec<Json> = self
            .servers
            .iter()
            .map(|s| {
                Json::obj([
                    ("threads", Json::from(s.threads)),
                    ("cold", s.cold.to_json()),
                    ("warm", s.warm.to_json()),
                    ("warm_over_cold", Json::from(s.warm_speedup())),
                    ("cache_hits", Json::from(s.cache_hits as i64)),
                    ("cache_hit_rate", Json::from(s.cache_hit_rate)),
                ])
            })
            .collect();
        Json::obj([
            ("bench", Json::from("lcosc-serve loopback load driver")),
            ("requests", Json::from(BATCH)),
            ("clients", Json::from(CLIENTS)),
            ("min_warm_speedup_required", Json::from(MIN_WARM_SPEEDUP)),
            ("servers", Json::Array(servers)),
            (
                "responses_byte_identical_across_thread_counts",
                Json::from(true),
            ),
        ])
    }
}

/// The 64-request mixed batch: the full fault catalog as scenarios,
/// seeded yield campaigns, and RC/RLC transient decks.
pub fn mixed_requests() -> Vec<String> {
    let mut lines = Vec::with_capacity(BATCH);
    let faults = [
        r#""fault":"open_coil""#,
        r#""fault":"coil_short""#,
        r#""fault":"pin_short_gnd","pin":0"#,
        r#""fault":"pin_short_gnd","pin":1"#,
        r#""fault":"pin_short_vdd","pin":0"#,
        r#""fault":"pin_short_vdd","pin":1"#,
        r#""fault":"missing_cap","pin":0"#,
        r#""fault":"missing_cap","pin":1"#,
        r#""fault":"rs_drift","factor":4.0"#,
        r#""fault":"supply_loss""#,
        r#""fault":"driver_dead""#,
    ];
    // 44 scenario requests: the 11-fault catalog, 4 distinct ids each
    // (distinct ids, same cache slot — the cache is content-addressed).
    for round in 0..4 {
        for (i, fault) in faults.iter().enumerate() {
            lines.push(format!(
                r#"{{"id":{},"kind":"scenario",{fault}}}"#,
                100 * round + i
            ));
        }
    }
    // 10 yield campaigns over distinct seeds.
    for seed in 0..10 {
        lines.push(format!(
            r#"{{"id":{},"kind":"campaign","campaign":"yield","dies":24,"seed":{seed},"window":0.1}}"#,
            1000 + seed
        ));
    }
    // 10 RC transients over distinct resistances.
    for k in 0..10 {
        let ohms = 500.0 + 250.0 * f64::from(k);
        lines.push(format!(
            concat!(
                r#"{{"id":{},"kind":"transient","deck":{{"elements":["#,
                r#"{{"kind":"vsource","p":"in","n":"gnd","wave":{{"type":"dc","value":1.0}}}},"#,
                r#"{{"kind":"resistor","a":"in","b":"out","ohms":{}}},"#,
                r#"{{"kind":"capacitor","a":"out","b":"gnd","farads":1e-6}}"#,
                r#"]}},"dt":1e-5,"t_end":2e-3,"record_stride":10}}"#
            ),
            2000 + k,
            ohms
        ));
    }
    assert_eq!(lines.len(), BATCH);
    lines
}

/// Sends `lines` through one connection in closed-loop (send, await
/// response, repeat), returning `(response, latency)` per request.
fn drive_connection(
    addr: std::net::SocketAddr,
    lines: &[String],
) -> Result<Vec<(String, Duration)>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    // Nagle + delayed ACK stall small closed-loop writes by ~40 ms on
    // loopback; disable it so latency measures the server, not the stack.
    stream
        .set_nodelay(true)
        .map_err(|e| format!("nodelay: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut out = Vec::with_capacity(lines.len());
    let mut framed = String::new();
    for line in lines {
        framed.clear();
        framed.push_str(line);
        framed.push('\n');
        let start = Instant::now();
        writer
            .write_all(framed.as_bytes())
            .map_err(|e| format!("write: {e}"))?;
        let mut response = String::new();
        reader
            .read_line(&mut response)
            .map_err(|e| format!("read: {e}"))?;
        let latency = start.elapsed();
        let response = response.trim_end().to_string();
        if response.is_empty() {
            return Err("server closed the connection mid-batch".to_string());
        }
        out.push((response, latency));
    }
    Ok(out)
}

/// Runs one pass of the batch over `CLIENTS` concurrent connections.
fn run_pass(
    addr: std::net::SocketAddr,
    lines: &[String],
) -> Result<(PassStats, Vec<String>), String> {
    let per_client = lines.len().div_ceil(CLIENTS);
    let start = Instant::now();
    let results: Vec<Result<Vec<(String, Duration)>, String>> = thread::scope(|scope| {
        let handles: Vec<_> = lines
            .chunks(per_client)
            .map(|chunk| scope.spawn(move || drive_connection(addr, chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("client thread panicked".to_string()))
            })
            .collect()
    });
    let wall = start.elapsed();
    let mut responses = Vec::with_capacity(lines.len());
    let mut latencies = Vec::with_capacity(lines.len());
    for r in results {
        for (response, latency) in r? {
            responses.push(response);
            latencies.push(latency);
        }
    }
    responses.sort();
    Ok((PassStats::from_latencies(wall, &mut latencies), responses))
}

/// A one-off request on a fresh connection (stats / shutdown plumbing).
fn one_request(addr: std::net::SocketAddr, line: &str) -> Result<String, String> {
    Ok(drive_connection(addr, &[line.to_string()])?.remove(0).0)
}

/// Benchmarks a server with `threads` workers: cold pass, warm pass,
/// cache statistics, clean shutdown.
fn bench_server(threads: usize, lines: &[String]) -> Result<ServerRun, String> {
    let engine = ServeEngine::start(&ServeConfig {
        threads,
        queue_depth: 2 * BATCH,
        cache_entries: 2 * BATCH,
        deadline: Duration::from_secs(120),
        max_line_bytes: 1 << 20,
        trace: Trace::off(),
    });
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?;
    let accept_engine = Arc::clone(&engine);
    let accept = thread::spawn(move || serve_tcp(&accept_engine, &listener));

    let (cold, cold_responses) = run_pass(addr, lines)?;
    let (warm, warm_responses) = run_pass(addr, lines)?;
    if cold_responses != warm_responses {
        return Err(format!(
            "determinism violation: warmed-cache responses differ from cold ({threads} threads)"
        ));
    }
    for r in &cold_responses {
        if !r.contains("\"status\":\"ok\"") {
            return Err(format!("non-ok response in benchmark batch: {r}"));
        }
    }
    let stats_line = one_request(addr, r#"{"id":"stats","kind":"stats"}"#)?;
    let stats = Json::parse(&stats_line).map_err(|e| format!("stats response is not JSON: {e}"))?;
    let cache = stats
        .get("result")
        .and_then(|r| r.get("cache"))
        .cloned()
        .ok_or("stats response lacks cache counters")?;
    let hits = cache.get("hits").and_then(Json::as_int).unwrap_or(0);
    let misses = cache.get("misses").and_then(Json::as_int).unwrap_or(0);
    if hits <= 0 {
        return Err(format!(
            "cache hit-rate is zero after the warmed pass: {stats_line}"
        ));
    }
    let _ = one_request(addr, r#"{"id":"bye","kind":"shutdown"}"#)?;
    accept
        .join()
        .map_err(|_| "accept loop panicked".to_string())
        .and_then(|r| r.map_err(|e| format!("accept loop: {e}")))?;
    engine.shutdown();

    let run = ServerRun {
        threads,
        cold,
        warm,
        cache_hits: hits.max(0) as u64,
        cache_hit_rate: hits as f64 / ((hits + misses) as f64).max(1.0),
        responses: cold_responses,
    };
    if run.warm_speedup() < MIN_WARM_SPEEDUP {
        return Err(format!(
            "cached throughput only {:.2}x cold at {threads} thread(s) (need >= {MIN_WARM_SPEEDUP}x)",
            run.warm_speedup()
        ));
    }
    Ok(run)
}

/// Runs the full benchmark: 1-thread and 4-thread servers over the same
/// batch, with the cross-server byte-compare.
///
/// # Errors
///
/// Any determinism violation, non-ok response, zero cache hit-rate or
/// below-threshold cached speedup is an error (CI fails on it).
pub fn run_serve_bench() -> Result<ServeBenchReport, String> {
    let lines = mixed_requests();
    let mut servers = Vec::new();
    for threads in [1usize, 4] {
        servers.push(bench_server(threads, &lines)?);
    }
    let (a, b) = (&servers[0], &servers[1]);
    if a.responses != b.responses {
        let diverging = a
            .responses
            .iter()
            .zip(&b.responses)
            .find(|(x, y)| x != y)
            .map(|(x, y)| format!("\n  1-thread: {x}\n  4-thread: {y}"))
            .unwrap_or_default();
        return Err(format!(
            "determinism violation: response sets differ between 1 and 4 worker threads{diverging}"
        ));
    }
    Ok(ServeBenchReport { servers })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_is_full_sized_and_parses() {
        let lines = mixed_requests();
        assert_eq!(lines.len(), BATCH);
        for line in &lines {
            let v = Json::parse(line).expect(line);
            lcosc_serve::parse_request(&v).expect(line);
        }
    }

    #[test]
    fn pass_stats_quantiles_are_ordered() {
        let mut lat: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let stats = PassStats::from_latencies(Duration::from_secs(1), &mut lat);
        assert_eq!(stats.p50, Duration::from_millis(50));
        assert_eq!(stats.p99, Duration::from_millis(99));
        assert!((stats.rps - 100.0).abs() < 1e-9);
    }
}
