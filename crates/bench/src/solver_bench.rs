//! Deterministic benchmark harness for the PR 4 transient-solver fast path.
//!
//! Runs a fixed set of transient decks through both solver paths
//! ([`SolverPath::Auto`] and [`SolverPath::Reference`]), hard-fails unless
//! the two produce bit-identical waveforms, and reports wall-clock plus the
//! deterministic [`SolverStats`] counters as a byte-stable-format JSON
//! document (ordered keys, shortest-roundtrip floats — the same renderer as
//! the campaign reports). Only the `wall_s`/`speedup` *values* are
//! machine-dependent; everything else is a pure function of the decks.
//!
//! The headline number, `cycle_fidelity_speedup`, is measured on the
//! paper's §2 tank (L = 25 µH, C1 = C2 = 2 nF, Rs = 15 Ω) ring-down at
//! cycle-fidelity step density (200 steps per carrier cycle, trapezoidal)
//! — the deck shape behind every startup-envelope, Q-sweep and FMEA
//! artifact. The regression trajectory lives in `BENCH_*.json` files at
//! the repository root (`repro --bench-out BENCH_PR4.json`).

use lcosc_campaign::Json;
use lcosc_circuit::{
    run_transient, Integrator, Netlist, SolverPath, SolverStats, TransientOptions, TransientResult,
    Waveform,
};
use lcosc_trace::{Trace, TraceEvent};
use std::time::{Duration, Instant};

/// Timing laps per (case, path); the minimum is reported, which is the
/// standard way to suppress scheduler noise on a shared machine.
const LAPS: u32 = 3;

/// Paper tank parameters (§2 / Table: L = 25 µH, C1 = C2 = 2 nF in series
/// around the loop, Rs = 15 Ω) → f0 ≈ 1.0066 MHz.
const TANK_L: f64 = 25e-6;
const TANK_C: f64 = 2e-9;
const TANK_RS: f64 = 15.0;

/// One benchmark deck plus its run options.
struct BenchCase {
    name: &'static str,
    /// Whether this case is the cycle-fidelity headline measurement.
    headline: bool,
    netlist: Netlist,
    opts: TransientOptions,
}

/// Measured outcome of one case: both paths, their stats, the speedup.
pub struct CaseOutcome {
    /// Case identifier (stable across PRs — the regression key).
    pub name: &'static str,
    /// Whether this case produces the headline `cycle_fidelity_speedup`.
    pub headline: bool,
    /// MNA unknowns of the deck.
    pub unknowns: usize,
    /// Fast-path ([`SolverPath::Auto`]) minimum wall-clock over the laps.
    pub fast_wall: Duration,
    /// Reference-path minimum wall-clock over the laps.
    pub reference_wall: Duration,
    /// Fast-path solver counters.
    pub fast_stats: SolverStats,
    /// Reference-path solver counters.
    pub reference_stats: SolverStats,
}

impl CaseOutcome {
    /// Reference wall-clock divided by fast wall-clock.
    pub fn speedup(&self) -> f64 {
        self.reference_wall.as_secs_f64() / self.fast_wall.as_secs_f64().max(1e-12)
    }
}

/// The full benchmark report.
pub struct SolverBenchReport {
    /// Per-case outcomes in declaration order.
    pub cases: Vec<CaseOutcome>,
}

impl SolverBenchReport {
    /// The headline speedup: the cycle-fidelity tank ring-down case.
    pub fn cycle_fidelity_speedup(&self) -> f64 {
        self.cases
            .iter()
            .find(|c| c.headline)
            .map(CaseOutcome::speedup)
            .unwrap_or(0.0)
    }

    /// Renders the report (plus the campaign speedups measured by the
    /// caller) as the `BENCH_*.json` document.
    pub fn to_json(&self, campaigns: &[(String, Option<f64>)]) -> Json {
        Json::obj([
            ("bench", Json::from("pr4_transient_solver_fast_path")),
            (
                "cycle_fidelity_speedup",
                Json::from(self.cycle_fidelity_speedup()),
            ),
            (
                "cases",
                Json::Array(self.cases.iter().map(case_json).collect()),
            ),
            (
                "campaigns",
                Json::Array(
                    campaigns
                        .iter()
                        .map(|(name, speedup)| {
                            Json::obj([
                                ("name", Json::from(name.clone())),
                                ("speedup_vs_serial", speedup.map_or(Json::Null, Json::from)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn case_json(c: &CaseOutcome) -> Json {
    Json::obj([
        ("name", Json::from(c.name)),
        ("headline", Json::from(c.headline)),
        ("unknowns", Json::from(c.unknowns)),
        ("bit_identical", Json::from(true)),
        ("speedup", Json::from(c.speedup())),
        ("fast_wall_s", Json::from(c.fast_wall.as_secs_f64())),
        (
            "reference_wall_s",
            Json::from(c.reference_wall.as_secs_f64()),
        ),
        ("fast", stats_json(&c.fast_stats)),
        ("reference", stats_json(&c.reference_stats)),
    ])
}

fn stats_json(s: &SolverStats) -> Json {
    let int = |v: u64| Json::from(i64::try_from(v).unwrap_or(i64::MAX));
    Json::obj([
        ("steps", int(s.steps)),
        ("newton_iterations", int(s.newton_iterations)),
        ("factorizations", int(s.factorizations)),
        ("factor_reuses", int(s.factor_reuses)),
        ("allocations", int(s.allocations)),
        ("post_warmup_allocations", int(s.post_warmup_allocations)),
        ("linear_fast_path", Json::from(s.used_linear_fast_path)),
    ])
}

/// The paper tank as a ring-down deck: both loop capacitors precharged to
/// ±1 V, no driver — the same construction the substrate cross-validation
/// tests use.
fn paper_tank() -> Netlist {
    paper_tank_with_lc2().0
}

/// [`paper_tank`] plus the LC2 node id, for decks that attach extra
/// elements to it (`Netlist::node` always mints a fresh node, so the id
/// must be threaded out).
fn paper_tank_with_lc2() -> (Netlist, lcosc_circuit::NodeId) {
    let mut nl = Netlist::new();
    let lc1 = nl.node("lc1");
    let lc2 = nl.node("lc2");
    let mid = nl.node("mid");
    nl.capacitor_ic(lc1, Netlist::GROUND, TANK_C, 1.0);
    nl.capacitor_ic(lc2, Netlist::GROUND, TANK_C, -1.0);
    nl.inductor(lc1, mid, TANK_L);
    nl.resistor(mid, lc2, TANK_RS);
    (nl, lc2)
}

/// Paper-tank resonance, series Ceff = C/2.
fn tank_f0() -> f64 {
    1.0 / (2.0 * std::f64::consts::PI * (TANK_L * TANK_C / 2.0).sqrt())
}

/// A larger linear deck: an `n`-section RC ladder driven by a sine source,
/// exercising the factorization cache where the dense LU actually
/// dominates (MNA size `n + 2`).
fn rc_ladder(n: usize) -> Netlist {
    let mut nl = Netlist::new();
    let vin = nl.node("vin");
    nl.voltage_source(
        vin,
        Netlist::GROUND,
        Waveform::Sine {
            offset: 0.0,
            amplitude: 1.0,
            frequency: 1e6,
            phase: 0.0,
        },
    );
    let mut prev = vin;
    for i in 0..n {
        let node = nl.node(&format!("n{i}"));
        nl.resistor(prev, node, 100.0);
        nl.capacitor(node, Netlist::GROUND, 100e-12);
        prev = node;
    }
    nl
}

/// The nonlinear variant: the tank with a diode clamp across LC2, forcing
/// the per-iteration Newton restamp (the fast path degrades gracefully to
/// workspace reuse only).
fn diode_clamped_tank() -> Netlist {
    let (mut nl, lc2) = paper_tank_with_lc2();
    nl.diode(
        lc2,
        Netlist::GROUND,
        lcosc_device::diode::DiodeModel::default(),
    );
    nl
}

fn cases() -> Vec<BenchCase> {
    let f0 = tank_f0();
    // Cycle fidelity: 200 steps per carrier cycle (OscillatorConfig's
    // steps_per_cycle default), a few hundred cycles of ring-down.
    let dt = 1.0 / (f0 * 200.0);
    let mut trap = TransientOptions::new(dt, 300.0 / f0);
    trap.record_stride = 8;
    let mut be = trap;
    be.integrator = Integrator::BackwardEuler;
    let mut ladder_opts = TransientOptions::new(1e-9, 20e-6);
    ladder_opts.record_stride = 16;
    let mut diode_opts = TransientOptions::new(dt, 60.0 / f0);
    diode_opts.record_stride = 8;
    vec![
        BenchCase {
            name: "tank_ring_down_cycle_trap",
            headline: true,
            netlist: paper_tank(),
            opts: trap,
        },
        BenchCase {
            name: "tank_ring_down_cycle_be",
            headline: false,
            netlist: paper_tank(),
            opts: be,
        },
        BenchCase {
            name: "rc_ladder_32",
            headline: false,
            netlist: rc_ladder(32),
            opts: ladder_opts,
        },
        BenchCase {
            name: "diode_clamped_tank",
            headline: false,
            netlist: diode_clamped_tank(),
            opts: diode_opts,
        },
    ]
}

/// Runs one (deck, options) pair `LAPS` times, returning the minimum
/// wall-clock and the (identical every lap) result.
fn time_path(nl: &Netlist, opts: &TransientOptions) -> Result<(Duration, TransientResult), String> {
    let mut best: Option<(Duration, TransientResult)> = None;
    for _ in 0..LAPS {
        let start = Instant::now();
        let res = run_transient(nl, opts).map_err(|e| format!("{}: {e}", "bench transient"))?;
        let wall = start.elapsed();
        best = match best {
            Some((w, r)) if w <= wall => Some((w, r)),
            _ => Some((wall, res)),
        };
    }
    best.ok_or_else(|| "no laps run".to_string())
}

/// Bitwise equality for f64 slices (NaN-safe, distinguishes signed zeros —
/// stricter than `==`).
pub(crate) fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Runs the full benchmark. Every case runs both solver paths; a bitwise
/// waveform mismatch is a hard error (the bench refuses to report a
/// speedup for a wrong answer). Fast-path solver counters are emitted as
/// [`TraceEvent::SolverStats`] on `tracer`.
///
/// # Errors
///
/// A transient failure or a fast/reference bitwise mismatch, with the case
/// name.
pub fn run_solver_bench(tracer: &Trace) -> Result<SolverBenchReport, String> {
    let mut outcomes = Vec::new();
    for case in cases() {
        let fast_opts = case.opts;
        let mut ref_opts = case.opts;
        ref_opts.solver = SolverPath::Reference;

        let (fast_wall, fast_res) = time_path(&case.netlist, &fast_opts)?;
        let (reference_wall, ref_res) = time_path(&case.netlist, &ref_opts)?;

        if !bits_equal(fast_res.times(), ref_res.times())
            || !bits_equal(fast_res.voltages_flat(), ref_res.voltages_flat())
            || !bits_equal(fast_res.currents_flat(), ref_res.currents_flat())
        {
            return Err(format!(
                "case {}: fast path diverged bitwise from the reference path",
                case.name
            ));
        }

        let s = fast_res.stats();
        tracer.emit(|| TraceEvent::SolverStats {
            steps: s.steps,
            newton_iterations: s.newton_iterations,
            factorizations: s.factorizations,
            factor_reuses: s.factor_reuses,
            post_warmup_allocations: s.post_warmup_allocations,
            batched_lanes: s.batched_lanes,
            symbolic_analyses: s.symbolic_analyses,
            symbolic_reuses: s.symbolic_reuses,
            steps_accepted: s.steps_accepted,
            steps_rejected: s.steps_rejected,
            mode_switches: s.mode_switches,
            envelope_permille: s.envelope_permille,
        });

        outcomes.push(CaseOutcome {
            name: case.name,
            headline: case.headline,
            unknowns: case.netlist.unknown_count(),
            fast_wall,
            reference_wall,
            fast_stats: s,
            reference_stats: ref_res.stats(),
        });
    }
    Ok(SolverBenchReport { cases: outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decks_are_well_formed() {
        assert!(paper_tank().is_linear());
        assert_eq!(paper_tank().unknown_count(), 4);
        assert!(!diode_clamped_tank().is_linear());
        assert!(rc_ladder(8).is_linear());
        assert_eq!(rc_ladder(8).unknown_count(), 10);
        let f0 = tank_f0();
        assert!((f0 / 1.0066e6 - 1.0).abs() < 1e-3, "f0 {f0}");
    }

    #[test]
    fn bits_equal_is_strict() {
        assert!(bits_equal(&[1.0, 0.0], &[1.0, 0.0]));
        assert!(!bits_equal(&[0.0], &[-0.0]));
        assert!(!bits_equal(&[1.0], &[1.0, 2.0]));
        assert!(bits_equal(&[f64::NAN], &[f64::NAN]));
    }

    #[test]
    fn short_bench_runs_and_reports() {
        // A miniature version of the real bench: same machinery, tiny deck.
        let nl = paper_tank();
        let mut opts = TransientOptions::new(1.0 / (tank_f0() * 50.0), 5.0 / tank_f0());
        opts.record_stride = 4;
        let (_, fast) = time_path(&nl, &opts).expect("fast run");
        let mut ref_opts = opts;
        ref_opts.solver = SolverPath::Reference;
        let (_, reference) = time_path(&nl, &ref_opts).expect("reference run");
        assert!(bits_equal(fast.voltages_flat(), reference.voltages_flat()));
        if std::env::var_os("LCOSC_SOLVER").is_some_and(|v| v == "reference") {
            // The escape hatch forces both runs onto the reference path;
            // only the bit-identity above is meaningful then.
            return;
        }
        assert!(fast.stats().used_linear_fast_path);
        assert_eq!(fast.stats().factorizations, 1);
        assert_eq!(fast.stats().post_warmup_allocations, 0);
        assert!(reference.stats().post_warmup_allocations > 0);
    }

    #[test]
    fn report_json_is_ordered_and_complete() {
        let report = SolverBenchReport {
            cases: vec![CaseOutcome {
                name: "case_a",
                headline: true,
                unknowns: 4,
                fast_wall: Duration::from_millis(10),
                reference_wall: Duration::from_millis(40),
                fast_stats: SolverStats::default(),
                reference_stats: SolverStats::default(),
            }],
        };
        assert!((report.cycle_fidelity_speedup() - 4.0).abs() < 1e-12);
        let json = report
            .to_json(&[("fmea".to_string(), Some(2.5))])
            .render_pretty(2);
        for key in [
            "cycle_fidelity_speedup",
            "bit_identical",
            "factor_reuses",
            "post_warmup_allocations",
            "speedup_vs_serial",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
