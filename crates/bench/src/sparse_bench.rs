//! Deterministic benchmark harness for the PR 8 sparse MNA solver.
//!
//! Four measurements, all recorded in `BENCH_PR8.json`
//! (`repro --sparse-bench`):
//!
//! - **ladder gate**: the 1000-node RC ladder solved with the solver
//!   forced dense and forced sparse; the sparse path must be at least
//!   [`GATE_MIN_SPEEDUP`]× faster.
//! - **crossover table**: the same ladder across sizes spanning
//!   [`SPARSE_MIN_UNKNOWNS`], dense vs sparse wall-clock per size plus the
//!   path [`SolverPath::Auto`] actually picked — proving Auto stays dense
//!   below the threshold and goes sparse above it.
//! - **fleet determinism**: a campaign of value-variant coupled sensor
//!   networks (one shared structural digest) run on 1 and 4 worker
//!   threads; every waveform is byte-compared, and the per-job symbolic
//!   counters of the serial run must show the cached analysis being
//!   reused across jobs.
//! - **differential**: every workload deck solved on both paths and
//!   compared within the dense/sparse tolerance band (the two paths use
//!   different elimination orders, so bit-identity is not the contract
//!   there — agreement within rounding is).
//!
//! Any bitwise campaign divergence or out-of-tolerance differential is a
//! hard error: the bench refuses to report a speedup for a wrong answer.

use crate::solver_bench::bits_equal;
use lcosc_campaign::{CampaignBatch, Json};
use lcosc_circuit::workloads::{
    coupled_tank_network, coupled_tank_network_scaled, pad_driver_array, rc_ladder,
};
use lcosc_circuit::{
    run_transient, Netlist, SolverPath, SolverStats, TransientOptions, TransientResult,
    SPARSE_MIN_UNKNOWNS,
};
use lcosc_trace::{Trace, TraceEvent};
use std::time::{Duration, Instant};

/// Timing laps per (deck, path); the minimum is reported.
const LAPS: u32 = 3;

/// Sections in the headline ladder (1000 interior nodes; 1002 unknowns).
const LADDER_SECTIONS: usize = 1000;

/// Ladder sizes of the crossover table, in sections (`unknowns =
/// sections + 2`): three below [`SPARSE_MIN_UNKNOWNS`], one exactly at
/// it, three above.
const CROSSOVER_SECTIONS: [usize; 7] = [16, 30, 46, 62, 78, 126, 254];

/// Jobs in the fleet-determinism campaign.
const FLEET_JOBS: usize = 24;

/// Tanks per fleet deck (96 unknowns — well into sparse territory).
const FLEET_TANKS: usize = 48;

/// The headline gate: minimum sparse-vs-dense speedup on the
/// [`LADDER_SECTIONS`]-node ladder.
pub const GATE_MIN_SPEEDUP: f64 = 5.0;

/// Dense-vs-sparse measurement of one deck size.
pub struct CrossoverPoint {
    /// MNA unknowns of the deck.
    pub unknowns: usize,
    /// Forced-dense run, minimum wall-clock over the laps.
    pub dense_wall: Duration,
    /// Forced-sparse run, minimum wall-clock over the laps.
    pub sparse_wall: Duration,
    /// Whether a [`SolverPath::Auto`] run of this deck took the sparse
    /// path.
    pub auto_used_sparse: bool,
}

impl CrossoverPoint {
    /// Dense wall divided by sparse wall (> 1 means sparse wins).
    pub fn speedup(&self) -> f64 {
        self.dense_wall.as_secs_f64() / self.sparse_wall.as_secs_f64().max(1e-12)
    }
}

/// Outcome of the fleet-determinism campaign.
pub struct FleetOutcome {
    /// Jobs in the campaign.
    pub jobs: usize,
    /// MNA unknowns per deck.
    pub unknowns: usize,
    /// Symbolic analyses across the serial run's jobs.
    pub symbolic_analyses: u64,
    /// Cached-symbolic-analysis reuses across the serial run's jobs.
    pub symbolic_reuses: u64,
}

impl FleetOutcome {
    /// Whether the symbolic cache actually served the campaign: every job
    /// either performed the one analysis or reused it.
    pub fn cache_effective(&self) -> bool {
        self.symbolic_analyses + self.symbolic_reuses == self.jobs as u64
            && self.symbolic_reuses >= self.jobs as u64 - 1
    }
}

/// The full sparse-solver benchmark report.
pub struct SparseBenchReport {
    /// The headline ladder, dense vs sparse.
    pub ladder: CrossoverPoint,
    /// Sparse solver counters of the headline ladder's sparse run.
    pub ladder_stats: SolverStats,
    /// The crossover table, ascending unknown count.
    pub crossover: Vec<CrossoverPoint>,
    /// Whether Auto picked dense below [`SPARSE_MIN_UNKNOWNS`] and sparse
    /// at or above it for every measured size.
    pub auto_policy_ok: bool,
    /// The fleet-determinism campaign.
    pub fleet: FleetOutcome,
    /// Whether `LCOSC_SOLVER` was set, overriding path selection and
    /// making the forced-path measurements meaningless.
    pub solver_hatch: bool,
}

impl SparseBenchReport {
    /// Whether the headline speedup, the Auto policy proof and the
    /// symbolic-cache proof all hold.
    pub fn gate_met(&self) -> bool {
        self.ladder.speedup() >= GATE_MIN_SPEEDUP
            && self.auto_policy_ok
            && self.fleet.cache_effective()
    }

    /// Renders the report as the `BENCH_PR8.json` document.
    pub fn to_json(&self) -> Json {
        let int = |v: u64| Json::from(i64::try_from(v).unwrap_or(i64::MAX));
        let point = |p: &CrossoverPoint| {
            Json::obj([
                ("unknowns", Json::from(p.unknowns)),
                ("dense_wall_s", Json::from(p.dense_wall.as_secs_f64())),
                ("sparse_wall_s", Json::from(p.sparse_wall.as_secs_f64())),
                ("speedup", Json::from(p.speedup())),
                ("auto_used_sparse", Json::from(p.auto_used_sparse)),
            ])
        };
        Json::obj([
            ("bench", Json::from("pr8_sparse_mna")),
            ("solver_hatch", Json::from(self.solver_hatch)),
            ("gate_min_speedup", Json::from(GATE_MIN_SPEEDUP)),
            ("gate_met", Json::from(self.gate_met())),
            ("sparse_min_unknowns", Json::from(SPARSE_MIN_UNKNOWNS)),
            ("ladder", point(&self.ladder)),
            ("ladder_speedup", Json::from(self.ladder.speedup())),
            (
                "ladder_stats",
                Json::obj([
                    ("steps", int(self.ladder_stats.steps)),
                    ("factorizations", int(self.ladder_stats.factorizations)),
                    ("factor_reuses", int(self.ladder_stats.factor_reuses)),
                    (
                        "symbolic_analyses",
                        int(self.ladder_stats.symbolic_analyses),
                    ),
                    ("symbolic_reuses", int(self.ladder_stats.symbolic_reuses)),
                    (
                        "post_warmup_allocations",
                        int(self.ladder_stats.post_warmup_allocations),
                    ),
                ]),
            ),
            ("auto_policy_ok", Json::from(self.auto_policy_ok)),
            (
                "crossover",
                Json::Array(self.crossover.iter().map(point).collect()),
            ),
            (
                "fleet",
                Json::obj([
                    ("jobs", Json::from(self.fleet.jobs)),
                    ("unknowns", Json::from(self.fleet.unknowns)),
                    ("bit_identical_across_threads", Json::from(true)),
                    ("symbolic_analyses", int(self.fleet.symbolic_analyses)),
                    ("symbolic_reuses", int(self.fleet.symbolic_reuses)),
                    ("cache_effective", Json::from(self.fleet.cache_effective())),
                ]),
            ),
            ("differential_within_tolerance", Json::from(true)),
        ])
    }
}

/// Ladder run options: 100 fixed steps regardless of size, so the table
/// compares per-step solve cost at equal step counts.
fn ladder_opts() -> TransientOptions {
    TransientOptions::new(2e-9, 200e-9)
}

/// Minimum-of-[`LAPS`] wall-clock of `nl` under the given forced path,
/// plus the (identical every lap) result.
fn time_path(
    nl: &Netlist,
    opts: &TransientOptions,
    path: SolverPath,
) -> Result<(Duration, TransientResult), String> {
    let mut o = *opts;
    o.solver = path;
    let mut best: Option<(Duration, TransientResult)> = None;
    for _ in 0..LAPS {
        let start = Instant::now();
        let res = run_transient(nl, &o).map_err(|e| format!("transient: {e}"))?;
        let wall = start.elapsed();
        best = match best {
            Some((w, r)) if w <= wall => Some((w, r)),
            _ => Some((wall, res)),
        };
    }
    best.ok_or_else(|| "no laps run".to_string())
}

/// Measures one ladder size dense vs sparse and probes the Auto pick.
fn measure_ladder(sections: usize, solver_hatch: bool) -> Result<CrossoverPoint, String> {
    let nl = rc_ladder(sections);
    let opts = ladder_opts();
    let (dense_wall, dense) = time_path(&nl, &opts, SolverPath::Dense)?;
    let (sparse_wall, sparse) = time_path(&nl, &opts, SolverPath::Sparse)?;
    if !solver_hatch {
        if dense.stats().used_sparse_path || !sparse.stats().used_sparse_path {
            return Err(format!("ladder {sections}: forced paths were not honored"));
        }
        assert_close(&sparse, &dense, &format!("ladder {sections}"))?;
    }
    let mut auto_opts = opts;
    auto_opts.solver = SolverPath::Auto;
    let auto = run_transient(&nl, &auto_opts).map_err(|e| format!("auto transient: {e}"))?;
    Ok(CrossoverPoint {
        unknowns: nl.unknown_count(),
        dense_wall,
        sparse_wall,
        auto_used_sparse: auto.stats().used_sparse_path,
    })
}

/// Dense and sparse share structure and physics but not rounding; compare
/// against the larger of an absolute floor and a relative band.
fn assert_close(a: &TransientResult, b: &TransientResult, label: &str) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!("{label}: sample counts differ"));
    }
    for (x, y) in a
        .voltages_flat()
        .iter()
        .chain(a.currents_flat().iter())
        .zip(b.voltages_flat().iter().chain(b.currents_flat().iter()))
    {
        let tol = 1e-9 + 1e-6 * x.abs().max(y.abs());
        if (x - y).abs() > tol {
            return Err(format!(
                "{label}: sparse diverged from dense beyond tolerance ({x} vs {y})"
            ));
        }
    }
    Ok(())
}

/// Runs the fleet campaign once at `threads` workers, every deck solved
/// per-job under [`SolverPath::Auto`] (which routes them sparse).
fn run_fleet(decks: &[Netlist], threads: usize) -> Result<Vec<TransientResult>, String> {
    let opts = TransientOptions::new(20e-9, 4e-6);
    let outcome = CampaignBatch::new("sensor_fleet", decks.to_vec())
        .threads(threads)
        .solo(true)
        .try_run(Netlist::structural_digest, |_ctxs, unit| {
            unit.iter().map(|d| run_transient(d, &opts)).collect()
        })
        .map_err(|e| format!("fleet campaign: {e}"))?;
    Ok(outcome.results)
}

/// The fleet-determinism campaign: value-variant sensor networks, serial
/// vs 4-thread byte-compare, symbolic-cache accounting from the serial
/// run.
fn run_fleet_campaign(jobs: usize, solver_hatch: bool) -> Result<FleetOutcome, String> {
    let decks: Vec<Netlist> = (0..jobs)
        .map(|k| coupled_tank_network_scaled(FLEET_TANKS, 0.9 + 0.01 * k as f64))
        .collect();
    let serial = run_fleet(&decks, 1)?;
    let threaded = run_fleet(&decks, 4)?;
    for (job, (s, t)) in serial.iter().zip(&threaded).enumerate() {
        if !bits_equal(s.times(), t.times())
            || !bits_equal(s.voltages_flat(), t.voltages_flat())
            || !bits_equal(s.currents_flat(), t.currents_flat())
        {
            return Err(format!(
                "fleet job {job}: sparse waveforms diverged bitwise between 1 and 4 threads"
            ));
        }
    }
    if !solver_hatch {
        for (job, r) in serial.iter().enumerate() {
            if !r.stats().used_sparse_path {
                return Err(format!("fleet job {job}: expected the sparse path"));
            }
        }
    }
    Ok(FleetOutcome {
        jobs,
        unknowns: decks[0].unknown_count(),
        symbolic_analyses: serial.iter().map(|r| r.stats().symbolic_analyses).sum(),
        symbolic_reuses: serial.iter().map(|r| r.stats().symbolic_reuses).sum(),
    })
}

/// Every workload family solved on both paths and compared within
/// tolerance.
fn run_differential() -> Result<(), String> {
    let decks: [(&str, Netlist, TransientOptions); 3] = [
        (
            "rc_ladder_120",
            rc_ladder(120),
            TransientOptions::new(2e-9, 400e-9),
        ),
        (
            "coupled_tanks_40",
            coupled_tank_network(40),
            TransientOptions::new(20e-9, 8e-6),
        ),
        (
            "pad_array_40",
            pad_driver_array(40),
            TransientOptions::new(10e-12, 2e-9),
        ),
    ];
    for (label, nl, opts) in decks {
        let (_, dense) = time_path(&nl, &opts, SolverPath::Dense)?;
        let (_, sparse) = time_path(&nl, &opts, SolverPath::Sparse)?;
        assert_close(&sparse, &dense, label)?;
    }
    Ok(())
}

fn run_sparse_bench_with(
    tracer: &Trace,
    ladder_sections: usize,
    crossover_sections: &[usize],
    fleet_jobs: usize,
) -> Result<SparseBenchReport, String> {
    let solver_hatch = std::env::var_os("LCOSC_SOLVER").is_some();

    let ladder = measure_ladder(ladder_sections, solver_hatch)?;
    let nl = rc_ladder(ladder_sections);
    let opts = ladder_opts();
    let (_, sparse) = time_path(&nl, &opts, SolverPath::Sparse)?;
    let ladder_stats = sparse.stats();
    tracer.emit(|| TraceEvent::SolverStats {
        steps: ladder_stats.steps,
        newton_iterations: ladder_stats.newton_iterations,
        factorizations: ladder_stats.factorizations,
        factor_reuses: ladder_stats.factor_reuses,
        post_warmup_allocations: ladder_stats.post_warmup_allocations,
        batched_lanes: ladder_stats.batched_lanes,
        symbolic_analyses: ladder_stats.symbolic_analyses,
        symbolic_reuses: ladder_stats.symbolic_reuses,
        steps_accepted: ladder_stats.steps_accepted,
        steps_rejected: ladder_stats.steps_rejected,
        mode_switches: ladder_stats.mode_switches,
        envelope_permille: ladder_stats.envelope_permille,
    });

    let mut crossover = Vec::with_capacity(crossover_sections.len());
    for &sections in crossover_sections {
        crossover.push(measure_ladder(sections, solver_hatch)?);
    }
    let auto_policy_ok = solver_hatch
        || crossover
            .iter()
            .chain(std::iter::once(&ladder))
            .all(|p| p.auto_used_sparse == (p.unknowns >= SPARSE_MIN_UNKNOWNS));

    let fleet = run_fleet_campaign(fleet_jobs, solver_hatch)?;
    run_differential()?;

    Ok(SparseBenchReport {
        ladder,
        ladder_stats,
        crossover,
        auto_policy_ok,
        fleet,
        solver_hatch,
    })
}

/// Runs the full sparse-solver benchmark: headline ladder gate, crossover
/// table, fleet thread-determinism byte-compare and dense/sparse
/// differential. The headline sparse run's counters are emitted as
/// [`TraceEvent::SolverStats`] on `tracer`.
///
/// # Errors
///
/// A transient failure, a dishonored forced path, a bitwise thread-count
/// divergence or an out-of-tolerance dense/sparse differential.
pub fn run_sparse_bench(tracer: &Trace) -> Result<SparseBenchReport, String> {
    run_sparse_bench_with(tracer, LADDER_SECTIONS, &CROSSOVER_SECTIONS, FLEET_JOBS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_decks_share_one_digest_with_distinct_values() {
        let decks: Vec<Netlist> = (0..4)
            .map(|k| coupled_tank_network_scaled(FLEET_TANKS, 0.9 + 0.01 * k as f64))
            .collect();
        let digest = decks[0].structural_digest();
        assert!(decks.iter().all(|d| d.structural_digest() == digest));
        assert!((0..decks.len() - 1).any(|i| decks[i] != decks[i + 1]));
    }

    #[test]
    fn crossover_sizes_span_the_threshold() {
        let unknowns: Vec<usize> = CROSSOVER_SECTIONS.iter().map(|s| s + 2).collect();
        assert!(unknowns.iter().any(|&u| u < SPARSE_MIN_UNKNOWNS));
        assert!(unknowns.contains(&SPARSE_MIN_UNKNOWNS));
        assert!(unknowns.iter().any(|&u| u > SPARSE_MIN_UNKNOWNS));
    }

    #[test]
    fn short_bench_reports_and_proves_policy() {
        // A miniature of the real bench: same machinery, smaller ladder
        // and fleet. The policy proof, thread-count byte-compare and
        // differential are fully meaningful at any size; only the
        // headline speedup needs the 1000-node run.
        let report = run_sparse_bench_with(&Trace::off(), 220, &[16, 126], 6).expect("bench");
        assert_eq!(report.crossover.len(), 2);
        if !report.solver_hatch {
            assert!(report.auto_policy_ok);
            assert!(report.fleet.cache_effective());
            assert!(report.ladder_stats.used_sparse_path);
            assert_eq!(report.ladder_stats.factorizations, 1);
        }
        let json = report.to_json().render_pretty(2);
        for key in [
            "pr8_sparse_mna",
            "gate_min_speedup",
            "gate_met",
            "sparse_min_unknowns",
            "ladder_speedup",
            "auto_policy_ok",
            "auto_used_sparse",
            "bit_identical_across_threads",
            "cache_effective",
            "differential_within_tolerance",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn gate_logic_requires_speedup_policy_and_cache() {
        let point = |dense_ms: u64, sparse_ms: u64| CrossoverPoint {
            unknowns: 1002,
            dense_wall: Duration::from_millis(dense_ms),
            sparse_wall: Duration::from_millis(sparse_ms),
            auto_used_sparse: true,
        };
        let mk = |ladder: CrossoverPoint, policy: bool, reuses: u64| SparseBenchReport {
            ladder,
            ladder_stats: SolverStats::default(),
            crossover: Vec::new(),
            auto_policy_ok: policy,
            fleet: FleetOutcome {
                jobs: 4,
                unknowns: 96,
                symbolic_analyses: 4 - reuses.min(4),
                symbolic_reuses: reuses,
            },
            solver_hatch: false,
        };
        assert!(mk(point(60, 10), true, 3).gate_met());
        assert!(!mk(point(40, 10), true, 3).gate_met(), "speedup gate");
        assert!(!mk(point(60, 10), false, 3).gate_met(), "policy gate");
        assert!(!mk(point(60, 10), true, 0).gate_met(), "cache gate");
    }
}
