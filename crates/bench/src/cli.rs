//! Command-line parsing for the `repro` binary.
//!
//! Pure: [`parse_args`] consumes any `String` iterator, so the whole flag
//! surface is unit-testable without spawning the binary, and failures are
//! a typed [`CliError`] rather than a stringly error.

use lcosc_trace::TraceLevel;
use std::fmt;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The `repro --help` text. Every accepted flag is listed here; the unit
/// tests enforce that parser and help stay in sync.
pub const HELP: &str = "repro: regenerate the paper's tables, figures and tracked campaign reports

USAGE:
    repro [OPTIONS]

OPTIONS:
    --threads N          fan campaigns out over N worker threads
                         (0 = all cores; default 1 = serial; results are
                         bit-identical for every N)
    --campaigns-only     run only the tracked campaigns, skip figure CSVs
    --unchecked          skip the static preset checks (fault studies)
    --results-out PATH   deterministic campaign results JSON
                         (default target/repro/campaign_results.json)
    --trace-out PATH     record the instrumented demo + campaign trace here
    --trace-level LEVEL  off | metrics | events (default events)
    --bench-out PATH     run the transient-solver benchmark, write report
    --serve-bench        run the lcosc-serve loopback load driver
                         (cold vs cached throughput, determinism check)
    --serve-bench-out PATH
                         serve benchmark report path (default BENCH_PR5.json)
    --prove-bench        run the static safety prover benchmark
                         (min-of-3 laps per preset, verdict byte-compare)
    --prove-bench-out PATH
                         prover benchmark report path (default BENCH_PR6.json)
    --batch-bench        run the batched campaign-solver benchmark
                         (FMEA + yield deck campaigns, batched vs per-job,
                         bitwise differential, >=4x throughput gate)
    --batch-bench-out PATH
                         batched benchmark report path (default BENCH_PR7.json)
    --sparse-bench       run the sparse MNA solver benchmark
                         (1000-node ladder dense-vs-sparse >=5x gate,
                         crossover table, Auto-policy proof, 1-vs-4-thread
                         sparse campaign byte-compare)
    --sparse-bench-out PATH
                         sparse benchmark report path (default BENCH_PR8.json)
    --multirate-bench    run the multi-rate engine benchmark
                         (11-fault mission catalog, cycle vs multi-rate
                         wall-clock, >=10x gate at identical verdicts,
                         trip latencies and final codes)
    --multirate-bench-out PATH
                         multi-rate benchmark report path
                         (default BENCH_PR9.json)
    --bench-list         list every benchmark, its flag and its report
                         file, then exit
    --fuzz-smoke         run the deterministic three-surface fuzz campaign
                         (.sp text, deck JSON, serve protocol lines)
                         against a live engine, then exit; any panic,
                         hang or unminimized failure is fatal
    --fuzz-seed S        fuzz campaign seed (default 470139102); one seed
                         => one bit-identical report
    --fuzz-cases N       fuzz cases per surface (default 3500, so the
                         default campaign is 10500 cases)
    --fuzz-out PATH      fuzz report JSON path
                         (default target/repro/fuzz_report.json)
    --deck PATH          parse PATH (.sp netlist or JSON deck), run
                         lcosc-check and, when a .tran plan is present
                         and the lint is clean, a transient; then exit
    --spice-smoke DIR    run every .sp fixture in DIR through lcosc-serve
                         as both the spice and the JSON-deck spelling,
                         byte-compare the responses, then exit
    --help               print this help
";

/// One entry of the `repro` benchmark registry: the flag that enables the
/// benchmark, the report file it produces and what it measures. Every
/// `BENCH_PR*.json` producer must be listed here — `--bench-list` renders
/// this table, and the unit tests fail on any drift between the registry,
/// the parser and the help text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchInfo {
    /// Short name of the benchmark.
    pub name: &'static str,
    /// The flag that enables it (`--bench-out` doubles as the report
    /// path for the original solver bench; every later bench pairs a
    /// boolean flag with a `*-out` path flag).
    pub flag: &'static str,
    /// The tracked report file.
    pub report: &'static str,
    /// One-line description.
    pub what: &'static str,
}

/// Every benchmark `repro` can run, in PR order.
pub const BENCHES: &[BenchInfo] = &[
    BenchInfo {
        name: "solver",
        flag: "--bench-out",
        report: "BENCH_PR4.json",
        what: "transient solver fast vs reference path, bit-identity enforced",
    },
    BenchInfo {
        name: "serve",
        flag: "--serve-bench",
        report: "BENCH_PR5.json",
        what: "lcosc-serve loopback load driver, cold vs cached throughput",
    },
    BenchInfo {
        name: "prove",
        flag: "--prove-bench",
        report: "BENCH_PR6.json",
        what: "static safety prover laps, verdict byte-compare",
    },
    BenchInfo {
        name: "batch",
        flag: "--batch-bench",
        report: "BENCH_PR7.json",
        what: "batched campaign solver vs per-job, >=4x throughput gate",
    },
    BenchInfo {
        name: "sparse",
        flag: "--sparse-bench",
        report: "BENCH_PR8.json",
        what: "sparse MNA ladder vs dense, >=5x gate, Auto-policy proof",
    },
    BenchInfo {
        name: "multirate",
        flag: "--multirate-bench",
        report: "BENCH_PR9.json",
        what: "multi-rate mission catalog vs cycle fidelity, >=10x gate",
    },
];

/// Renders the `--bench-list` table.
pub fn render_bench_list() -> String {
    let mut s = String::from("repro benchmarks (flag -> report):\n");
    for b in BENCHES {
        let _ = writeln!(s, "  {:<18} {:<16} {}", b.flag, b.report, b.what);
    }
    s
}

/// Parsed `repro` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// Campaign worker threads (0 = all cores).
    pub threads: usize,
    /// Skip figure CSVs, run only the tracked campaigns.
    pub campaigns_only: bool,
    /// Skip the static preset checks.
    pub unchecked: bool,
    /// Deterministic campaign results JSON path.
    pub results_out: PathBuf,
    /// Structured trace output path, when tracing is requested.
    pub trace_out: Option<PathBuf>,
    /// Trace verbosity.
    pub trace_level: TraceLevel,
    /// Solver benchmark report path, when the benchmark is requested.
    pub bench_out: Option<PathBuf>,
    /// Run the serving-layer load driver.
    pub serve_bench: bool,
    /// Serve benchmark report path.
    pub serve_bench_out: PathBuf,
    /// Run the static safety prover benchmark.
    pub prove_bench: bool,
    /// Prover benchmark report path.
    pub prove_bench_out: PathBuf,
    /// Run the batched campaign-solver benchmark.
    pub batch_bench: bool,
    /// Batched benchmark report path.
    pub batch_bench_out: PathBuf,
    /// Run the sparse MNA solver benchmark.
    pub sparse_bench: bool,
    /// Sparse benchmark report path.
    pub sparse_bench_out: PathBuf,
    /// Run the multi-rate engine benchmark.
    pub multirate_bench: bool,
    /// Multi-rate benchmark report path.
    pub multirate_bench_out: PathBuf,
    /// Run the deterministic fuzz campaign and exit.
    pub fuzz_smoke: bool,
    /// Fuzz campaign seed.
    pub fuzz_seed: u64,
    /// Fuzz cases per input surface.
    pub fuzz_cases: usize,
    /// Fuzz report JSON path.
    pub fuzz_out: PathBuf,
    /// Lint (and simulate) one deck file, then exit.
    pub deck: Option<PathBuf>,
    /// Run the `.sp`-vs-deck serve smoke over a fixture directory, then
    /// exit.
    pub spice_smoke: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            threads: 1,
            campaigns_only: false,
            unchecked: false,
            results_out: PathBuf::from("target/repro/campaign_results.json"),
            trace_out: None,
            trace_level: TraceLevel::Events,
            bench_out: None,
            serve_bench: false,
            serve_bench_out: PathBuf::from("BENCH_PR5.json"),
            prove_bench: false,
            prove_bench_out: PathBuf::from("BENCH_PR6.json"),
            batch_bench: false,
            batch_bench_out: PathBuf::from("BENCH_PR7.json"),
            sparse_bench: false,
            sparse_bench_out: PathBuf::from("BENCH_PR8.json"),
            multirate_bench: false,
            multirate_bench_out: PathBuf::from("BENCH_PR9.json"),
            fuzz_smoke: false,
            fuzz_seed: 0x1c05_c0de,
            fuzz_cases: 3500,
            fuzz_out: PathBuf::from("target/repro/fuzz_report.json"),
            deck: None,
            spice_smoke: None,
        }
    }
}

/// Parse outcome: either run with [`Args`] or print help and exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cli {
    /// `--help` was requested.
    Help,
    /// `--bench-list` was requested.
    BenchList,
    /// Normal run.
    Run(Box<Args>),
}

/// A typed command-line error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// A flag the parser does not know.
    UnknownFlag(String),
    /// A flag that takes a value appeared last.
    MissingValue(&'static str),
    /// A flag value that failed to parse.
    BadValue {
        /// The flag the value belonged to.
        flag: &'static str,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownFlag(flag) => {
                write!(
                    f,
                    "unknown flag {flag:?} (run with --help for the flag list)"
                )
            }
            CliError::MissingValue(flag) => write!(f, "{flag} requires a value"),
            CliError::BadValue { flag, message } => write!(f, "{flag}: {message}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] naming the offending flag or value.
pub fn parse_args(args: impl Iterator<Item = String>) -> Result<Cli, CliError> {
    let mut parsed = Args::default();
    let mut args = args;
    fn next_value(
        args: &mut dyn Iterator<Item = String>,
        flag: &'static str,
    ) -> Result<String, CliError> {
        args.next().ok_or(CliError::MissingValue(flag))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(Cli::Help),
            "--bench-list" => return Ok(Cli::BenchList),
            "--campaigns-only" => parsed.campaigns_only = true,
            "--unchecked" => parsed.unchecked = true,
            "--serve-bench" => parsed.serve_bench = true,
            "--prove-bench" => parsed.prove_bench = true,
            "--batch-bench" => parsed.batch_bench = true,
            "--sparse-bench" => parsed.sparse_bench = true,
            "--multirate-bench" => parsed.multirate_bench = true,
            "--threads" => {
                let v = next_value(&mut args, "--threads")?;
                parsed.threads = v.parse().map_err(|_| CliError::BadValue {
                    flag: "--threads",
                    message: format!("bad thread count {v:?}"),
                })?;
            }
            "--results-out" => {
                parsed.results_out = PathBuf::from(next_value(&mut args, "--results-out")?);
            }
            "--trace-out" => {
                parsed.trace_out = Some(PathBuf::from(next_value(&mut args, "--trace-out")?));
            }
            "--trace-level" => {
                let v = next_value(&mut args, "--trace-level")?;
                parsed.trace_level = TraceLevel::parse(&v).ok_or(CliError::BadValue {
                    flag: "--trace-level",
                    message: format!("bad trace level {v:?} (off|metrics|events)"),
                })?;
            }
            "--bench-out" => {
                parsed.bench_out = Some(PathBuf::from(next_value(&mut args, "--bench-out")?));
            }
            "--serve-bench-out" => {
                parsed.serve_bench_out = PathBuf::from(next_value(&mut args, "--serve-bench-out")?);
            }
            "--prove-bench-out" => {
                parsed.prove_bench_out = PathBuf::from(next_value(&mut args, "--prove-bench-out")?);
            }
            "--batch-bench-out" => {
                parsed.batch_bench_out = PathBuf::from(next_value(&mut args, "--batch-bench-out")?);
            }
            "--sparse-bench-out" => {
                parsed.sparse_bench_out =
                    PathBuf::from(next_value(&mut args, "--sparse-bench-out")?);
            }
            "--multirate-bench-out" => {
                parsed.multirate_bench_out =
                    PathBuf::from(next_value(&mut args, "--multirate-bench-out")?);
            }
            "--fuzz-smoke" => parsed.fuzz_smoke = true,
            "--fuzz-seed" => {
                let v = next_value(&mut args, "--fuzz-seed")?;
                parsed.fuzz_seed = v.parse().map_err(|_| CliError::BadValue {
                    flag: "--fuzz-seed",
                    message: format!("bad seed {v:?}"),
                })?;
            }
            "--fuzz-cases" => {
                let v = next_value(&mut args, "--fuzz-cases")?;
                parsed.fuzz_cases = v.parse().map_err(|_| CliError::BadValue {
                    flag: "--fuzz-cases",
                    message: format!("bad case count {v:?}"),
                })?;
            }
            "--fuzz-out" => {
                parsed.fuzz_out = PathBuf::from(next_value(&mut args, "--fuzz-out")?);
            }
            "--deck" => {
                parsed.deck = Some(PathBuf::from(next_value(&mut args, "--deck")?));
            }
            "--spice-smoke" => {
                parsed.spice_smoke = Some(PathBuf::from(next_value(&mut args, "--spice-smoke")?));
            }
            other => return Err(CliError::UnknownFlag(other.to_string())),
        }
    }
    Ok(Cli::Run(Box::new(parsed)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, CliError> {
        parse_args(args.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn empty_argv_yields_defaults() {
        assert_eq!(parse(&[]), Ok(Cli::Run(Box::default())));
    }

    #[test]
    fn unknown_flag_is_a_typed_error() {
        assert_eq!(
            parse(&["--warp-speed"]),
            Err(CliError::UnknownFlag("--warp-speed".to_string()))
        );
        let rendered = CliError::UnknownFlag("--warp-speed".to_string()).to_string();
        assert!(rendered.contains("--warp-speed"), "{rendered}");
        assert!(rendered.contains("--help"), "{rendered}");
    }

    #[test]
    fn missing_and_malformed_values_are_typed_errors() {
        assert_eq!(
            parse(&["--threads"]),
            Err(CliError::MissingValue("--threads"))
        );
        assert!(matches!(
            parse(&["--threads", "many"]),
            Err(CliError::BadValue {
                flag: "--threads",
                ..
            })
        ));
        assert!(matches!(
            parse(&["--trace-level", "loud"]),
            Err(CliError::BadValue {
                flag: "--trace-level",
                ..
            })
        ));
    }

    #[test]
    fn all_flags_parse_together() {
        let cli = parse(&[
            "--threads",
            "4",
            "--campaigns-only",
            "--unchecked",
            "--results-out",
            "r.json",
            "--trace-out",
            "t.jsonl",
            "--trace-level",
            "metrics",
            "--bench-out",
            "b.json",
            "--serve-bench",
            "--serve-bench-out",
            "s.json",
            "--prove-bench",
            "--prove-bench-out",
            "p.json",
            "--batch-bench",
            "--batch-bench-out",
            "bb.json",
            "--sparse-bench",
            "--sparse-bench-out",
            "sp.json",
            "--multirate-bench",
            "--multirate-bench-out",
            "mr.json",
            "--fuzz-smoke",
            "--fuzz-seed",
            "42",
            "--fuzz-cases",
            "100",
            "--fuzz-out",
            "f.json",
            "--deck",
            "tank.sp",
            "--spice-smoke",
            "fixtures",
        ])
        .expect("all flags are valid");
        let Cli::Run(args) = cli else {
            panic!("expected a run, got {cli:?}");
        };
        assert_eq!(args.threads, 4);
        assert!(args.campaigns_only && args.unchecked && args.serve_bench);
        assert!(args.prove_bench);
        assert!(args.batch_bench);
        assert!(args.sparse_bench);
        assert!(args.multirate_bench);
        assert_eq!(args.results_out, PathBuf::from("r.json"));
        assert_eq!(args.trace_out, Some(PathBuf::from("t.jsonl")));
        assert_eq!(args.trace_level, TraceLevel::Metrics);
        assert_eq!(args.bench_out, Some(PathBuf::from("b.json")));
        assert_eq!(args.serve_bench_out, PathBuf::from("s.json"));
        assert_eq!(args.prove_bench_out, PathBuf::from("p.json"));
        assert_eq!(args.batch_bench_out, PathBuf::from("bb.json"));
        assert_eq!(args.sparse_bench_out, PathBuf::from("sp.json"));
        assert_eq!(args.multirate_bench_out, PathBuf::from("mr.json"));
        assert!(args.fuzz_smoke);
        assert_eq!(args.fuzz_seed, 42);
        assert_eq!(args.fuzz_cases, 100);
        assert_eq!(args.fuzz_out, PathBuf::from("f.json"));
        assert_eq!(args.deck, Some(PathBuf::from("tank.sp")));
        assert_eq!(args.spice_smoke, Some(PathBuf::from("fixtures")));
    }

    #[test]
    fn help_flag_short_circuits() {
        assert_eq!(parse(&["--help"]), Ok(Cli::Help));
        assert_eq!(parse(&["-h", "--warp-speed"]), Ok(Cli::Help));
    }

    #[test]
    fn help_text_names_every_accepted_flag() {
        // Parser and help text must not drift apart: every value-less and
        // valued flag the parser matches appears in HELP.
        for flag in [
            "--threads",
            "--campaigns-only",
            "--unchecked",
            "--results-out",
            "--trace-out",
            "--trace-level",
            "--bench-out",
            "--serve-bench",
            "--serve-bench-out",
            "--prove-bench",
            "--prove-bench-out",
            "--batch-bench",
            "--batch-bench-out",
            "--sparse-bench",
            "--sparse-bench-out",
            "--multirate-bench",
            "--multirate-bench-out",
            "--bench-list",
            "--fuzz-smoke",
            "--fuzz-seed",
            "--fuzz-cases",
            "--fuzz-out",
            "--deck",
            "--spice-smoke",
            "--help",
        ] {
            assert!(HELP.contains(flag), "help text is missing {flag}");
        }
    }

    #[test]
    fn bench_list_flag_short_circuits() {
        assert_eq!(parse(&["--bench-list"]), Ok(Cli::BenchList));
        assert_eq!(parse(&["--bench-list", "--warp-speed"]), Ok(Cli::BenchList));
        let listing = render_bench_list();
        for b in BENCHES {
            assert!(listing.contains(b.flag), "listing is missing {}", b.flag);
            assert!(
                listing.contains(b.report),
                "listing is missing {}",
                b.report
            );
        }
    }

    #[test]
    fn registry_covers_every_bench_producer() {
        // Drift net for the growing `--*-bench` family. (a) Every
        // registry flag is accepted by the parser and documented in HELP.
        for b in BENCHES {
            assert!(
                parse(&[b.flag, "x.json"]).is_ok() || parse(&[b.flag]).is_ok(),
                "parser rejects registry flag {}",
                b.flag
            );
            assert!(
                HELP.contains(b.flag),
                "help is missing registry flag {}",
                b.flag
            );
        }
        // (b) Every boolean `--*-bench` flag the parser knows appears in
        // the registry: harvest candidates from HELP, the single source
        // the parser tests are already synced against.
        let harvested: Vec<&str> = HELP
            .split_whitespace()
            .filter(|w| w.starts_with("--") && w.ends_with("-bench"))
            .collect();
        for flag in harvested {
            assert!(
                BENCHES.iter().any(|b| b.flag == flag),
                "bench flag {flag} is not in the BENCHES registry"
            );
        }
        // (c) Every BENCH_PR*.json report named anywhere in HELP belongs
        // to a registered producer, and the registry stays in PR order
        // with distinct reports.
        for w in HELP.split(|c: char| c.is_whitespace() || c == '(' || c == ')') {
            if w.starts_with("BENCH_PR") {
                assert!(
                    BENCHES.iter().any(|b| b.report == w),
                    "report {w} in HELP has no registry entry"
                );
            }
        }
        let reports: Vec<&str> = BENCHES.iter().map(|b| b.report).collect();
        let mut sorted = reports.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), reports.len(), "duplicate report in registry");
        // (d) Registry defaults match the Args defaults.
        let d = Args::default();
        for (report, path) in [
            ("BENCH_PR5.json", &d.serve_bench_out),
            ("BENCH_PR6.json", &d.prove_bench_out),
            ("BENCH_PR7.json", &d.batch_bench_out),
            ("BENCH_PR8.json", &d.sparse_bench_out),
            ("BENCH_PR9.json", &d.multirate_bench_out),
        ] {
            assert!(BENCHES.iter().any(|b| b.report == report));
            assert_eq!(path, &PathBuf::from(report), "default drifted for {report}");
        }
    }
}
