//! `repro` — regenerates every table and figure of the paper in one run
//! and writes the series as CSV files under `target/repro/`.
//!
//! ```text
//! cargo run --release -p lcosc-bench --bin repro
//! ```

use lcosc_bench::csv::write_csv;
use lcosc_bench::{ablation, figures};
use lcosc_core::OscillatorConfig;
use lcosc_pad::topology::PadTopology;
use lcosc_safety::scenario::check_scenario;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Lint every preset the figures are built on before spending minutes
    // computing them (skippable with --unchecked for fault studies).
    if !std::env::args().any(|a| a == "--unchecked") {
        for (name, cfg) in [
            ("datasheet_3mhz", OscillatorConfig::datasheet_3mhz()),
            ("low_q", OscillatorConfig::low_q()),
            ("fast_test", OscillatorConfig::fast_test()),
        ] {
            let report = check_scenario(&cfg);
            if report.has_errors() {
                eprintln!(
                    "preset {name} fails the static check:\n{}",
                    report.render_human()
                );
                std::process::exit(1);
            }
        }
        println!("static check: all presets clean");
    }

    let out = PathBuf::from("target/repro");
    println!("writing figure data to {}", out.display());

    // Fig 2.
    let fig02 = figures::fig02_driver_iv();
    write_csv(
        &out.join("fig02_driver_iv.csv"),
        &["v", "i"],
        fig02.iter().map(|(v, i)| vec![*v, *i]),
    )?;

    // Fig 3 / Fig 4.
    let fig03 = figures::fig03_transfer();
    write_csv(
        &out.join("fig03_transfer.csv"),
        &["code", "units"],
        fig03.iter().map(|(c, m)| vec![*c as f64, *m as f64]),
    )?;
    let fig04 = figures::fig04_relative_step();
    write_csv(
        &out.join("fig04_relative_step.csv"),
        &["code", "step"],
        fig04
            .iter()
            .filter_map(|(c, s)| s.map(|s| vec![*c as f64, s])),
    )?;

    // Table 1.
    println!("\n{}", figures::table1());
    figures::table1_verify();

    // Fig 13 / Fig 14.
    let fig13 = figures::fig13_measured_current();
    write_csv(
        &out.join("fig13_measured_current.csv"),
        &["code", "amps"],
        fig13.iter().map(|(c, i)| vec![*c as f64, *i]),
    )?;
    let fig14 = figures::fig14_measured_step();
    write_csv(
        &out.join("fig14_measured_step.csv"),
        &["code", "step"],
        fig14
            .iter()
            .filter_map(|(c, s)| s.map(|s| vec![*c as f64, s])),
    )?;

    // Fig 15 / Fig 16.
    let fig15 = figures::fig15_regulation_steps();
    write_csv(
        &out.join("fig15_regulation_steps.csv"),
        &["t", "code", "vpp"],
        fig15.iter().map(|(t, c, v)| vec![*t, *c as f64, *v]),
    )?;
    let fig16 = figures::fig16_startup();
    write_csv(
        &out.join("fig16_startup.csv"),
        &["t", "code", "vpp"],
        fig16.iter().map(|(t, c, v)| vec![*t, *c as f64, *v]),
    )?;

    // Fig 17 / Fig 18, all topologies.
    for topology in PadTopology::ALL {
        let pts = figures::fig17_18_unsupplied(topology);
        let name = match topology {
            PadTopology::PlainCmos => "plain_cmos",
            PadTopology::SeriesPmos => "series_pmos",
            PadTopology::BulkSwitched => "bulk_switched",
        };
        write_csv(
            &out.join(format!("fig17_18_{name}.csv")),
            &["v_diff", "i_loop", "v_lc1", "v_lc2", "v_vdd"],
            pts.iter()
                .map(|p| vec![p.v_diff, p.i_loop, p.v_lc1, p.v_lc2, p.v_vdd]),
        )?;
    }

    // §9 consumption, §7 FMEA, §8 dual.
    let consumption = figures::consumption_vs_q();
    write_csv(
        &out.join("consumption_vs_q.csv"),
        &["q", "supply_a", "code"],
        consumption.iter().map(|(q, i, c)| vec![*q, *i, *c as f64]),
    )?;
    println!("{}", figures::fmea_matrix());
    let dual = figures::dual_redundancy();
    for o in &dual {
        println!(
            "dual {}: vpp {:.3} -> {:.3} (influence {:.2} %)",
            o.partner_topology,
            o.vpp_before,
            o.vpp_after,
            100.0 * o.influence()
        );
    }

    // Ablations.
    let window = ablation::window_width_sweep(&[0.03, 0.05, 0.07, 0.10, 0.15, 0.25]);
    write_csv(
        &out.join("ablation_window.csv"),
        &["window", "activity", "amp_error"],
        window
            .iter()
            .map(|r| vec![r.window, r.activity, r.amplitude_error]),
    )?;
    for r in ablation::dac_law_comparison() {
        println!(
            "dac law {}: operating code {}, step there {:.2} %",
            r.law,
            r.operating_code,
            100.0 * r.worst_step_near_operating
        );
    }

    println!("\nall figures regenerated; see EXPERIMENTS.md for paper-vs-measured notes");
    Ok(())
}
