//! `repro` — regenerates every table and figure of the paper in one run
//! and writes the series as CSV files under `target/repro/`, plus the
//! campaign JSON reports the regression harness tracks.
//!
//! ```text
//! cargo run --release -p lcosc-bench --bin repro -- [--threads N] \
//!     [--campaigns-only] [--results-out PATH] [--unchecked] \
//!     [--trace-out PATH] [--trace-level off|metrics|events] \
//!     [--bench-out PATH] [--serve-bench] [--serve-bench-out PATH]
//! ```
//!
//! Run `repro --help` for the full flag reference (parsing lives in
//! [`lcosc_bench::cli`] where it is unit-tested).
//!
//! - `--threads N` fans the FMEA / Monte-Carlo / sweep campaigns out over
//!   `N` worker threads (`0` = all cores, default `1` = serial). Campaign
//!   *results* are bit-identical for every `N`; only wall-clock changes.
//! - `--campaigns-only` skips the figure CSVs and runs just the campaigns
//!   (the CI equivalence smoke test uses this).
//! - `--results-out PATH` writes the deterministic campaign results JSON
//!   (no timing) to `PATH`, default `target/repro/campaign_results.json`.
//!   Timing statistics go to `target/repro/campaigns.json` separately, so
//!   the results file can be byte-compared across thread counts.
//! - `--trace-out PATH` records a structured trace of a fully-instrumented
//!   demonstration scenario (regulation per-tick stream, fault injection,
//!   detector trips, safe-state reaction) plus the FMEA campaign's job
//!   events. At `--trace-level events` (the default) `PATH` receives the
//!   **golden** JSONL event stream — byte-identical for every `--threads`
//!   value — with machine-dependent job timing quarantined in
//!   `PATH.timing.jsonl` and aggregate metrics in `PATH.metrics.json`. At
//!   `--trace-level metrics` `PATH` receives only the (golden) metrics
//!   JSON, timing in `PATH.timing.json`.
//! - `--bench-out PATH` runs the deterministic transient-solver benchmark
//!   (fast path vs. `LCOSC_SOLVER=reference` path, bit-identity enforced)
//!   and writes the wall-clock/speedup/solver-counter report to `PATH`
//!   (e.g. `BENCH_PR4.json` — the perf regression trajectory).
//! - `--serve-bench` runs the `lcosc-serve` loopback load driver (64 mixed
//!   requests, 1-thread vs 4-thread servers byte-compared, cold vs warmed
//!   cache) and writes the report to `--serve-bench-out` (default
//!   `BENCH_PR5.json`).

use lcosc_bench::cli::{parse_args, render_bench_list, Args, Cli, HELP};
use lcosc_bench::csv::write_csv;
use lcosc_bench::{
    ablation, batch_bench, figures, multirate_bench, prove_bench, serve_bench, sparse_bench,
    spice_smoke,
};
use lcosc_campaign::{CampaignStats, Json};
use lcosc_core::{ClosedLoopSim, OscillatorConfig};
use lcosc_dac::{multiplication_factor, relative_step, Code, DacMismatchParams};
use lcosc_pad::topology::PadTopology;
use lcosc_safety::scenario::check_scenario;
use lcosc_safety::{run_scenario_with_trace, Fault, SafeStateController};
use lcosc_trace::{
    render_jsonl, FanoutSink, MemorySink, MetricsSink, Trace, TraceEvent, TraceLevel,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Monte-Carlo population tracked by the yield campaign report.
const YIELD_DIES: u32 = 200;
/// Seed base of the tracked yield campaign (same as the unit tests).
const YIELD_SEED: u64 = 1;
/// Regulation window of the tracked yield campaign.
const YIELD_WINDOW: f64 = 0.15;

/// The recording half of the trace plumbing: the sinks we need to read
/// back at end of run, behind one fanned-out [`Trace`] handle.
struct TraceCapture {
    events: Arc<MemorySink>,
    metrics: Arc<MetricsSink>,
    tracer: Trace,
}

impl TraceCapture {
    /// Builds the capture for the requested level; `None` when tracing is
    /// disabled (no `--trace-out`, or `--trace-level off`).
    fn from_args(args: &Args) -> Option<TraceCapture> {
        if args.trace_out.is_none() || args.trace_level == TraceLevel::Off {
            return None;
        }
        let events = Arc::new(MemorySink::new());
        let metrics = Arc::new(MetricsSink::new());
        let tracer = Trace::new(Arc::new(FanoutSink::new(vec![
            events.clone() as Arc<dyn lcosc_trace::TraceSink>,
            metrics.clone(),
        ])));
        Some(TraceCapture {
            events,
            metrics,
            tracer,
        })
    }

    /// Writes the recorded streams. The file at `path` is a pure function
    /// of the event sequence (golden); wall-clock data goes to sibling
    /// files only.
    fn write(&self, path: &Path, level: TraceLevel) -> std::io::Result<()> {
        let events = self.events.snapshot();
        let metrics = self.metrics.snapshot();
        match level {
            TraceLevel::Off => {}
            TraceLevel::Events => {
                write_text(path, &render_jsonl(&events, TraceEvent::is_golden))?;
                write_text(
                    &sibling(path, ".timing.jsonl"),
                    &render_jsonl(&events, |e| !e.is_golden()),
                )?;
                write_text(&sibling(path, ".metrics.json"), &metrics.render_json())?;
            }
            TraceLevel::Metrics => {
                write_text(path, &metrics.render_json())?;
                write_text(
                    &sibling(path, ".timing.json"),
                    &metrics.render_timing_json(),
                )?;
            }
        }
        println!(
            "trace -> {} ({} events recorded, golden stream is thread-count invariant)",
            path.display(),
            events.len()
        );
        Ok(())
    }
}

/// `path` with `suffix` appended to its file name (`trace.jsonl` +
/// `.timing.jsonl` → `trace.jsonl.timing.jsonl`).
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(suffix);
    path.with_file_name(name)
}

/// The fully-instrumented serial demonstration the trace file captures:
/// one hard-fault scenario (per-tick regulation stream, fault injection,
/// detector trips) and the safe-state reaction to its detections. Serial
/// by construction, so the emitted events are deterministic.
fn traced_demo(tracer: &Trace) -> Result<(), Box<dyn std::error::Error>> {
    let base = OscillatorConfig::fast_test();
    let outcome = run_scenario_with_trace(Fault::DriverDead, &base, tracer)?;
    let mut sim = ClosedLoopSim::new(base)?.with_trace(tracer.clone());
    sim.run_until_settled()?;
    SafeStateController::new().react_traced(&outcome.triggered, &mut sim, tracer);
    Ok(())
}

/// One tracked campaign: its timing stats and, when the run was parallel,
/// the serial wall-clock measured for the speedup figure.
struct TrackedCampaign {
    stats: CampaignStats,
    serial_wall: Option<Duration>,
}

impl TrackedCampaign {
    fn to_json(&self) -> Json {
        let speedup = self.serial_wall.map(|serial| {
            let par = self.stats.wall.as_secs_f64();
            if par > 0.0 {
                serial.as_secs_f64() / par
            } else {
                1.0
            }
        });
        Json::obj([
            ("name", Json::from(self.stats.name.clone())),
            ("jobs", Json::from(self.stats.jobs)),
            ("threads", Json::from(self.stats.threads)),
            ("wall_s", Json::from(self.stats.wall.as_secs_f64())),
            (
                "serial_wall_s",
                self.serial_wall
                    .map_or(Json::Null, |w| Json::from(w.as_secs_f64())),
            ),
            ("speedup_vs_serial", speedup.map_or(Json::Null, Json::from)),
        ])
    }
}

/// Runs the tracked campaigns (FMEA matrix + DAC yield): deterministic
/// results plus timing. With `threads > 1` each campaign is first run
/// serially to measure the speedup the JSON report tracks (that
/// measurement run is never traced — its job events would duplicate the
/// tracked run's).
fn run_campaigns(threads: usize, tracer: &Trace) -> (Json, Vec<TrackedCampaign>) {
    let mut tracked = Vec::new();

    // §7 FMEA fault×detector matrix.
    let fmea_serial_wall = (threads > 1).then(|| figures::fmea_matrix_threads(1).stats.wall);
    let fmea = figures::fmea_matrix_threads_traced(threads, tracer);
    tracked.push(TrackedCampaign {
        stats: fmea.stats.clone(),
        serial_wall: fmea_serial_wall,
    });

    // §3/Fig 8 Monte-Carlo DAC yield.
    let params = DacMismatchParams::default();
    let yield_serial_wall = (threads > 1).then(|| {
        lcosc_dac::yield_analysis_campaign(&params, YIELD_DIES, YIELD_SEED, YIELD_WINDOW, 1)
            .stats
            .wall
    });
    let yld =
        lcosc_dac::yield_analysis_campaign(&params, YIELD_DIES, YIELD_SEED, YIELD_WINDOW, threads);
    tracked.push(TrackedCampaign {
        stats: yld.stats.clone(),
        serial_wall: yield_serial_wall,
    });

    // Fig 3/Fig 4 + Table 1 DAC transfer, serialized with the campaign
    // results so the golden layer can track the full staircase.
    let transfer: Vec<Json> = Code::all()
        .map(|c| {
            Json::obj([
                ("code", Json::from(c.value())),
                ("units", Json::from(multiplication_factor(c))),
                ("relative_step", Json::from(relative_step(c))),
            ])
        })
        .collect();

    let results = Json::obj([
        ("fmea", fmea.report.to_json()),
        ("dac_yield", yld.report.to_json()),
        ("dac_transfer", Json::Array(transfer)),
    ]);
    (results, tracked)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cli = parse_args(std::env::args().skip(1)).unwrap_or_else(|e| {
        // Display, not the Debug form Box<dyn Error> would print.
        eprintln!("repro: {e}");
        std::process::exit(2);
    });
    let args = match cli {
        Cli::Help => {
            print!("{HELP}");
            return Ok(());
        }
        Cli::BenchList => {
            print!("{}", render_bench_list());
            return Ok(());
        }
        Cli::Run(args) => *args,
    };
    // The `.sp` early-exit modes run before any campaign machinery: they
    // answer one focused question (does this deck lint? do the fixtures
    // agree? does the fuzzer find anything?) and stop.
    if args.deck.is_some() || args.spice_smoke.is_some() || args.fuzz_smoke {
        return run_spice_modes(&args);
    }

    let capture = TraceCapture::from_args(&args);
    let tracer = capture
        .as_ref()
        .map_or_else(Trace::off, |c| c.tracer.clone());

    // Lint every preset the figures are built on before spending minutes
    // computing them (skippable with --unchecked for fault studies).
    if !args.unchecked {
        for (name, cfg) in [
            ("datasheet_3mhz", OscillatorConfig::datasheet_3mhz()),
            ("low_q", OscillatorConfig::low_q()),
            ("fast_test", OscillatorConfig::fast_test()),
        ] {
            let report = check_scenario(&cfg);
            if report.has_errors() {
                eprintln!(
                    "preset {name} fails the static check:\n{}",
                    report.render_human()
                );
                std::process::exit(1);
            }
        }
        println!("static check: all presets clean");
    }

    let out = PathBuf::from("target/repro");
    std::fs::create_dir_all(&out)?;

    // The instrumented demonstration scenario runs first (serially) so the
    // trace leads with the per-tick regulation story before the campaign
    // job events.
    if tracer.is_enabled() {
        traced_demo(&tracer)?;
    }

    // The tracked campaigns always run: their JSON reports are the
    // regression surface BENCH_*.json tracks.
    let (results, tracked) = run_campaigns(args.threads, &tracer);
    write_text(&args.results_out, &results.render_pretty(2))?;
    let stats = Json::obj([
        ("threads_requested", Json::from(args.threads)),
        (
            "campaigns",
            Json::Array(tracked.iter().map(TrackedCampaign::to_json).collect()),
        ),
    ]);
    write_text(&out.join("campaigns.json"), &stats.render_pretty(2))?;
    println!(
        "campaign results -> {} (deterministic), stats -> {}",
        args.results_out.display(),
        out.join("campaigns.json").display()
    );
    for t in &tracked {
        let speedup = t
            .serial_wall
            .map(|s| {
                format!(
                    ", speedup {:.2}x",
                    s.as_secs_f64() / t.stats.wall.as_secs_f64()
                )
            })
            .unwrap_or_default();
        println!(
            "campaign {}: {} jobs on {} thread(s) in {:.1} ms{speedup}",
            t.stats.name,
            t.stats.jobs,
            t.stats.threads,
            t.stats.wall.as_secs_f64() * 1e3,
        );
    }
    // Solver benchmark: fast vs. reference path, bit-identity enforced.
    if let Some(bench_out) = &args.bench_out {
        let report = lcosc_bench::solver_bench::run_solver_bench(&tracer)?;
        let campaigns: Vec<(String, Option<f64>)> = tracked
            .iter()
            .map(|t| {
                let speedup = t.serial_wall.map(|serial| {
                    let par = t.stats.wall.as_secs_f64();
                    if par > 0.0 {
                        serial.as_secs_f64() / par
                    } else {
                        1.0
                    }
                });
                (t.stats.name.clone(), speedup)
            })
            .collect();
        write_text(bench_out, &report.to_json(&campaigns).render_pretty(2))?;
        println!("solver bench -> {}", bench_out.display());
        for c in &report.cases {
            println!(
                "bench {}: {:.1} ms fast vs {:.1} ms reference ({:.2}x, {} unknowns, {} factorization(s), {} reuse(s)){}",
                c.name,
                c.fast_wall.as_secs_f64() * 1e3,
                c.reference_wall.as_secs_f64() * 1e3,
                c.speedup(),
                c.unknowns,
                c.fast_stats.factorizations,
                c.fast_stats.factor_reuses,
                if c.headline { "  [headline]" } else { "" },
            );
        }
        println!(
            "cycle-fidelity speedup: {:.2}x",
            report.cycle_fidelity_speedup()
        );
    }

    // Serving-layer load driver: loopback servers at 1 and 4 worker
    // threads, byte-compared; cold vs warmed-cache throughput tracked.
    if args.serve_bench {
        let report = serve_bench::run_serve_bench()?;
        write_text(&args.serve_bench_out, &report.to_json().render_pretty(2))?;
        println!("serve bench -> {}", args.serve_bench_out.display());
        for s in &report.servers {
            println!(
                "serve {} thread(s): cold {:.0} req/s (p50 {:.2} ms, p99 {:.2} ms), cached {:.0} req/s ({:.1}x, hit rate {:.0} %)",
                s.threads,
                s.cold.rps,
                s.cold.p50.as_secs_f64() * 1e3,
                s.cold.p99.as_secs_f64() * 1e3,
                s.warm.rps,
                s.warm_speedup(),
                100.0 * s.cache_hit_rate,
            );
        }
    }

    // Static safety prover: min-of-3 wall-clock per preset with the
    // verdict byte-compared across laps.
    if args.prove_bench {
        let report = prove_bench::run_prove_bench()?;
        write_text(&args.prove_bench_out, &report.to_json().render_pretty(2))?;
        println!("prove bench -> {}", args.prove_bench_out.display());
        for l in &report.laps {
            println!(
                "prove {}: {:.1} ms, {} obligations proved, {} reachable states / {} transitions",
                l.preset,
                l.wall.as_secs_f64() * 1e3,
                l.obligations,
                l.reach_states,
                l.reach_transitions,
            );
        }
    }

    // Batched campaign solver: FMEA-shaped + yield-shaped deck campaigns,
    // batched vs per-job vs reference, every lane byte-compared, with the
    // >= 4x campaign-throughput gate enforced (unless the reference-solver
    // hatch forced the batch off).
    if args.batch_bench {
        let report = batch_bench::run_batch_bench(&tracer)?;
        write_text(&args.batch_bench_out, &report.to_json().render_pretty(2))?;
        println!("batch bench -> {}", args.batch_bench_out.display());
        for c in &report.campaigns {
            println!(
                "batch {}: {} jobs in {} unit(s), {:.2}x vs reference ({:.2}x vs per-job fast path), batched {:.1} ms",
                c.name,
                c.jobs,
                c.units,
                c.speedup_vs_reference(),
                c.speedup_vs_perjob(),
                c.batched_wall.as_secs_f64() * 1e3,
            );
        }
        if report.solver_hatch {
            println!("batch bench: LCOSC_SOLVER hatch active, gate skipped");
        } else if report.gate_met() {
            println!(
                "batch bench: campaign speedup {:.2}x, gate >= {:.0}x met",
                report.campaign_speedup(),
                batch_bench::GATE_MIN_SPEEDUP,
            );
        } else {
            return Err(format!(
                "batch bench: campaign speedup {:.2}x misses the {:.0}x gate",
                report.campaign_speedup(),
                batch_bench::GATE_MIN_SPEEDUP,
            )
            .into());
        }
    }

    // Sparse MNA solver: 1000-node ladder dense-vs-sparse gate, crossover
    // table with the Auto-policy proof, 1-vs-4-thread sparse campaign
    // byte-compare and the dense/sparse differential.
    if args.sparse_bench {
        let report = sparse_bench::run_sparse_bench(&tracer)?;
        write_text(&args.sparse_bench_out, &report.to_json().render_pretty(2))?;
        println!("sparse bench -> {}", args.sparse_bench_out.display());
        for p in &report.crossover {
            println!(
                "sparse crossover {} unknowns: dense {:.2} ms vs sparse {:.2} ms ({:.2}x, auto picked {})",
                p.unknowns,
                p.dense_wall.as_secs_f64() * 1e3,
                p.sparse_wall.as_secs_f64() * 1e3,
                p.speedup(),
                if p.auto_used_sparse { "sparse" } else { "dense" },
            );
        }
        println!(
            "sparse fleet: {} jobs, {} unknowns, {} symbolic analysis(es) + {} reuse(s), bit-identical across 1 and 4 threads",
            report.fleet.jobs,
            report.fleet.unknowns,
            report.fleet.symbolic_analyses,
            report.fleet.symbolic_reuses,
        );
        if report.solver_hatch {
            println!("sparse bench: LCOSC_SOLVER hatch active, gate skipped");
        } else if report.gate_met() {
            println!(
                "sparse bench: ladder speedup {:.2}x ({} unknowns), gate >= {:.0}x met, auto policy proven",
                report.ladder.speedup(),
                report.ladder.unknowns,
                sparse_bench::GATE_MIN_SPEEDUP,
            );
        } else {
            return Err(format!(
                "sparse bench: ladder speedup {:.2}x (policy ok: {}, cache ok: {}) misses the {:.0}x gate",
                report.ladder.speedup(),
                report.auto_policy_ok,
                report.fleet.cache_effective(),
                sparse_bench::GATE_MIN_SPEEDUP,
            )
            .into());
        }
    }

    // Multi-rate engine: the 11-fault mission catalog at cycle vs
    // multi-rate fidelity, outcome identity enforced per fault, with the
    // >= 10x mission-profile speedup gate (unless the fidelity hatch
    // pinned both arms to one engine).
    if args.multirate_bench {
        let report = multirate_bench::run_multirate_bench(&tracer)?;
        write_text(
            &args.multirate_bench_out,
            &report.to_json().render_pretty(2),
        )?;
        println!("multirate bench -> {}", args.multirate_bench_out.display());
        for m in &report.missions {
            println!(
                "multirate {}: cycle {:.1} ms vs multi-rate {:.1} ms ({:.2}x), final code {}, {}",
                m.name,
                m.cycle_wall.as_secs_f64() * 1e3,
                m.multirate_wall.as_secs_f64() * 1e3,
                m.speedup(),
                m.outcome.final_code,
                if m.outcome.detected {
                    "detected"
                } else {
                    "regulated"
                },
            );
        }
        println!(
            "multirate hand-off: {} switches, {} envelope / {} cycle ticks ({:.1} % envelope), {} bisection(s)",
            report.mode_stats.mode_switches,
            report.mode_stats.envelope_ticks,
            report.mode_stats.cycle_ticks,
            report.mode_stats.envelope_permille() as f64 / 10.0,
            report.mode_stats.bisections,
        );
        println!(
            "multirate catalog: cycle {:.2} s vs multi-rate {:.2} s ({:.2}x, informational)",
            report.cycle_total().as_secs_f64(),
            report.multirate_total().as_secs_f64(),
            report.catalog_speedup(),
        );
        if report.fidelity_hatch {
            println!("multirate bench: LCOSC_FIDELITY hatch active, gate skipped");
        } else if report.gate_met() {
            println!(
                "multirate bench: headline ({}) speedup {:.2}x, gate >= {:.0}x met, outcomes identical",
                multirate_bench::HEADLINE_FAULT,
                report.speedup(),
                multirate_bench::GATE_MIN_SPEEDUP,
            );
        } else {
            return Err(format!(
                "multirate bench: headline ({}) speedup {:.2}x misses the {:.0}x gate",
                multirate_bench::HEADLINE_FAULT,
                report.speedup(),
                multirate_bench::GATE_MIN_SPEEDUP,
            )
            .into());
        }
    }

    if let (Some(capture), Some(path)) = (&capture, &args.trace_out) {
        capture.write(path, args.trace_level)?;
    }

    if args.campaigns_only {
        return Ok(());
    }

    println!("writing figure data to {}", out.display());

    // Fig 2.
    let fig02 = figures::fig02_driver_iv();
    write_csv(
        &out.join("fig02_driver_iv.csv"),
        &["v", "i"],
        fig02.iter().map(|(v, i)| vec![*v, *i]),
    )?;

    // Fig 3 / Fig 4.
    let fig03 = figures::fig03_transfer();
    write_csv(
        &out.join("fig03_transfer.csv"),
        &["code", "units"],
        fig03.iter().map(|(c, m)| vec![*c as f64, *m as f64]),
    )?;
    let fig04 = figures::fig04_relative_step();
    write_csv(
        &out.join("fig04_relative_step.csv"),
        &["code", "step"],
        fig04
            .iter()
            .filter_map(|(c, s)| s.map(|s| vec![*c as f64, s])),
    )?;

    // Table 1.
    println!("\n{}", figures::table1());
    figures::table1_verify();

    // Fig 13 / Fig 14.
    let fig13 = figures::fig13_measured_current();
    write_csv(
        &out.join("fig13_measured_current.csv"),
        &["code", "amps"],
        fig13.iter().map(|(c, i)| vec![*c as f64, *i]),
    )?;
    let fig14 = figures::fig14_measured_step();
    write_csv(
        &out.join("fig14_measured_step.csv"),
        &["code", "step"],
        fig14
            .iter()
            .filter_map(|(c, s)| s.map(|s| vec![*c as f64, s])),
    )?;

    // Fig 15 / Fig 16.
    let fig15 = figures::fig15_regulation_steps();
    write_csv(
        &out.join("fig15_regulation_steps.csv"),
        &["t", "code", "vpp"],
        fig15.iter().map(|(t, c, v)| vec![*t, *c as f64, *v]),
    )?;
    let fig16 = figures::fig16_startup();
    write_csv(
        &out.join("fig16_startup.csv"),
        &["t", "code", "vpp"],
        fig16.iter().map(|(t, c, v)| vec![*t, *c as f64, *v]),
    )?;

    // Fig 17 / Fig 18, all topologies.
    for topology in PadTopology::ALL {
        let pts = figures::fig17_18_unsupplied(topology);
        let name = match topology {
            PadTopology::PlainCmos => "plain_cmos",
            PadTopology::SeriesPmos => "series_pmos",
            PadTopology::BulkSwitched => "bulk_switched",
        };
        write_csv(
            &out.join(format!("fig17_18_{name}.csv")),
            &["v_diff", "i_loop", "v_lc1", "v_lc2", "v_vdd"],
            pts.iter()
                .map(|p| vec![p.v_diff, p.i_loop, p.v_lc1, p.v_lc2, p.v_vdd]),
        )?;
    }

    // §9 consumption, §7 FMEA, §8 dual.
    let consumption = figures::consumption_vs_q_threads(args.threads);
    write_csv(
        &out.join("consumption_vs_q.csv"),
        &["q", "supply_a", "code"],
        consumption.iter().map(|(q, i, c)| vec![*q, *i, *c as f64]),
    )?;
    println!("{}", figures::fmea_matrix_threads(args.threads).report);
    let dual = figures::dual_redundancy_threads(args.threads);
    for o in &dual {
        println!(
            "dual {}: vpp {:.3} -> {:.3} (influence {:.2} %)",
            o.partner_topology,
            o.vpp_before,
            o.vpp_after,
            100.0 * o.influence()
        );
    }

    // Ablations.
    let window =
        ablation::window_width_sweep_threads(&[0.03, 0.05, 0.07, 0.10, 0.15, 0.25], args.threads);
    write_csv(
        &out.join("ablation_window.csv"),
        &["window", "activity", "amp_error"],
        window
            .iter()
            .map(|r| vec![r.window, r.activity, r.amplitude_error]),
    )?;
    for r in ablation::dac_law_comparison() {
        println!(
            "dac law {}: operating code {}, step there {:.2} %",
            r.law,
            r.operating_code,
            100.0 * r.worst_step_near_operating
        );
    }

    println!("\nall figures regenerated; see EXPERIMENTS.md for paper-vs-measured notes");
    Ok(())
}

/// The `.sp` early-exit modes: `--deck`, `--spice-smoke`, `--fuzz-smoke`.
/// Any combination runs in that order; the first failure is fatal.
fn run_spice_modes(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = &args.deck {
        let outcome = spice_smoke::run_deck_file(path)?;
        print!("{}", outcome.report.render_human());
        if let Some(summary) = &outcome.transient {
            println!("{summary}");
        }
        if outcome.report.has_errors() {
            return Err(format!(
                "{}: {} error(s) from lcosc-check",
                path.display(),
                outcome.report.error_count()
            )
            .into());
        }
    }
    if let Some(dir) = &args.spice_smoke {
        let cases = spice_smoke::run_spice_smoke(dir)?;
        for case in &cases {
            println!(
                "spice smoke {}: {}",
                case.name,
                if case.identical {
                    "spice and deck spellings byte-identical"
                } else {
                    "DIVERGED"
                }
            );
        }
        if let Some(bad) = cases.iter().find(|c| !c.identical) {
            return Err(format!("spice smoke: {} responses diverged", bad.name).into());
        }
    }
    if args.fuzz_smoke {
        let cfg = lcosc_spice::FuzzConfig {
            seed: args.fuzz_seed,
            cases_per_surface: args.fuzz_cases,
            step_budget: lcosc_spice::FuzzConfig::default().step_budget,
        };
        let report = spice_smoke::run_fuzz_smoke(&cfg);
        write_text(&args.fuzz_out, &report.to_json(&cfg).render_pretty(2))?;
        println!(
            "fuzz smoke: {} cases ({} per surface), {} accepted, {} typed errors, digest {:016x} -> {}",
            report.cases,
            cfg.cases_per_surface,
            report.accepted,
            report.typed_errors,
            report.digest,
            args.fuzz_out.display(),
        );
        if report.panics > 0 || !report.failures.is_empty() {
            for f in &report.failures {
                eprintln!(
                    "fuzz failure [{} case {}] {}: minimized repro: {:?}",
                    f.surface, f.case, f.what, f.minimized
                );
            }
            return Err(format!(
                "fuzz smoke: {} panic(s), {} failure(s)",
                report.panics,
                report.failures.len()
            )
            .into());
        }
    }
    Ok(())
}

fn write_text(path: &Path, text: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, text)
}
