//! Ablation studies for the design choices the paper motivates:
//!
//! - window width vs the maximum DAC step (§4's anti-hunting rule),
//! - exponential-PWL vs linear DAC law (§3's reason for the exponential),
//! - POR preset code (§4's startup consumption/reliability trade),
//! - driver I–V shape (the k factor of eq 3).

use lcosc_core::config::OscillatorConfig;
use lcosc_core::envelope::EnvelopeModel;
use lcosc_core::gm_driver::{DriverShape, GmDriver};
use lcosc_core::measure::{settling_tick, steady_state_activity};
use lcosc_core::regulator::RegulationFsm;
use lcosc_core::sim::ClosedLoopSim;
use lcosc_dac::Code;
use lcosc_device::comparator::WindowComparator;

/// Outcome of one window-width run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowAblation {
    /// Total relative window width.
    pub window: f64,
    /// Tick at which the code settled (None = regulation oscillates).
    pub settling_tick: Option<usize>,
    /// Mean absolute code activity per tick in steady state.
    pub activity: f64,
    /// Final amplitude error relative to target.
    pub amplitude_error: f64,
}

/// Sweeps the regulation window width. Widths below the maximum DAC step
/// (6.25 %) violate the paper's design rule; the sweep shows the stepping
/// activity exploding there.
///
/// Narrow windows are run through a *raw* loop (FSM + envelope + exact
/// comparator) because [`OscillatorConfig::validate`] rightly refuses them.
pub fn window_width_sweep(widths: &[f64]) -> Vec<WindowAblation> {
    window_width_sweep_threads(widths, 1)
}

/// [`window_width_sweep`] fanned out over `threads` campaign workers
/// (`1` = serial, `0` = all cores); sweep points are independent jobs and
/// the result order is the input order regardless of scheduling.
pub fn window_width_sweep_threads(widths: &[f64], threads: usize) -> Vec<WindowAblation> {
    lcosc_campaign::Campaign::new("ablation-window", widths.to_vec())
        .threads(threads)
        .run(|_ctx, &window| {
            let cfg = OscillatorConfig::datasheet_3mhz();
            let target_peak = cfg.target_peak();
            let comparator = WindowComparator::centered(target_peak, window);
            let mut envelope = EnvelopeModel::new(cfg.tank, GmDriver::new(cfg.driver_shape, 0.0))
                .with_clamp(cfg.rail_clamp());
            let mut fsm = RegulationFsm::new(cfg.nvm_code, cfg.tick_period);
            let mut amp = 1e-3;
            let mut codes = Vec::with_capacity(160);
            for _ in 0..160 {
                let i_max = cfg.dac.current(fsm.code()).value();
                envelope.set_i_max(i_max);
                let weight = lcosc_dac::ControlWord::encode(fsm.code()).gm_weight() as f64;
                if let DriverShape::LinearSaturate { gm } | DriverShape::Tanh { gm } =
                    cfg.driver_shape
                {
                    envelope.set_gm(gm * weight);
                }
                amp = envelope.step(amp, cfg.tick_period);
                fsm.tick(comparator.classify(amp));
                codes.push(fsm.code().value());
            }
            WindowAblation {
                window,
                settling_tick: settling_tick(&codes),
                activity: steady_state_activity(&codes),
                amplitude_error: (amp / target_peak - 1.0).abs(),
            }
        })
        .results
}

/// Outcome of one DAC-law run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DacLawAblation {
    /// Human-readable law name.
    pub law: &'static str,
    /// Code the loop must regulate at on the high-Q datasheet tank.
    pub operating_code: u8,
    /// Worst relative step within ±2 codes of the operating point — the
    /// step the regulation window has to absorb.
    pub worst_step_near_operating: f64,
    /// Ticks to settle from the worst-case start (code 127 on a high-Q
    /// tank that wants a low code); `None` = the loop hunts forever.
    pub settle_from_top: Option<usize>,
    /// Ticks to settle from the bottom (code 1); `None` = hunts forever.
    pub settle_from_bottom: Option<usize>,
}

/// Compares the exponential-PWL law against a plain linear DAC with the
/// same full scale. The linear law's relative step explodes at low codes
/// (where high-Q tanks operate), forcing either hunting or a huge window.
pub fn dac_law_comparison() -> [DacLawAblation; 2] {
    let exponential = |code: Code| lcosc_dac::multiplication_factor(code) as f64;
    let linear = |code: Code| code.value() as f64 * (1984.0 / 127.0);
    [
        run_dac_law("exponential-pwl", exponential),
        run_dac_law("linear", linear),
    ]
}

fn run_dac_law(law: &'static str, units_of: impl Fn(Code) -> f64) -> DacLawAblation {
    use lcosc_core::condition::OscillationCondition;
    use lcosc_num::units::Volts;

    let cfg = OscillatorConfig::datasheet_3mhz();
    let target_peak = cfg.target_peak();
    let comparator = WindowComparator::centered(target_peak, cfg.window_rel_width);

    // Code the loop regulates at on the high-Q tank under this law.
    let needed_units = OscillationCondition::new(cfg.tank)
        .i_max_for_amplitude(Volts(cfg.target_vpp))
        .value()
        / 12.5e-6;
    let operating_code = Code::all()
        .find(|&c| units_of(c) >= needed_units)
        .unwrap_or(Code::MAX);

    // Worst relative step within ±2 codes of the operating point: this is
    // what the window must absorb. The exponential law keeps it below
    // 6.25 % everywhere above code 16 by construction; the linear law's
    // step explodes at the low codes high-Q tanks need.
    let lo = operating_code.value().saturating_sub(2).max(1);
    let hi = (operating_code.value() + 2).min(126);
    let worst_step_near_operating = (lo..=hi)
        .map(|n| {
            let a = units_of(Code::new(n as u32).expect("in range"));
            let b = units_of(Code::new(n as u32 + 1).expect("in range"));
            if a > 0.0 {
                (b - a) / a
            } else {
                f64::INFINITY
            }
        })
        .fold(0.0f64, f64::max);

    let settle_from = |start: Code| {
        let mut envelope = EnvelopeModel::new(cfg.tank, GmDriver::new(cfg.driver_shape, 0.0))
            .with_clamp(cfg.rail_clamp());
        let mut fsm = RegulationFsm::new(start, cfg.tick_period);
        let mut amp = 1e-3;
        let mut codes = Vec::with_capacity(200);
        for _ in 0..200 {
            envelope.set_i_max(units_of(fsm.code()) * 12.5e-6);
            envelope.set_gm(90e-3); // all stages: isolate the DAC-law effect
            amp = envelope.step(amp, cfg.tick_period);
            fsm.tick(comparator.classify(amp));
            codes.push(fsm.code().value());
        }
        settling_tick(&codes)
    };

    DacLawAblation {
        law,
        operating_code: operating_code.value(),
        worst_step_near_operating,
        settle_from_top: settle_from(Code::MAX),
        settle_from_bottom: settle_from(Code::new(1).expect("in range")),
    }
}

/// Outcome of one POR-preset run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StartCodeAblation {
    /// POR preset code under test.
    pub preset: u8,
    /// Startup (inrush) current at the preset, amps.
    pub inrush: f64,
    /// Whether a worst-case (low-Q) tank still starts at this preset.
    pub starts_worst_case_tank: bool,
    /// Ticks to settle on the nominal tank.
    pub settling_tick: Option<usize>,
}

/// Sweeps the POR preset. The paper's 105 is the sweet spot: ≈40 % of the
/// maximum consumption, yet enough drive (5 Gm stages, 800 units) to start
/// the poorest supported tank.
pub fn start_code_sweep(presets: &[u8]) -> Vec<StartCodeAblation> {
    start_code_sweep_threads(presets, 1)
}

/// [`start_code_sweep`] fanned out over `threads` campaign workers
/// (`1` = serial, `0` = all cores).
pub fn start_code_sweep_threads(presets: &[u8], threads: usize) -> Vec<StartCodeAblation> {
    use lcosc_core::condition::OscillationCondition;
    let worst_tank = OscillatorConfig::low_q().tank;
    let worst_crit = OscillationCondition::new(worst_tank).critical_gm();

    lcosc_campaign::Campaign::new("ablation-start-code", presets.to_vec())
        .threads(threads)
        .run(|_ctx, &preset| {
            let code = Code::new(preset as u32).expect("preset in range");
            let inrush = lcosc_dac::multiplication_factor(code) as f64 * 12.5e-6;
            let gm = 10e-3 * lcosc_dac::ControlWord::encode(code).gm_weight() as f64;
            let starts = gm > worst_crit;

            let mut cfg = OscillatorConfig::datasheet_3mhz();
            // Startup entirely on the preset (NVM keeps the same value) to
            // isolate the preset's effect.
            cfg.nvm_code = code;
            let mut sim = ClosedLoopSim::new(cfg).expect("config is valid");
            sim.run_ticks(160);
            StartCodeAblation {
                preset,
                inrush,
                starts_worst_case_tank: starts,
                settling_tick: settling_tick(&sim.trace().codes),
            }
        })
        .results
}

/// Outcome of one driver-shape run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverShapeAblation {
    /// Shape label.
    pub shape: &'static str,
    /// Power factor k at deep limiting (paper eq 3: ≈0.9 for Fig 2).
    pub k_factor: f64,
    /// Steady amplitude for 1 mA limit on the datasheet tank, Vpp.
    pub amplitude_vpp: f64,
}

/// Compares the three driver I–V shapes.
pub fn driver_shape_comparison() -> [DriverShapeAblation; 3] {
    let tank = OscillatorConfig::datasheet_3mhz().tank;
    let shapes: [(&'static str, DriverShape); 3] = [
        ("hard-limit", DriverShape::HardLimit),
        ("linear-saturate", DriverShape::LinearSaturate { gm: 10e-3 }),
        ("tanh", DriverShape::Tanh { gm: 10e-3 }),
    ];
    shapes.map(|(name, shape)| {
        let driver = GmDriver::new(shape, 1e-3);
        let model = EnvelopeModel::new(tank, driver);
        DriverShapeAblation {
            shape: name,
            k_factor: driver.power_factor(2.0),
            amplitude_vpp: 4.0 * model.steady_amplitude(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_window_hunts_wide_window_settles() {
        let runs = window_width_sweep(&[0.03, 0.15]);
        let narrow = &runs[0];
        let wide = &runs[1];
        // Paper §4: a window narrower than the max step causes regulation
        // oscillations — visible as sustained code activity.
        assert!(
            narrow.activity > 0.5,
            "narrow window should hunt: activity {}",
            narrow.activity
        );
        assert!(
            wide.activity < 0.2,
            "wide window should be quiet: activity {}",
            wide.activity
        );
        assert!(wide.settling_tick.is_some());
    }

    #[test]
    fn exponential_law_has_bounded_relative_step() {
        let [expo, linear] = dac_law_comparison();
        // The PWL-exponential keeps the step at the operating point inside
        // the window; the linear law's step there blows past it (the paper's
        // eq 5/6 argument for an exponential current control).
        assert!(
            expo.worst_step_near_operating <= 0.0625 + 1e-9,
            "{}",
            expo.worst_step_near_operating
        );
        assert!(
            linear.worst_step_near_operating > 0.15,
            "{}",
            linear.worst_step_near_operating
        );
        // The exponential loop settles from the worst-case start; the
        // linear one needs a code so low its steps jump the window.
        assert!(expo.settle_from_top.is_some());
        assert!(expo.settle_from_bottom.is_some());
        assert!(expo.operating_code > 16);
        assert!(linear.operating_code < 5, "{}", linear.operating_code);
    }

    #[test]
    fn paper_preset_is_the_sweet_spot() {
        let runs = start_code_sweep(&[64, 90, 105, 127]);
        let at = |p: u8| runs.iter().find(|r| r.preset == p).expect("preset present");
        // 105 starts the worst tank at ~40 % of max inrush.
        assert!(at(105).starts_worst_case_tank);
        assert!(at(105).inrush < 0.45 * at(127).inrush / 0.98);
        // A low preset saves current but cannot start the worst tank.
        assert!(!at(64).starts_worst_case_tank);
        // Everything settles on the nominal tank.
        for r in &runs {
            assert!(
                r.settling_tick.is_some(),
                "preset {} never settled",
                r.preset
            );
        }
    }

    #[test]
    fn k_factor_near_0_9_for_limited_shapes() {
        let shapes = driver_shape_comparison();
        for s in &shapes {
            assert!(
                (s.k_factor - 0.9).abs() < 0.05,
                "{}: k = {}",
                s.shape,
                s.k_factor
            );
            assert!(s.amplitude_vpp > 0.0);
        }
        // Hard limiter delivers the most fundamental current -> largest
        // amplitude at the same I_M.
        assert!(shapes[0].amplitude_vpp >= shapes[2].amplitude_vpp);
    }
}
