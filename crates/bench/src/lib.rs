//! # lcosc-bench — figure/table reproduction harness
//!
//! Data generators for every table and figure of the paper's evaluation,
//! shared between the Criterion benches (`benches/`) and the `repro`
//! binary (`src/bin/repro.rs`). Each generator returns plain data so the
//! benches can both *print* the series (the reproduction) and *time* the
//! computation (the benchmark).

pub mod ablation;
pub mod batch_bench;
pub mod cli;
pub mod csv;
pub mod figures;
pub mod multirate_bench;
pub mod prove_bench;
pub mod serve_bench;
pub mod solver_bench;
pub mod sparse_bench;
pub mod spice_smoke;

pub use figures::*;
