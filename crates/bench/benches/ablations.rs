//! Ablation benches for the design choices DESIGN.md calls out: window
//! width, DAC law, POR preset and driver shape.

use criterion::{criterion_group, criterion_main, Criterion};
use lcosc_bench::ablation;

fn bench_window(c: &mut Criterion) {
    let widths = [0.03, 0.05, 0.07, 0.10, 0.15, 0.25];
    let runs = ablation::window_width_sweep(&widths);
    println!("--- ablation: regulation window width ---");
    println!(
        "{:>8} {:>14} {:>10} {:>12}",
        "window", "settling tick", "activity", "amp error"
    );
    for r in &runs {
        println!(
            "{:>7.0}% {:>14} {:>10.3} {:>11.2}%",
            100.0 * r.window,
            r.settling_tick
                .map(|t| t.to_string())
                .unwrap_or_else(|| "never".into()),
            r.activity,
            100.0 * r.amplitude_error
        );
    }
    println!("rule (paper §4): window must exceed the 6.25 % max step or the loop hunts");

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("ablation_window_width", |b| {
        b.iter(|| ablation::window_width_sweep(&widths));
    });
    g.finish();
}

fn bench_dac_law(c: &mut Criterion) {
    let runs = ablation::dac_law_comparison();
    println!("--- ablation: exponential-PWL vs linear DAC law ---");
    println!(
        "{:<16} {:>9} {:>14} {:>16} {:>18}",
        "law", "op code", "step @ op", "settle from top", "settle from bottom"
    );
    for r in &runs {
        println!(
            "{:<16} {:>9} {:>13.2}% {:>16} {:>18}",
            r.law,
            r.operating_code,
            100.0 * r.worst_step_near_operating,
            r.settle_from_top
                .map(|t| t.to_string())
                .unwrap_or_else(|| "never".into()),
            r.settle_from_bottom
                .map(|t| t.to_string())
                .unwrap_or_else(|| "never".into()),
        );
    }
    println!("a linear voltage step needs an exponential current control (paper eq 5)");

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("ablation_dac_shape", |b| {
        b.iter(ablation::dac_law_comparison);
    });
    g.finish();
}

fn bench_start_code(c: &mut Criterion) {
    let presets = [64u8, 80, 90, 105, 120, 127];
    let runs = ablation::start_code_sweep(&presets);
    println!("--- ablation: POR preset code ---");
    println!(
        "{:>7} {:>12} {:>18} {:>14}",
        "preset", "inrush", "starts worst tank", "settling tick"
    );
    for r in &runs {
        println!(
            "{:>7} {:>9.2} mA {:>18} {:>14}",
            r.preset,
            r.inrush * 1e3,
            r.starts_worst_case_tank,
            r.settling_tick
                .map(|t| t.to_string())
                .unwrap_or_else(|| "never".into())
        );
    }
    println!("paper picks 105: ~40 % of maximum consumption, still starts every tank");

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("ablation_start_code", |b| {
        b.iter(|| ablation::start_code_sweep(&presets));
    });
    g.finish();
}

fn bench_driver_shape(c: &mut Criterion) {
    let runs = ablation::driver_shape_comparison();
    println!("--- ablation: driver I-V shape ---");
    println!("{:<18} {:>8} {:>14}", "shape", "k", "Vpp @ 1 mA");
    for r in &runs {
        println!(
            "{:<18} {:>8.3} {:>13.3}V",
            r.shape, r.k_factor, r.amplitude_vpp
        );
    }
    println!("paper eq 3: k ≈ 0.9 for the linear approximation of Fig 2");

    c.bench_function("ablation_driver_shape", |b| {
        b.iter(ablation::driver_shape_comparison);
    });
}

criterion_group!(
    benches,
    bench_window,
    bench_dac_law,
    bench_start_code,
    bench_driver_shape
);
criterion_main!(benches);
