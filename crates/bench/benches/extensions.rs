//! Extension studies beyond the paper's figures: Monte-Carlo DAC yield,
//! process-corner qualification of the pad isolation, and EMC harmonic
//! analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use lcosc_core::config::OscillatorConfig;
use lcosc_core::emc::analyze_emissions;
use lcosc_core::gm_driver::{DriverShape, GmDriver};
use lcosc_dac::yield_analysis::yield_analysis;
use lcosc_dac::DacMismatchParams;
use lcosc_pad::corners::qualify;
use lcosc_pad::topology::PadTopology;

fn bench_yield(c: &mut Criterion) {
    println!("--- extension: Monte-Carlo DAC yield (200 dies) ---");
    println!(
        "{:>16} {:>12} {:>12} {:>10}",
        "sigma (p/f/u)", "monotonic", "regulable", "worst INL"
    );
    for (sp, sf, su) in [(0.01, 0.008, 0.01), (0.03, 0.025, 0.03), (0.06, 0.05, 0.06)] {
        let params = DacMismatchParams {
            sigma_prescale: sp,
            sigma_fixed: sf,
            sigma_unit: su,
            ..DacMismatchParams::default()
        };
        let r = yield_analysis(&params, 200, 1, 0.15);
        println!(
            "{:>5.1}/{:>4.1}/{:>4.1}% {:>11.1}% {:>11.1}% {:>9.2}%",
            100.0 * sp,
            100.0 * sf,
            100.0 * su,
            100.0 * r.monotonic_yield,
            100.0 * r.regulation_yield,
            100.0 * r.worst_inl
        );
    }
    println!("the regulation criterion keeps yielding after monotonicity collapses (paper §4)");

    let mut g = c.benchmark_group("extension");
    g.sample_size(10);
    g.bench_function("dac_yield_200_dies", |b| {
        b.iter(|| yield_analysis(&DacMismatchParams::default(), 200, 1, 0.15));
    });
    g.finish();
}

fn bench_corners(c: &mut Criterion) {
    println!("--- extension: pad isolation across corners / temperature ---");
    let results = qualify(PadTopology::BulkSwitched).expect("qualification converges");
    println!("{:>7} {:>8} {:>12}", "corner", "temp", "peak |I|");
    for r in &results {
        println!(
            "{:>7} {:>6.0} K {:>9.3} mA",
            r.corner.to_string(),
            r.temp_k,
            r.peak_current * 1e3
        );
    }
    println!("Fig 11 isolation holds at all 15 automotive qualification points");

    let mut g = c.benchmark_group("extension");
    g.sample_size(10);
    g.bench_function("corner_qualification", |b| {
        b.iter(|| qualify(PadTopology::BulkSwitched).expect("converges"));
    });
    g.finish();
}

fn bench_emc(c: &mut Criterion) {
    println!("--- extension: EMC harmonic analysis ---");
    let cfg = OscillatorConfig::datasheet_3mhz();
    println!(
        "{:>18} {:>13} {:>13} {:>10}",
        "driver shape", "current THD", "voltage THD", "cleanup"
    );
    for (name, shape) in [
        ("hard-limit", DriverShape::HardLimit),
        ("linear-saturate", DriverShape::LinearSaturate { gm: 10e-3 }),
        ("tanh", DriverShape::Tanh { gm: 10e-3 }),
    ] {
        let r = analyze_emissions(cfg.tank, GmDriver::new(shape, 0.5e-3), cfg.vref);
        println!(
            "{:>18} {:>12.1}% {:>12.2}% {:>9.1}x",
            name,
            100.0 * r.current_thd,
            100.0 * r.voltage_thd,
            r.filtering_gain
        );
    }
    println!("the tank filters the clipped drive: pin-voltage harmonics stay low (abstract)");

    let mut g = c.benchmark_group("extension");
    g.sample_size(10);
    g.bench_function("emc_analysis", |b| {
        b.iter(|| {
            analyze_emissions(
                cfg.tank,
                GmDriver::new(DriverShape::LinearSaturate { gm: 10e-3 }, 0.5e-3),
                cfg.vref,
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench_yield, bench_corners, bench_emc);
criterion_main!(benches);
