//! Reproduces and times the DAC-level figures and table:
//! Fig 2 (driver I–V), Fig 3 (multiplication factor), Fig 4 (relative
//! step), Table 1 (control coding), Fig 13 (measured current limitation)
//! and Fig 14 (measured relative step).

use criterion::{criterion_group, criterion_main, Criterion};
use lcosc_bench::figures;

fn print_series_f64(name: &str, pts: &[(u8, f64)], every: usize) {
    println!("--- {name} ---");
    for (code, v) in pts.iter().step_by(every) {
        println!("{code:>4} {v:>14.6e}");
    }
}

fn bench_fig02(c: &mut Criterion) {
    let pts = figures::fig02_driver_iv();
    println!("--- Fig 2: driver static I-V (V, A) ---");
    for (v, i) in pts.iter().step_by(10) {
        println!("{v:>7.2} {i:>12.4e}");
    }
    c.bench_function("fig02_driver_iv", |b| b.iter(figures::fig02_driver_iv));
}

fn bench_fig03(c: &mut Criterion) {
    let pts = figures::fig03_transfer();
    println!("--- Fig 3: multiplication factor Mn (code, units) ---");
    for (code, m) in pts.iter().step_by(8) {
        println!("{code:>4} {m:>6}");
    }
    println!("full scale: {} units (paper: 1984)", pts[127].1);
    c.bench_function("fig03_dac_transfer", |b| b.iter(figures::fig03_transfer));
}

fn bench_fig04(c: &mut Criterion) {
    let pts = figures::fig04_relative_step();
    let band: Vec<f64> = pts
        .iter()
        .filter(|(code, s)| *code >= 16 && s.is_some())
        .map(|(_, s)| s.expect("filtered"))
        .collect();
    let min = band.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = band.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("--- Fig 4: relative voltage step ---");
    println!(
        "band above code 16: {:.2} % .. {:.2} % (paper: 3.23 % .. 6.25 %)",
        100.0 * min,
        100.0 * max
    );
    c.bench_function("fig04_relative_step", |b| {
        b.iter(figures::fig04_relative_step);
    });
}

fn bench_table1(c: &mut Criterion) {
    println!("--- Table 1: control signal coding ---");
    println!("{}", figures::table1());
    c.bench_function("table1_control_coding", |b| b.iter(figures::table1_verify));
}

fn bench_fig13(c: &mut Criterion) {
    let pts = figures::fig13_measured_current();
    print_series_f64("Fig 13: measured current limitation (code, A)", &pts, 8);
    println!(
        "full scale {:.3} mA (paper: ~24.8 mA at 12.5 uA/LSB)",
        pts[127].1 * 1e3
    );
    c.bench_function("fig13_current_limit", |b| {
        b.iter(figures::fig13_measured_current);
    });
}

fn bench_fig14(c: &mut Criterion) {
    let pts = figures::fig14_measured_step();
    println!("--- Fig 14: measured relative step (code, step) ---");
    for (code, s) in &pts {
        if let Some(s) = s {
            if *s < 0.0 || code % 16 == 0 {
                println!(
                    "{code:>4} {:>9.4} {}",
                    s,
                    if *s < 0.0 {
                        "<-- negative (non-monotonic)"
                    } else {
                        ""
                    }
                );
            }
        }
    }
    c.bench_function("fig14_measured_step", |b| {
        b.iter(figures::fig14_measured_step);
    });
}

criterion_group!(
    benches,
    bench_fig02,
    bench_fig03,
    bench_fig04,
    bench_table1,
    bench_fig13,
    bench_fig14
);
criterion_main!(benches);
