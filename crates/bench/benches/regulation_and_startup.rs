//! Reproduces and times the closed-loop figures: Fig 15 (regulation steps
//! detail) and Fig 16 (oscillator startup).

use criterion::{criterion_group, criterion_main, Criterion};
use lcosc_bench::figures;

fn bench_fig15(c: &mut Criterion) {
    let pts = figures::fig15_regulation_steps();
    println!("--- Fig 15: regulation steps detail (t, code, Vpp) ---");
    for (t, code, vpp) in &pts {
        println!("{:>9.4} ms {:>5} {:>8.3} V", t * 1e3, code, vpp);
    }
    let codes: Vec<u8> = pts.iter().map(|p| p.1).collect();
    let span = codes.iter().max().expect("non-empty") - codes.iter().min().expect("non-empty");
    println!("code span over the disturbance: {span} counts (discrete +/-1 steps)");

    let mut g = c.benchmark_group("closed_loop");
    g.sample_size(10);
    g.bench_function("fig15_regulation_steps", |b| {
        b.iter(figures::fig15_regulation_steps);
    });
    g.finish();
}

fn bench_fig16(c: &mut Criterion) {
    let pts = figures::fig16_startup();
    println!("--- Fig 16: oscillator startup (t, code, Vpp) ---");
    for (t, code, vpp) in pts.iter().step_by(4) {
        println!("{:>9.4} ms {:>5} {:>8.3} V", t * 1e3, code, vpp);
    }
    let last = pts.last().expect("non-empty");
    println!(
        "settled at {:.3} Vpp; POR preset 105 -> NVM -> regulation, as in the paper",
        last.2
    );

    let mut g = c.benchmark_group("closed_loop");
    g.sample_size(10);
    g.bench_function("fig16_startup", |b| b.iter(figures::fig16_startup));
    g.finish();
}

criterion_group!(benches, bench_fig15, bench_fig16);
criterion_main!(benches);
