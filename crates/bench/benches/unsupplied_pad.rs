//! Reproduces and times Fig 17 (pin current with Vdd floating) and Fig 18
//! (pin/rail voltages with Vdd floating), for all three pad topologies.

use criterion::{criterion_group, criterion_main, Criterion};
use lcosc_bench::figures;
use lcosc_pad::topology::PadTopology;
use lcosc_pad::unsupplied::UnsuppliedBench;

fn bench_fig17(c: &mut Criterion) {
    println!("--- Fig 17: current through LC1,2 with Vdd floating ---");
    for topology in PadTopology::ALL {
        let pts = figures::fig17_18_unsupplied(topology);
        let peak = UnsuppliedBench::peak_current(&pts);
        println!("\n{topology}: peak |I| = {:.3} mA", peak * 1e3);
        println!("{:>8} {:>12}", "V diff", "I loop");
        for p in pts.iter().step_by(6) {
            println!("{:>7.2}V {:>10.4e}A", p.v_diff, p.i_loop);
        }
    }
    println!("\npaper (Fig 11 stage): |I| < ~0.8 mA over +/-3 V; Fig 10a loads heavily");

    let mut g = c.benchmark_group("pad_dc");
    g.sample_size(10);
    g.bench_function("fig17_unsupplied_current", |b| {
        b.iter(|| figures::fig17_18_unsupplied(PadTopology::BulkSwitched));
    });
    g.finish();
}

fn bench_fig18(c: &mut Criterion) {
    let pts = figures::fig17_18_unsupplied(PadTopology::BulkSwitched);
    println!("--- Fig 18: voltages on LC1, LC2 and Vdd (bulk-switched) ---");
    println!("{:>8} {:>9} {:>9} {:>9}", "V diff", "LC1", "LC2", "Vdd");
    for p in pts.iter().step_by(4) {
        println!(
            "{:>7.2}V {:>8.3}V {:>8.3}V {:>8.3}V",
            p.v_diff, p.v_lc1, p.v_lc2, p.v_vdd
        );
    }
    println!("shape check: the high pin clamps one junction above the pumped rail,");
    println!("the low pin follows the source; Vdd rises symmetrically with |V|.");

    let mut g = c.benchmark_group("pad_dc");
    g.sample_size(10);
    g.bench_function("fig18_unsupplied_voltage", |b| {
        b.iter(|| figures::fig17_18_unsupplied(PadTopology::PlainCmos));
    });
    g.finish();
}

criterion_group!(benches, bench_fig17, bench_fig18);
criterion_main!(benches);
