//! Substrate performance benches: how fast the simulators themselves are
//! (cycle-accurate ODE stepping, MNA DC solves, envelope ticks, DAC
//! encoding). These guard against performance regressions in the layers
//! every figure depends on.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lcosc_core::config::OscillatorConfig;
use lcosc_core::envelope::EnvelopeModel;
use lcosc_core::gm_driver::{DriverShape, GmDriver};
use lcosc_core::oscillator::{OscillatorModel, OscillatorState};
use lcosc_dac::{Code, ControlWord};

fn bench_ode_throughput(c: &mut Criterion) {
    let cfg = OscillatorConfig::datasheet_3mhz();
    let driver = GmDriver::new(DriverShape::LinearSaturate { gm: 10e-3 }, 1e-3);
    let model = OscillatorModel::new(cfg.tank, driver, cfg.vref).with_rails(cfg.vdd);
    let dt = cfg.dt();
    let mut g = c.benchmark_group("substrate");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("oscillator_ode_1k_steps", |b| {
        b.iter(|| {
            let mut state = OscillatorState::at_rest(cfg.vref);
            let mut scratch = vec![0.0; 15];
            for _ in 0..1000 {
                model.step(&mut state, dt, &mut scratch);
            }
            black_box(state.v_diff())
        });
    });
    g.finish();
}

fn bench_dc_solve(c: &mut Criterion) {
    use lcosc_circuit::analysis::dc::solve_dc;
    use lcosc_circuit::netlist::{Netlist, Waveform};
    use lcosc_pad::topology::{PadDriver, PadTopology};

    c.bench_function("pad_dc_operating_point", |b| {
        b.iter(|| {
            let mut nl = Netlist::new();
            let lcx = nl.node("lcx");
            let vdd = nl.node("vdd");
            let force = nl.node("force");
            nl.voltage_source(force, Netlist::GROUND, Waveform::Dc(2.0));
            nl.resistor(force, lcx, 50.0);
            nl.resistor(vdd, Netlist::GROUND, 2.2e3);
            PadDriver::build_unpowered(&mut nl, "p", lcx, vdd, PadTopology::BulkSwitched);
            black_box(solve_dc(&nl).expect("converges"))
        });
    });
}

fn bench_envelope_tick(c: &mut Criterion) {
    let cfg = OscillatorConfig::datasheet_3mhz();
    let driver = GmDriver::new(DriverShape::LinearSaturate { gm: 10e-3 }, 1e-3);
    let model = EnvelopeModel::new(cfg.tank, driver).with_clamp(cfg.rail_clamp());
    c.bench_function("envelope_1ms_tick", |b| {
        b.iter(|| black_box(model.step(black_box(0.1), 1e-3)));
    });
}

fn bench_dac_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    g.throughput(Throughput::Elements(128));
    g.bench_function("dac_encode_all_codes", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for code in Code::all() {
                acc += ControlWord::encode(code).output_units();
            }
            black_box(acc)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ode_throughput,
    bench_dc_solve,
    bench_envelope_tick,
    bench_dac_encode
);
criterion_main!(benches);
