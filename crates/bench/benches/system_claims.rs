//! Reproduces and times the system-level claims of §7–§9: consumption vs
//! quality factor (250 µA … 30 mA), the FMEA coverage, and the dual-system
//! supply-loss comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use lcosc_bench::figures;

fn bench_consumption(c: &mut Criterion) {
    let pts = figures::consumption_vs_q();
    println!("--- §9: supply current vs tank quality factor (2.7 Vpp) ---");
    println!("{:>8} {:>14} {:>6}", "Q", "supply", "code");
    for (q, i, code) in &pts {
        println!("{q:>8.1} {:>11.1} µA {code:>6}", i * 1e6);
    }
    println!("paper: 250 µA (high-Q) .. 30 mA (poor-Q)");

    let mut g = c.benchmark_group("system");
    g.sample_size(10);
    g.bench_function("consumption_vs_q", |b| b.iter(figures::consumption_vs_q));
    g.finish();
}

fn bench_fmea(c: &mut Criterion) {
    let report = figures::fmea_matrix();
    println!("--- §7: FMEA matrix ---");
    println!("{report}");

    let mut g = c.benchmark_group("system");
    g.sample_size(10);
    g.bench_function("fmea_coverage", |b| b.iter(figures::fmea_matrix));
    g.finish();
}

fn bench_dual(c: &mut Criterion) {
    let outcomes = figures::dual_redundancy();
    println!("--- §8: dual-system supply loss (k = 0.8) ---");
    println!(
        "{:<26} {:>10} {:>10} {:>12} {:>10}",
        "partner topology", "vpp before", "vpp after", "reflected G", "influence"
    );
    for o in &outcomes {
        println!(
            "{:<26} {:>9.3}V {:>9.3}V {:>10.2e}S {:>9.2}%",
            o.partner_topology.to_string(),
            o.vpp_before,
            o.vpp_after,
            o.reflected_conductance,
            100.0 * o.influence()
        );
    }
    println!("paper: the unsupplied (Fig 11) system does not significantly influence the other");

    let mut g = c.benchmark_group("system");
    g.sample_size(10);
    g.bench_function("dual_redundancy", |b| b.iter(figures::dual_redundancy));
    g.finish();
}

criterion_group!(benches, bench_consumption, bench_fmea, bench_dual);
criterion_main!(benches);
