//! Powered-mode behavior of the Fig 11 bulk switch.
//!
//! When the chip is supplied, MP6 is on and MN6 shorts `Nbulk` to ground
//! (or the negative charge pump pulls it below ground), so the output NMOS
//! behaves like a normal grounded-bulk device and the driver keeps its full
//! voltage range — the property Fig 10b gives up. This module provides a
//! behavioral check of that mode.

use lcosc_circuit::analysis::dc::solve_dc;
use lcosc_circuit::netlist::{Netlist, Waveform};
use lcosc_circuit::Result;
use lcosc_device::chargepump::NegativeChargePump;
use lcosc_device::diode::DiodeModel;
use lcosc_device::mos::MosModel;

/// Powered bulk-switch bench: the Fig 11 output stage with Vdd supplied
/// and `Nbulk` held by MN6 (optionally assisted by the negative charge
/// pump).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoweredGuardBench {
    /// Supply voltage.
    pub vdd: f64,
    /// Negative charge pump on `Nbulk` (None = plain MN6 ground switch).
    pub pump: Option<NegativeChargePump>,
}

/// Result of a powered-mode operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardOperatingPoint {
    /// Voltage on the `Nbulk` node.
    pub v_nbulk: f64,
    /// Current drawn from the pin source.
    pub i_pin: f64,
    /// Pin voltage.
    pub v_lcx: f64,
}

impl PoweredGuardBench {
    /// A 3.3 V bench with the typical negative charge pump.
    pub fn chip_default() -> Self {
        PoweredGuardBench {
            vdd: 3.3,
            pump: Some(NegativeChargePump::typical()),
        }
    }

    /// Solves the powered operating point with the pin forced to `v_pin`
    /// through 50 Ω and the output NMOS gate driven to `v_gate`.
    ///
    /// # Errors
    ///
    /// Propagates DC solver failures.
    pub fn operating_point(&self, v_pin: f64, v_gate: f64) -> Result<GuardOperatingPoint> {
        let mut nl = Netlist::new();
        let gnd = Netlist::GROUND;
        let lcx = nl.node("lcx");
        let vdd = nl.node("vdd");
        let nbulk = nl.node("nbulk");
        let ng1 = nl.node("ng1");
        let force = nl.node("force");

        nl.voltage_source(vdd, gnd, Waveform::Dc(self.vdd));
        nl.voltage_source(ng1, gnd, Waveform::Dc(v_gate));
        let src = nl.voltage_source(force, gnd, Waveform::Dc(v_pin));
        let rs = nl.resistor(force, lcx, 50.0);
        let _ = rs;

        let nmos_big = MosModel::nmos_035um().scaled(20.0);
        let small_n = MosModel::nmos_035um();
        let junction = DiodeModel::bulk_junction_035um();

        // MN1 with switched bulk.
        nl.mosfet(lcx, ng1, gnd, nbulk, nmos_big);
        nl.diode(nbulk, lcx, junction);
        nl.diode(nbulk, gnd, junction);
        // MN5 still present (connects nbulk to the pin when it dives).
        nl.mosfet(nbulk, gnd, lcx, nbulk, small_n);

        // Nbulk bias: either MN6 shorts it to ground (plain powered mode)
        // or the negative charge pump holds it below ground — the enable
        // logic selects one, they never fight.
        match &self.pump {
            Some(pump) if pump.is_enabled() => {
                let pump_node = nl.node("pump");
                nl.voltage_source(pump_node, gnd, Waveform::Dc(pump.v_target()));
                nl.resistor(pump_node, nbulk, 50e3);
            }
            _ => {
                // MN6: powered, gate at vdd — shorts nbulk to ground.
                nl.mosfet(nbulk, vdd, gnd, gnd, small_n.scaled(4.0));
            }
        }

        let s = solve_dc(&nl)?;
        Ok(GuardOperatingPoint {
            v_nbulk: s.voltage(nbulk),
            i_pin: -s.current(src),
            v_lcx: s.voltage(lcx),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powered_nbulk_is_held_near_or_below_ground() {
        let op = PoweredGuardBench::chip_default()
            .operating_point(1.65, 0.0)
            .unwrap();
        assert!(op.v_nbulk < 0.05, "nbulk {}", op.v_nbulk);
    }

    #[test]
    fn output_nmos_pulls_pin_down_when_gated_on() {
        let op = PoweredGuardBench::chip_default()
            .operating_point(3.3, 3.3)
            .unwrap();
        // Wide device against 50 Ω: pin pulled well below the force level.
        assert!(op.v_lcx < 1.0, "lcx {}", op.v_lcx);
        assert!(op.i_pin > 10e-3, "pin current {}", op.i_pin);
    }

    #[test]
    fn output_nmos_off_leaves_pin_at_force_level() {
        let op = PoweredGuardBench::chip_default()
            .operating_point(2.0, 0.0)
            .unwrap();
        assert!((op.v_lcx - 2.0).abs() < 0.05, "lcx {}", op.v_lcx);
        assert!(op.i_pin.abs() < 1e-3);
    }

    #[test]
    fn mild_negative_swing_keeps_bulk_diode_off_with_pump() {
        // With the pump holding nbulk below ground, a pin swing to −0.3 V
        // (within the powered operating range) draws no junction current.
        let bench = PoweredGuardBench::chip_default();
        let op = bench.operating_point(-0.3, 0.0).unwrap();
        assert!(op.v_nbulk < -0.2, "nbulk {}", op.v_nbulk);
        assert!(op.i_pin.abs() < 1e-4, "pin current {}", op.i_pin);
    }

    #[test]
    fn without_pump_bulk_diode_clamps_deeper_swings() {
        let no_pump = PoweredGuardBench {
            vdd: 3.3,
            pump: None,
        };
        let with_pump = PoweredGuardBench::chip_default();
        let i_no = no_pump.operating_point(-0.9, 0.0).unwrap().i_pin;
        let i_with = with_pump.operating_point(-0.9, 0.0).unwrap().i_pin;
        // The grounded-bulk diode (anode gnd) forward-biases at −0.9 V;
        // the pumped bulk keeps it much quieter.
        assert!(i_no.abs() > 3.0 * i_with.abs(), "{i_no} vs {i_with}");
    }
}

/// Powered output-range comparison: the paper rejects Fig 10b because "the
/// voltage range of the driver is limited (due to voltage needed to open
/// MP1d)", while Fig 11 keeps the full range. Returns the lowest pin
/// voltage each powered topology can drive through 500 Ω to the 3.3 V rail.
///
/// # Errors
///
/// Propagates DC solver failures.
pub fn powered_low_level(topology: crate::topology::PadTopology) -> Result<f64> {
    use crate::topology::PadTopology;
    let mut nl = Netlist::new();
    let gnd = Netlist::GROUND;
    let vdd = nl.node("vdd");
    let lcx = nl.node("lcx");
    let pull = nl.node("pull");
    nl.voltage_source(vdd, gnd, Waveform::Dc(3.3));
    nl.voltage_source(pull, gnd, Waveform::Dc(3.3));
    nl.resistor(pull, lcx, 500.0);

    let nmos = MosModel::nmos_035um().scaled(20.0);
    let pmos = MosModel::pmos_035um().scaled(50.0);
    match topology {
        PadTopology::PlainCmos | PadTopology::BulkSwitched => {
            // Output NMOS on, pulling the pin low directly (Fig 11's bulk
            // switch grounds nbulk when powered, so it behaves like the
            // plain stage here).
            nl.mosfet(lcx, vdd, gnd, gnd, nmos);
        }
        PadTopology::SeriesPmos => {
            // The pull-down path goes through MP1d: NMOS to the internal
            // node, the series PMOS (gate grounded) to the pin — the pin
            // cannot go below the PMOS's conduction limit.
            let out = nl.node("out");
            nl.mosfet(out, vdd, gnd, gnd, nmos);
            nl.mosfet(lcx, gnd, out, out, pmos); // MP1d, gate at 0
        }
    }
    let s = solve_dc(&nl)?;
    Ok(s.voltage(lcx))
}

#[cfg(test)]
mod range_tests {
    use super::*;
    use crate::topology::PadTopology;

    #[test]
    fn series_pmos_cannot_pull_the_pin_low() {
        // Paper §8: Fig 10b's range is limited by the voltage needed to
        // open MP1d — the low level stalls around a PMOS threshold.
        let plain = powered_low_level(PadTopology::PlainCmos).unwrap();
        let series = powered_low_level(PadTopology::SeriesPmos).unwrap();
        let bulk = powered_low_level(PadTopology::BulkSwitched).unwrap();
        assert!(plain < 0.15, "plain low level {plain}");
        assert!(bulk < 0.15, "bulk-switched low level {bulk}");
        assert!(series > 0.4, "series low level {series}");
        assert!(series > plain + 0.3, "series {series} vs plain {plain}");
    }
}
