//! The paper's Fig 17/18 experiment: DC characteristics of the driver pins
//! when the supply is missing.
//!
//! Test bench (documented in `EXPERIMENTS.md`): the live partner system
//! drives the unsupplied chip's pins differentially through the coupled
//! coil, modeled as two ground-referenced sources (+v/2 into LC1, −v/2
//! into LC2) with a small source resistance each. The chip's Vdd rail
//! floats; the unpowered core presents an equivalent load `r_internal` to
//! ground, which carries the rectified pump current. Reported current is
//! the differential loop current `(i(LC1) − i(LC2))/2` — odd-symmetric in
//! the forcing voltage like the paper's Fig 17.

use crate::topology::{PadDriver, PadTopology};
use lcosc_circuit::analysis::dc::{solve_dc_with, DcOptions};
use lcosc_circuit::analysis::sweep::linspace;
use lcosc_circuit::netlist::{ElementId, Netlist, Waveform};
use lcosc_circuit::Result;

/// One point of the unsupplied-pin sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnsuppliedPoint {
    /// Differential forcing voltage `v(LC1) − v(LC2)` at the source, volts.
    pub v_diff: f64,
    /// Differential loop current, amperes (Fig 17's y-axis).
    pub i_loop: f64,
    /// Voltage on the LC1 pin (Fig 18).
    pub v_lc1: f64,
    /// Voltage on the LC2 pin (Fig 18).
    pub v_lc2: f64,
    /// Voltage on the floating Vdd rail (Fig 18).
    pub v_vdd: f64,
}

/// The unsupplied-driver DC bench.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnsuppliedBench {
    /// Pad topology under test.
    pub topology: PadTopology,
    /// Source resistance per pin (the coupled coil), ohms.
    pub r_couple: f64,
    /// Equivalent load of the unpowered core on the pumped rail, ohms.
    pub r_internal: f64,
}

impl UnsuppliedBench {
    /// Bench with the values used for the paper reproduction: 50 Ω
    /// coupling, 2.2 kΩ internal rail load.
    pub fn new(topology: PadTopology) -> Self {
        UnsuppliedBench {
            topology,
            r_couple: 50.0,
            r_internal: 2.2e3,
        }
    }

    /// Runs the differential sweep over `v_diff` values (the paper sweeps
    /// −3 V … +3 V).
    ///
    /// # Errors
    ///
    /// Propagates DC solver failures annotated with the failing value.
    pub fn sweep(&self, v_values: &[f64]) -> Result<Vec<UnsuppliedPoint>> {
        let (mut nl, src1, src2, nodes) = self.build();
        let opts = DcOptions::default();
        let mut out = Vec::with_capacity(v_values.len());
        let mut warm: Option<Vec<f64>> = None;
        for &v in v_values {
            if let lcosc_circuit::netlist::Element::VoltageSource { wave, .. } =
                nl.element_mut(src1)
            {
                *wave = Waveform::Dc(0.5 * v);
            }
            if let lcosc_circuit::netlist::Element::VoltageSource { wave, .. } =
                nl.element_mut(src2)
            {
                *wave = Waveform::Dc(-0.5 * v);
            }
            let sol = solve_dc_with(&nl, &opts, warm.as_deref())?;
            warm = Some(sol.raw().to_vec());
            // Source branch current is p→n through the source, so the
            // current delivered *into* the circuit is its negative.
            let i_lc1 = -sol.current(src1);
            let i_lc2 = -sol.current(src2);
            out.push(UnsuppliedPoint {
                v_diff: v,
                i_loop: 0.5 * (i_lc1 - i_lc2),
                v_lc1: sol.voltage(nodes.0),
                v_lc2: sol.voltage(nodes.1),
                v_vdd: sol.voltage(nodes.2),
            });
        }
        Ok(out)
    }

    /// Convenience: the paper's −3…+3 V sweep with `points` samples.
    ///
    /// # Errors
    ///
    /// See [`UnsuppliedBench::sweep`].
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn sweep_paper_range(&self, points: usize) -> Result<Vec<UnsuppliedPoint>> {
        self.sweep(&linspace(-3.0, 3.0, points))
    }

    /// Maximum loop-current magnitude over a sweep.
    pub fn peak_current(points: &[UnsuppliedPoint]) -> f64 {
        points.iter().fold(0.0f64, |m, p| m.max(p.i_loop.abs()))
    }

    #[allow(clippy::type_complexity)]
    fn build(
        &self,
    ) -> (
        Netlist,
        ElementId,
        ElementId,
        (
            lcosc_circuit::netlist::NodeId,
            lcosc_circuit::netlist::NodeId,
            lcosc_circuit::netlist::NodeId,
        ),
    ) {
        let mut nl = Netlist::new();
        let lc1 = nl.node("lc1");
        let lc2 = nl.node("lc2");
        let vdd = nl.node("vdd");
        let f1 = nl.node("force1");
        let f2 = nl.node("force2");
        let src1 = nl.voltage_source(f1, Netlist::GROUND, Waveform::Dc(0.0));
        let src2 = nl.voltage_source(f2, Netlist::GROUND, Waveform::Dc(0.0));
        nl.resistor(f1, lc1, self.r_couple);
        nl.resistor(f2, lc2, self.r_couple);
        nl.resistor(vdd, Netlist::GROUND, self.r_internal);
        PadDriver::build_unpowered(&mut nl, "d1", lc1, vdd, self.topology);
        PadDriver::build_unpowered(&mut nl, "d2", lc2, vdd, self.topology);
        (nl, src1, src2, (lc1, lc2, vdd))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(topology: PadTopology) -> Vec<UnsuppliedPoint> {
        UnsuppliedBench::new(topology)
            .sweep_paper_range(61)
            .unwrap()
    }

    #[test]
    fn bulk_switched_peak_current_below_milliamp() {
        // Paper Fig 17: |I| stays below ~0.8 mA over ±3 V.
        let pts = run(PadTopology::BulkSwitched);
        let peak = UnsuppliedBench::peak_current(&pts);
        assert!(peak < 1.2e-3, "peak {peak}");
        assert!(peak > 1e-5, "pump current should be visible: {peak}");
    }

    #[test]
    fn plain_cmos_loads_the_partner_heavily() {
        let plain = UnsuppliedBench::peak_current(&run(PadTopology::PlainCmos));
        let bulk = UnsuppliedBench::peak_current(&run(PadTopology::BulkSwitched));
        // Fig 10a vs Fig 11: orders of magnitude.
        assert!(plain > 10.0 * bulk, "plain {plain} vs bulk {bulk}");
        assert!(plain > 5e-3, "plain {plain}");
    }

    #[test]
    fn current_is_odd_symmetric() {
        let pts = run(PadTopology::BulkSwitched);
        let n = pts.len();
        for k in 0..n / 2 {
            let a = pts[k].i_loop;
            let b = pts[n - 1 - k].i_loop;
            assert!(
                (a + b).abs() < 0.1 * a.abs().max(b.abs()).max(1e-6),
                "not odd at {}: {a} vs {b}",
                pts[k].v_diff
            );
        }
    }

    #[test]
    fn dead_zone_around_origin() {
        // Below one junction drop per side nothing conducts.
        let pts = UnsuppliedBench::new(PadTopology::BulkSwitched)
            .sweep(&[-0.8, -0.4, 0.0, 0.4, 0.8])
            .unwrap();
        for p in &pts {
            assert!(p.i_loop.abs() < 2e-5, "at {}: {}", p.v_diff, p.i_loop);
        }
    }

    #[test]
    fn vdd_is_pumped_symmetrically() {
        // Fig 18: the floating rail rises whichever pin goes high.
        let pts = run(PadTopology::BulkSwitched);
        let at = |v: f64| {
            pts.iter()
                .min_by(|a, b| (a.v_diff - v).abs().total_cmp(&(b.v_diff - v).abs()))
                .unwrap()
                .v_vdd
        };
        assert!(at(3.0) > 0.4, "vdd at +3: {}", at(3.0));
        assert!(at(-3.0) > 0.4, "vdd at -3: {}", at(-3.0));
        assert!(at(0.0).abs() < 0.05, "vdd at 0: {}", at(0.0));
        assert!((at(3.0) - at(-3.0)).abs() < 0.1 * at(3.0));
    }

    #[test]
    fn high_pin_clamps_low_pin_swings_free() {
        // Fig 18: LC1 saturates one diode above the pumped rail for
        // positive forcing but follows the source linearly when negative.
        let pts = run(PadTopology::BulkSwitched);
        let last = pts.last().unwrap(); // v = +3
        assert!(last.v_lc1 < 1.9, "lc1 clamped: {}", last.v_lc1);
        assert!(last.v_lc1 > 0.6);
        assert!(
            (last.v_lc2 - (-1.5)).abs() < 0.1,
            "lc2 free: {}",
            last.v_lc2
        );
        let first = pts.first().unwrap(); // v = −3
        assert!(
            (first.v_lc1 - (-1.5)).abs() < 0.1,
            "lc1 free: {}",
            first.v_lc1
        );
    }

    #[test]
    fn paper_operating_amplitude_is_safe() {
        // Paper: "For maximum operating amplitude, which is 2.7 Vpp, the
        // unsupplied system does not significantly influence the other".
        let pts = UnsuppliedBench::new(PadTopology::BulkSwitched)
            .sweep(&[-1.35, 1.35])
            .unwrap();
        for p in &pts {
            assert!(p.i_loop.abs() < 2e-4, "at {}: {}", p.v_diff, p.i_loop);
        }
    }

    #[test]
    fn series_pmos_fixes_negative_but_not_range() {
        // Fig 10b isolates the pin from the NMOS clamp (its peak unsupplied
        // current collapses to pump levels, like Fig 11) — the paper rejects
        // it for its *powered* range limitation, not for leakage.
        let plain = UnsuppliedBench::peak_current(&run(PadTopology::PlainCmos));
        let series = UnsuppliedBench::peak_current(&run(PadTopology::SeriesPmos));
        assert!(series < 0.1 * plain, "series {series} vs plain {plain}");
        assert!(series < 2e-3, "series {series}");
    }
}
