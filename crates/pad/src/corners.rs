//! Process-corner / temperature qualification of the unsupplied-pad
//! isolation (the automotive sign-off behind the paper's §8 claim).

use crate::topology::{PadDriver, PadTopology};
use crate::unsupplied::{UnsuppliedBench, UnsuppliedPoint};
use lcosc_circuit::analysis::dc::{solve_dc_with, DcOptions};
use lcosc_circuit::analysis::sweep::linspace;
use lcosc_circuit::netlist::{Netlist, Waveform};
use lcosc_circuit::Result;
use lcosc_device::process::{Corner, ProcessParams};

/// Result of one corner/temperature qualification point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CornerResult {
    /// Process corner.
    pub corner: Corner,
    /// Junction temperature, kelvin.
    pub temp_k: f64,
    /// Peak loop-current magnitude over the ±3 V sweep, amps.
    pub peak_current: f64,
}

/// Runs the Fig 17 sweep for one topology at a given process condition.
///
/// # Errors
///
/// Propagates DC solver failures.
pub fn unsupplied_sweep_at(
    topology: PadTopology,
    process: &ProcessParams,
    points: usize,
) -> Result<Vec<UnsuppliedPoint>> {
    let bench = UnsuppliedBench::new(topology);
    let mut nl = Netlist::new();
    let lc1 = nl.node("lc1");
    let lc2 = nl.node("lc2");
    let vdd = nl.node("vdd");
    let f1 = nl.node("force1");
    let f2 = nl.node("force2");
    let src1 = nl.voltage_source(f1, Netlist::GROUND, Waveform::Dc(0.0));
    let src2 = nl.voltage_source(f2, Netlist::GROUND, Waveform::Dc(0.0));
    nl.resistor(f1, lc1, bench.r_couple);
    nl.resistor(f2, lc2, bench.r_couple);
    nl.resistor(vdd, Netlist::GROUND, bench.r_internal);
    PadDriver::build_unpowered_at(&mut nl, "d1", lc1, vdd, topology, process);
    PadDriver::build_unpowered_at(&mut nl, "d2", lc2, vdd, topology, process);

    let opts = DcOptions::default();
    let mut warm: Option<Vec<f64>> = None;
    let mut out = Vec::with_capacity(points);
    for v in linspace(-3.0, 3.0, points) {
        if let lcosc_circuit::netlist::Element::VoltageSource { wave, .. } = nl.element_mut(src1) {
            *wave = Waveform::Dc(0.5 * v);
        }
        if let lcosc_circuit::netlist::Element::VoltageSource { wave, .. } = nl.element_mut(src2) {
            *wave = Waveform::Dc(-0.5 * v);
        }
        let sol = solve_dc_with(&nl, &opts, warm.as_deref())?;
        warm = Some(sol.raw().to_vec());
        let i_lc1 = -sol.current(src1);
        let i_lc2 = -sol.current(src2);
        out.push(UnsuppliedPoint {
            v_diff: v,
            i_loop: 0.5 * (i_lc1 - i_lc2),
            v_lc1: sol.voltage(lc1),
            v_lc2: sol.voltage(lc2),
            v_vdd: sol.voltage(vdd),
        });
    }
    Ok(out)
}

/// Qualifies a topology across all five corners and the automotive
/// temperature range (−40 °C, 27 °C, 125 °C).
///
/// # Errors
///
/// Propagates DC solver failures.
pub fn qualify(topology: PadTopology) -> Result<Vec<CornerResult>> {
    let temps = [233.15, 300.0, 398.15];
    let mut out = Vec::with_capacity(Corner::ALL.len() * temps.len());
    for corner in Corner::ALL {
        for &temp_k in &temps {
            let process = ProcessParams::new(corner, temp_k);
            let pts = unsupplied_sweep_at(topology, &process, 31)?;
            out.push(CornerResult {
                corner,
                temp_k,
                peak_current: UnsuppliedBench::peak_current(&pts),
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_switched_isolation_holds_at_all_corners() {
        let results = qualify(PadTopology::BulkSwitched).unwrap();
        assert_eq!(results.len(), 15);
        for r in &results {
            assert!(
                r.peak_current < 2.5e-3,
                "{} at {} K: {}",
                r.corner,
                r.temp_k,
                r.peak_current
            );
        }
    }

    #[test]
    fn hot_fast_corner_leaks_most() {
        let results = qualify(PadTopology::BulkSwitched).unwrap();
        let worst = results
            .iter()
            .max_by(|a, b| a.peak_current.total_cmp(&b.peak_current))
            .expect("non-empty");
        // Lower thresholds (FF, hot) conduct earliest.
        assert!(worst.temp_k > 300.0, "worst at {} K", worst.temp_k);
    }

    #[test]
    fn plain_cmos_fails_at_every_corner() {
        // The Fig 10a clamp is catastrophic regardless of corner — the
        // qualification would reject it everywhere, not marginally.
        for corner in lcosc_device::process::Corner::ALL {
            let process = ProcessParams::new(corner, 300.0);
            let pts = unsupplied_sweep_at(PadTopology::PlainCmos, &process, 13).unwrap();
            let peak = UnsuppliedBench::peak_current(&pts);
            assert!(peak > 3e-3, "{corner}: {peak}");
        }
    }
}
