//! # lcosc-pad — output pad driver topologies (paper §8)
//!
//! In redundant dual systems the two oscillators share mutually coupled
//! coils; if one chip loses its supply, its LC pins are still driven by the
//! live partner and must not load it. The paper compares three output
//! stages:
//!
//! - **Plain CMOS** (Fig 10a) — the intrinsic drain–bulk diodes pump the
//!   floating Vdd rail and the PMOS channel then shorts the pins: heavy
//!   loading.
//! - **Series PMOS** (Fig 10b) — an extra series device isolates the PMOS
//!   path at the cost of output swing; one extra junction drop on the
//!   positive side, while the NMOS bulk diode still clamps negative swings.
//! - **Bulk-switched** (Fig 11) — the production topology: the NMOS bulk
//!   (`Nbulk`) and gate follow the pin when it swings negative (MN5/MN3)
//!   and the PMOS gate is lifted to the pumped rail (MP3), so within the
//!   ±3 V operating range only the unavoidable Vdd-pump rectification
//!   current flows (paper Fig 17: |I| < ~0.8 mA).
//!
//! [`UnsuppliedBench`] reproduces the paper's Fig 17 (pin current) and
//! Fig 18 (pin and Vdd voltages) as DC sweeps of the netlists built on
//! [`lcosc_circuit`].

#![warn(missing_docs)]

pub mod corners;
pub mod guard;
pub mod topology;
pub mod unsupplied;

pub use corners::{qualify, CornerResult};
pub use topology::{PadDriver, PadTopology};
pub use unsupplied::{UnsuppliedBench, UnsuppliedPoint};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_enum_roundtrip_display() {
        for t in PadTopology::ALL {
            assert!(!t.to_string().is_empty());
        }
    }
}
