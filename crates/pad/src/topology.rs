//! Netlist construction for the three pad driver topologies.
//!
//! MOSFET channels conduct whenever *either* end sits a threshold below
//! (NMOS) or above (PMOS) the gate — when the pin is driven beyond the
//! rails of an unpowered chip, drains turn into sources. The topologies
//! differ exactly in which of those parasitic channels and junctions reach
//! the pin:
//!
//! - **Fig 10a**: the NMOS (gate ≈ 0) turns on hard for any pin voltage a
//!   threshold below ground, and its substrate diode clamps in parallel;
//!   positive overdrive pumps the rail through the PMOS well diode and the
//!   PMOS channel.
//! - **Fig 10b**: a series PMOS in an isolated well sits between the
//!   inverter and the pin. Negative overdrive leaves its higher terminal
//!   (the internal node) at 0, so its channel stays off and the pin floats
//!   — at the cost of output range when powered.
//! - **Fig 11**: the NMOS gate *and* bulk follow the pin when it dives
//!   (MN3/MN5), keeping `Vgs = 0`; MN6's gate is referenced so it stays off
//!   without supply; the PMOS gate is lifted to the (pumped) rail.

use lcosc_circuit::netlist::{Netlist, NodeId};
use lcosc_device::diode::DiodeModel;
use lcosc_device::mos::MosModel;
use lcosc_device::process::ProcessParams;

/// The three compared output-stage topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PadTopology {
    /// Fig 10a: plain CMOS inverter output with intrinsic bulk diodes.
    PlainCmos,
    /// Fig 10b: additional series PMOS in an isolated well.
    SeriesPmos,
    /// Fig 11: bulk-switched NMOS + gate lift, PMOS gate tied to the rail.
    BulkSwitched,
}

impl PadTopology {
    /// All three topologies, for comparison sweeps.
    pub const ALL: [PadTopology; 3] = [
        PadTopology::PlainCmos,
        PadTopology::SeriesPmos,
        PadTopology::BulkSwitched,
    ];
}

impl std::fmt::Display for PadTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PadTopology::PlainCmos => write!(f, "plain-cmos (Fig 10a)"),
            PadTopology::SeriesPmos => write!(f, "series-pmos (Fig 10b)"),
            PadTopology::BulkSwitched => write!(f, "bulk-switched (Fig 11)"),
        }
    }
}

/// Handles to the internal nodes of one built pad driver (for probing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PadDriver {
    /// The driven pin.
    pub lcx: NodeId,
    /// Shared supply rail (floating in the unsupplied analysis).
    pub vdd: NodeId,
    /// NMOS bulk node (== ground node for the unswitched topologies).
    pub nbulk: NodeId,
    /// NMOS gate node.
    pub ng1: NodeId,
    /// PMOS gate node.
    pub pg1: NodeId,
}

/// Resistance of the dead (unpowered) gate-driver logic tying gates to
/// their idle rail.
const R_GATE_LEAK: f64 = 100e3;
/// High-value bias resistors of the Fig 11 protection network (R1–R3).
const R_GUARD: f64 = 1e6;

impl PadDriver {
    /// Builds one *unpowered* pad driver of the given topology onto `nl`,
    /// driving `lcx` and sharing the floating `vdd` rail.
    ///
    /// Device sizing follows the paper's output stage: wide transistors
    /// (W/L ≈ 200 for the NMOS, ≈ 500 for the PMOS to balance mobility)
    /// so the on-resistance is a few ohms — pad drivers must deliver tens
    /// of milliamps.
    pub fn build_unpowered(
        nl: &mut Netlist,
        label: &str,
        lcx: NodeId,
        vdd: NodeId,
        topology: PadTopology,
    ) -> PadDriver {
        PadDriver::build_unpowered_at(nl, label, lcx, vdd, topology, &ProcessParams::nominal())
    }

    /// Like [`PadDriver::build_unpowered`], but with device parameters
    /// skewed to a process corner and temperature — the paper's automotive
    /// qualification requires the §8 isolation to hold across all of them.
    pub fn build_unpowered_at(
        nl: &mut Netlist,
        label: &str,
        lcx: NodeId,
        vdd: NodeId,
        topology: PadTopology,
        process: &ProcessParams,
    ) -> PadDriver {
        let gnd = Netlist::GROUND;
        let nmos = process.apply(&MosModel::nmos_035um()).scaled(20.0); // W/L = 200
        let pmos = process.apply(&MosModel::pmos_035um()).scaled(50.0); // W/L = 500
        let junction = DiodeModel::bulk_junction_035um();

        let ng1 = nl.node(&format!("{label}_ng1"));
        let pg1 = nl.node(&format!("{label}_pg1"));

        match topology {
            PadTopology::PlainCmos => {
                // Output devices.
                nl.mosfet(lcx, ng1, gnd, gnd, nmos);
                nl.mosfet(lcx, pg1, vdd, vdd, pmos);
                // Intrinsic junctions: NMOS drain-bulk (substrate at gnd)
                // and PMOS drain-well (well at vdd).
                nl.diode(gnd, lcx, junction);
                nl.diode(lcx, vdd, junction);
                // Dead logic: the NMOS gate leaks to the substrate
                // (ground); the PMOS gate leaks to its well rail through
                // the predriver's junctions, so it follows the pumped vdd.
                nl.resistor(ng1, gnd, R_GATE_LEAK);
                nl.resistor(pg1, vdd, R_GATE_LEAK);
                PadDriver {
                    lcx,
                    vdd,
                    nbulk: gnd,
                    ng1,
                    pg1,
                }
            }
            PadTopology::SeriesPmos => {
                // Fig 10b: MP1d (isolated well tied to the internal node)
                // sits between the inverter output `out` and the pin, so
                // the NMOS channel and substrate diode no longer reach the
                // pin. Negative overdrive: MP1d's higher terminal stays at
                // `out` ≈ 0 with its gate at 0 → off, the pin floats.
                let out = nl.node(&format!("{label}_out"));
                nl.mosfet(out, ng1, gnd, gnd, nmos); // MN1
                nl.mosfet(out, pg1, vdd, vdd, pmos); // MP1
                nl.mosfet(lcx, pg1, out, out, pmos); // MP1d
                nl.diode(gnd, out, junction); // MN1 drain-bulk (internal)
                nl.diode(out, vdd, junction); // MP1 drain-well
                nl.diode(lcx, out, junction); // MP1d drain-well
                nl.resistor(ng1, gnd, R_GATE_LEAK);
                nl.resistor(pg1, vdd, R_GATE_LEAK);
                PadDriver {
                    lcx,
                    vdd,
                    nbulk: gnd,
                    ng1,
                    pg1,
                }
            }
            PadTopology::BulkSwitched => {
                // Fig 11: nbulk and ng1 follow the pin when it goes
                // negative (MN5, MN3 with gates at ground); MN6's gate is
                // referenced to nbulk through the guard network so it is
                // off without supply even when nbulk dives. The PMOS gate
                // is lifted to the rail (MP3's role), cancelling the
                // channel path that kills Fig 10a.
                let nbulk = nl.node(&format!("{label}_nbulk"));
                let mg6 = nl.node(&format!("{label}_mg6"));
                let small_n = process.apply(&MosModel::nmos_035um());
                nl.mosfet(lcx, ng1, gnd, nbulk, nmos); // MN1
                nl.mosfet(lcx, pg1, vdd, vdd, pmos); // MP1
                nl.mosfet(nbulk, gnd, lcx, nbulk, small_n); // MN5
                nl.mosfet(ng1, gnd, lcx, nbulk, small_n); // MN3
                nl.mosfet(nbulk, mg6, gnd, nbulk, small_n); // MN6
                                                            // MN6 gate: pulled to nbulk without supply (MP6 off), so
                                                            // Vgs stays 0 however deep the pin swings.
                nl.resistor(mg6, nbulk, R_GUARD);
                // Junctions: MN1 drain-bulk and source-bulk reference the
                // switched p-well; PMOS drain-well unchanged.
                nl.diode(nbulk, lcx, junction);
                nl.diode(nbulk, gnd, junction);
                nl.diode(lcx, vdd, junction);
                // Gate ties: NMOS gate bias through the high-value guard
                // resistor, PMOS gate to the rail (MP3 behavior).
                nl.resistor(ng1, gnd, R_GUARD);
                nl.resistor(pg1, vdd, R_GATE_LEAK);
                PadDriver {
                    lcx,
                    vdd,
                    nbulk,
                    ng1,
                    pg1,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcosc_circuit::analysis::dc::solve_dc;
    use lcosc_circuit::netlist::Waveform;

    /// Builds a single unpowered driver with the pin forced to `v` through
    /// 50 Ω and an internal 2.2 kΩ load on the floating rail; returns
    /// (pin current, vdd voltage).
    fn probe(topology: PadTopology, v: f64) -> (f64, f64) {
        let mut nl = Netlist::new();
        let lcx = nl.node("lcx");
        let vdd = nl.node("vdd");
        let force = nl.node("force");
        nl.voltage_source(force, Netlist::GROUND, Waveform::Dc(v));
        let rsrc = nl.resistor(force, lcx, 50.0);
        nl.resistor(vdd, Netlist::GROUND, 2.2e3);
        PadDriver::build_unpowered(&mut nl, "p", lcx, vdd, topology);
        let s = solve_dc(&nl).unwrap();
        (s.current(rsrc), s.voltage(vdd))
    }

    #[test]
    fn plain_cmos_conducts_heavily_positive() {
        let (i, vdd) = probe(PadTopology::PlainCmos, 2.0);
        // Diode into the rail + the load: milliamp-level current.
        assert!(i > 1e-4, "current {i}");
        assert!(vdd > 0.5, "rail pumped to {vdd}");
    }

    #[test]
    fn plain_cmos_clamps_negative_hard() {
        // Substrate diode plus the NMOS channel (Vgs = +2 with the pin as
        // source) short the pin: tens of milliamps through the 50 Ω source.
        let (i, _) = probe(PadTopology::PlainCmos, -2.0);
        assert!(i < -10e-3, "current {i}");
    }

    #[test]
    fn series_pmos_floats_negative() {
        let (i, _) = probe(PadTopology::SeriesPmos, -2.0);
        assert!(i.abs() < 1e-4, "current {i}");
    }

    #[test]
    fn series_pmos_still_pumps_positive() {
        // Positive overdrive still reaches the rail (the paper's remaining
        // objection is range, not positive isolation).
        let (i, vdd) = probe(PadTopology::SeriesPmos, 2.5);
        assert!(i > 1e-4, "current {i}");
        assert!(vdd > 0.3, "vdd {vdd}");
    }

    #[test]
    fn bulk_switched_blocks_negative() {
        let (i, _) = probe(PadTopology::BulkSwitched, -2.5);
        assert!(i.abs() < 1e-5, "leakage {i}");
    }

    #[test]
    fn bulk_switched_pin_current_small_positive() {
        let (i, vdd) = probe(PadTopology::BulkSwitched, 2.0);
        // Only the rail-pump rectification flows: sub-mA.
        assert!(i < 1.0e-3, "current {i}");
        assert!(i > 0.0);
        assert!(vdd > 0.4, "rail pumped to {vdd}");
    }

    #[test]
    fn bulk_switched_blocks_orders_of_magnitude_better_negative() {
        let (i_plain, _) = probe(PadTopology::PlainCmos, -2.5);
        let (i_bulk, _) = probe(PadTopology::BulkSwitched, -2.5);
        assert!(
            i_bulk.abs() * 100.0 < i_plain.abs(),
            "{i_bulk} vs {i_plain}"
        );
    }

    #[test]
    fn bulk_switch_nodes_follow_pin_when_negative() {
        let mut nl = Netlist::new();
        let lcx = nl.node("lcx");
        let vdd = nl.node("vdd");
        nl.voltage_source(lcx, Netlist::GROUND, Waveform::Dc(-2.0));
        nl.resistor(vdd, Netlist::GROUND, 2.2e3);
        let pad = PadDriver::build_unpowered(&mut nl, "p", lcx, vdd, PadTopology::BulkSwitched);
        let s = solve_dc(&nl).unwrap();
        // Nbulk and Ng1 ride within a threshold of the pin.
        assert!(
            (s.voltage(pad.nbulk) - (-2.0)).abs() < 0.7,
            "nbulk {}",
            s.voltage(pad.nbulk)
        );
        assert!(s.voltage(pad.ng1) < -1.0, "ng1 {}", s.voltage(pad.ng1));
    }

    #[test]
    fn all_topologies_leak_little_in_band() {
        // Within ±0.4 V (inside the powered operating range) no topology
        // conducts meaningfully.
        for t in PadTopology::ALL {
            for v in [-0.4, 0.4] {
                let (i, _) = probe(t, v);
                assert!(i.abs() < 5e-5, "{t} at {v}: {i}");
            }
        }
    }
}
