//! Sinks and the cheap shareable [`Trace`] handle the instrumented crates
//! carry.
//!
//! Instrumentation sites hold a [`Trace`]; the default ([`Trace::off`]) is
//! a `None` handle whose [`Trace::emit`] is a single branch — the event
//! constructor closure is never called, so disabled tracing costs nothing
//! beyond that null check and adds no heap traffic.

use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// How much a sink wants to see.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum TraceLevel {
    /// Record nothing.
    Off,
    /// Aggregate counters/histograms only (events are folded, not kept).
    Metrics,
    /// Record the full structured event stream.
    #[default]
    Events,
}

impl TraceLevel {
    /// Parses the CLI spelling used by `repro --trace-level`.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" => Some(TraceLevel::Off),
            "metrics" => Some(TraceLevel::Metrics),
            "events" => Some(TraceLevel::Events),
            _ => None,
        }
    }
}

/// A consumer of trace events.
///
/// Sinks take `&self` and must be internally synchronized (the provided
/// sinks use a `Mutex` or atomics), so one sink can be shared by several
/// instrumented components through the cloneable [`Trace`] handle.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Consumes one event.
    fn record(&self, event: &TraceEvent);
}

/// A sink that discards everything (explicit spelling of [`Trace::off`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: &TraceEvent) {}
}

/// The shareable tracing handle instrumented components store.
///
/// Cloning is cheap (an `Option<Arc>`); the disabled default makes every
/// `emit` a single branch.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    sink: Option<Arc<dyn TraceSink>>,
}

impl Trace {
    /// A disabled handle: `emit` never constructs events.
    pub fn off() -> Self {
        Trace::default()
    }

    /// A handle feeding `sink`.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Trace { sink: Some(sink) }
    }

    /// Whether events are being consumed.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits the event built by `make` — which is only invoked when a sink
    /// is attached, so instrumentation sites pay one branch when disabled.
    pub fn emit(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.record(&make());
        }
    }
}

/// Locks a mutex, recovering the data on poisoning (a panicking tracer
/// must not take the instrumented simulation down with it).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Unbounded in-memory sink; the backing store for tests, invariant
/// checking, and `repro`'s end-of-run JSONL rendering.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Copies out the events recorded so far.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        lock_unpoisoned(&self.events).clone()
    }

    /// Removes and returns the events recorded so far.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *lock_unpoisoned(&self.events))
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.events).len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: &TraceEvent) {
        lock_unpoisoned(&self.events).push(*event);
    }
}

/// Bounded ring-buffer sink: keeps the most recent `capacity` events and
/// counts what it had to drop — the always-on flight-recorder shape for
/// long campaigns where only the tail around a failure matters.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// Creates a ring keeping at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
            dropped: AtomicU64::new(0),
        }
    }

    /// The most recent events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        lock_unpoisoned(&self.buf).iter().copied().collect()
    }

    /// How many events were evicted to honor the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: &TraceEvent) {
        let mut buf = lock_unpoisoned(&self.buf);
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(*event);
    }
}

/// Streams events as JSONL to a writer as they arrive, filtered to one
/// stream class so golden and timing data never share a file.
pub struct JsonlSink<W: Write + Send> {
    out: Mutex<W>,
    golden_only: bool,
}

impl<W: Write + Send> JsonlSink<W> {
    /// A sink writing only golden (deterministic) events to `out`.
    pub fn golden(out: W) -> Self {
        JsonlSink {
            out: Mutex::new(out),
            golden_only: true,
        }
    }

    /// A sink writing every event (including machine-dependent timing).
    pub fn all(out: W) -> Self {
        JsonlSink {
            out: Mutex::new(out),
            golden_only: false,
        }
    }

    /// Flushes and returns the writer.
    pub fn into_inner(self) -> W {
        self.out
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<W: Write + Send> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("golden_only", &self.golden_only)
            .finish_non_exhaustive()
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, event: &TraceEvent) {
        if self.golden_only && !event.is_golden() {
            return;
        }
        let mut out = lock_unpoisoned(&self.out);
        // I/O errors cannot be surfaced from the hot path; dropping the
        // line keeps the simulation deterministic either way.
        let _ = writeln!(out, "{}", event.to_jsonl());
    }
}

/// Broadcasts every event to several sinks (e.g. memory + metrics).
#[derive(Debug, Clone, Default)]
pub struct FanoutSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl FanoutSink {
    /// Creates a fanout over `sinks`.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl TraceSink for FanoutSink {
    fn record(&self, event: &TraceEvent) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{StepAction, WindowClass};

    fn step(tick: u64) -> TraceEvent {
        TraceEvent::CodeStep {
            tick,
            old: 1,
            new: 2,
            action: StepAction::Increment,
            window: WindowClass::Below,
        }
    }

    #[test]
    fn disabled_trace_never_builds_events() {
        let t = Trace::off();
        assert!(!t.is_enabled());
        t.emit(|| unreachable!("disabled trace must not construct events"));
    }

    #[test]
    fn memory_sink_records_in_order() {
        let mem = Arc::new(MemorySink::new());
        let t = Trace::new(mem.clone());
        assert!(t.is_enabled());
        for k in 0..5 {
            t.emit(|| step(k));
        }
        let evs = mem.snapshot();
        assert_eq!(evs.len(), 5);
        assert_eq!(evs[3], step(3));
        assert_eq!(mem.take().len(), 5);
        assert!(mem.is_empty());
    }

    #[test]
    fn ring_sink_bounds_memory_and_counts_drops() {
        let ring = RingSink::new(3);
        for k in 0..10 {
            ring.record(&step(k));
        }
        let tail = ring.snapshot();
        assert_eq!(tail, vec![step(7), step(8), step(9)]);
        assert_eq!(ring.dropped(), 7);
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ring_sink_rejects_zero_capacity() {
        let _ = RingSink::new(0);
    }

    #[test]
    fn jsonl_golden_sink_excludes_timing() {
        let sink = JsonlSink::golden(Vec::new());
        sink.record(&step(1));
        sink.record(&TraceEvent::CampaignJobTiming {
            index: 0,
            wall_ns: 123,
        });
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("code_step"));
        assert!(!text.contains("wall_ns"));
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn jsonl_all_sink_keeps_timing() {
        let sink = JsonlSink::all(Vec::new());
        sink.record(&TraceEvent::CampaignJobTiming {
            index: 2,
            wall_ns: 77,
        });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(
            text,
            "{\"ev\":\"campaign_job_timing\",\"index\":2,\"wall_ns\":77}\n"
        );
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let t = Trace::new(Arc::new(FanoutSink::new(vec![a.clone(), b.clone()])));
        t.emit(|| step(1));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn trace_levels_parse_and_order() {
        assert_eq!(TraceLevel::parse("off"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("metrics"), Some(TraceLevel::Metrics));
        assert_eq!(TraceLevel::parse("events"), Some(TraceLevel::Events));
        assert_eq!(TraceLevel::parse("verbose"), None);
        assert!(TraceLevel::Off < TraceLevel::Metrics);
        assert!(TraceLevel::Metrics < TraceLevel::Events);
    }
}
