//! Cheap counters and histograms derived from the event stream.
//!
//! [`MetricsSink`] folds events into a [`TraceMetrics`] aggregate instead
//! of storing them, so the `metrics` trace level costs O(1) memory no
//! matter how long the run. Every aggregate except the job wall-clock
//! histogram is a pure function of the (deterministic) event stream, and
//! the renderer splits the two accordingly: [`TraceMetrics::render_json`]
//! is golden-safe, [`TraceMetrics::render_timing_json`] is not.

use crate::event::{ServeStatus, TraceEvent, WindowClass};
use crate::sink::TraceSink;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Power-of-two bucketed histogram for non-negative integer samples.
///
/// Bucket `k` counts samples `v` with `floor(log2(v)) == k - 1`, i.e.
/// bucket 0 holds `v == 0`, bucket 1 holds `v == 1`, bucket 2 holds
/// `2..=3`, and so on — 65 buckets cover the whole `u64`/truncated `u128`
/// range with a fixed footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let bucket = (64 - v.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Renders as a compact JSON object with only the non-empty buckets
    /// (`"b<k>"` keys in ascending k), plus count/sum/max — all integers,
    /// so the output is byte-stable.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            r#""count":{},"sum":{},"max":{}"#,
            self.count, self.sum, self.max
        );
        for (k, n) in self.buckets.iter().enumerate().filter(|(_, n)| **n > 0) {
            let _ = write!(s, r#","b{k}":{n}"#);
        }
        s.push('}');
        s
    }
}

/// The aggregate the metrics sink maintains.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceMetrics {
    /// Regulation decisions that incremented the code.
    pub code_increments: u64,
    /// Regulation decisions that decremented the code.
    pub code_decrements: u64,
    /// Regulation decisions that held the code.
    pub code_holds: u64,
    /// Ticks spent in each window class (below, inside, above).
    pub window_ticks: [u64; 3],
    /// Completed dwell intervals per window class: lengths (in ticks) of
    /// maximal runs of consecutive ticks in the same window class.
    pub window_dwell: [Histogram; 3],
    /// Saturation events (code pinned at a range stop).
    pub saturations: u64,
    /// Detector trips observed.
    pub detector_trips: u64,
    /// Detector latencies, in ticks from fault injection to trip.
    pub detector_latency: Histogram,
    /// Safe-state latches observed.
    pub safe_state_entries: u64,
    /// Startup-phase transitions observed.
    pub startup_phases: u64,
    /// Faults injected.
    pub faults_injected: u64,
    /// Campaign jobs completed.
    pub campaign_jobs: u64,
    /// Transient solves reported via [`TraceEvent::SolverStats`].
    pub solver_runs: u64,
    /// Time steps integrated across all reported solves.
    pub solver_steps: u64,
    /// Newton iterations across all reported solves.
    pub solver_newton_iterations: u64,
    /// LU factorizations across all reported solves.
    pub solver_factorizations: u64,
    /// Cached-factorization reuses across all reported solves.
    pub solver_factor_reuses: u64,
    /// Post-warm-up allocations across all reported solves (0 when every
    /// solve took the fast path).
    pub solver_post_warmup_allocations: u64,
    /// Batched-solve lanes across all reported solves (each solve reports
    /// its own batch width; solo solves report 0).
    pub solver_batched_lanes: u64,
    /// Sparse symbolic analyses performed across all reported solves.
    pub solver_symbolic_analyses: u64,
    /// Cached-symbolic-analysis reuses across all reported solves.
    pub solver_symbolic_reuses: u64,
    /// Adaptive steps accepted across all reported solves (0 when every
    /// solve ran on a fixed grid).
    pub solver_steps_accepted: u64,
    /// Adaptive steps rejected across all reported solves.
    pub solver_steps_rejected: u64,
    /// Envelope↔cycle fidelity hand-offs across all reported solves.
    pub solver_mode_switches: u64,
    /// Sum of per-solve envelope-time permille values (divide by
    /// [`TraceMetrics::solver_runs`] for the mean envelope fraction).
    pub solver_envelope_permille: u64,
    /// Requests served by the batch service, by terminal status: ok,
    /// bad_request, timeout, overloaded, shutting_down, error (in the
    /// order of [`crate::event::ServeStatus`]).
    pub serve_requests: [u64; 6],
    /// Per-job wall-clock, nanoseconds (**machine-dependent** — reported
    /// by [`TraceMetrics::render_timing_json`], never the golden stream).
    pub job_wall_ns: Histogram,
    /// Per-request serve latency, nanoseconds (**machine-dependent**).
    pub serve_wall_ns: Histogram,
    /// Queue depth observed at request admission (**machine-dependent**:
    /// depends on arrival timing, so quarantined with the wall-clocks).
    pub serve_queue_depth: Histogram,
    dwell_state: Option<(WindowClass, u64)>,
}

fn window_index(w: WindowClass) -> usize {
    match w {
        WindowClass::Below => 0,
        WindowClass::Inside => 1,
        WindowClass::Above => 2,
    }
}

fn serve_status_index(s: ServeStatus) -> usize {
    match s {
        ServeStatus::Ok => 0,
        ServeStatus::BadRequest => 1,
        ServeStatus::Timeout => 2,
        ServeStatus::Overloaded => 3,
        ServeStatus::ShuttingDown => 4,
        ServeStatus::Error => 5,
    }
}

impl TraceMetrics {
    /// Folds one event into the aggregate.
    pub fn fold(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::CodeStep { action, window, .. } => {
                match action {
                    crate::event::StepAction::Increment => self.code_increments += 1,
                    crate::event::StepAction::Decrement => self.code_decrements += 1,
                    crate::event::StepAction::Hold => self.code_holds += 1,
                }
                self.window_ticks[window_index(*window)] += 1;
                match &mut self.dwell_state {
                    Some((w, run)) if *w == *window => *run += 1,
                    other => {
                        if let Some((w, run)) = other.take() {
                            self.window_dwell[window_index(w)].record(run);
                        }
                        *other = Some((*window, 1));
                    }
                }
            }
            TraceEvent::Saturated { .. } => self.saturations += 1,
            TraceEvent::StartupPhase { .. } => self.startup_phases += 1,
            TraceEvent::FaultInjected { .. } => self.faults_injected += 1,
            TraceEvent::DetectorTrip { latency_ticks, .. } => {
                self.detector_trips += 1;
                self.detector_latency.record(*latency_ticks);
            }
            TraceEvent::SafeStateEntry { .. } => self.safe_state_entries += 1,
            TraceEvent::CampaignJob { .. } => self.campaign_jobs += 1,
            TraceEvent::CampaignJobTiming { wall_ns, .. } => {
                self.job_wall_ns
                    .record(u64::try_from(*wall_ns).unwrap_or(u64::MAX));
            }
            TraceEvent::SolverStats {
                steps,
                newton_iterations,
                factorizations,
                factor_reuses,
                post_warmup_allocations,
                batched_lanes,
                symbolic_analyses,
                symbolic_reuses,
                steps_accepted,
                steps_rejected,
                mode_switches,
                envelope_permille,
            } => {
                self.solver_runs += 1;
                self.solver_steps += steps;
                self.solver_newton_iterations += newton_iterations;
                self.solver_factorizations += factorizations;
                self.solver_factor_reuses += factor_reuses;
                self.solver_post_warmup_allocations += post_warmup_allocations;
                self.solver_batched_lanes += batched_lanes;
                self.solver_symbolic_analyses += symbolic_analyses;
                self.solver_symbolic_reuses += symbolic_reuses;
                self.solver_steps_accepted += steps_accepted;
                self.solver_steps_rejected += steps_rejected;
                self.solver_mode_switches += mode_switches;
                self.solver_envelope_permille += envelope_permille;
            }
            TraceEvent::ServeRequest { status, .. } => {
                self.serve_requests[serve_status_index(*status)] += 1;
            }
            TraceEvent::ServeRequestTiming {
                wall_ns,
                queue_depth,
                ..
            } => {
                self.serve_wall_ns
                    .record(u64::try_from(*wall_ns).unwrap_or(u64::MAX));
                self.serve_queue_depth.record(*queue_depth);
            }
        }
    }

    /// Flushes the open window-dwell run (call once at end of run so the
    /// final dwell interval is counted).
    pub fn finish(&mut self) {
        if let Some((w, run)) = self.dwell_state.take() {
            self.window_dwell[window_index(w)].record(run);
        }
    }

    /// Renders the deterministic aggregates as one byte-stable JSON object
    /// (fixed key order, integer payloads). Excludes the job wall-clock
    /// histogram — see [`TraceMetrics::render_timing_json`].
    pub fn render_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            r#""code_increments":{},"code_decrements":{},"code_holds":{}"#,
            self.code_increments, self.code_decrements, self.code_holds
        );
        let _ = write!(
            s,
            r#","window_ticks":{{"below":{},"inside":{},"above":{}}}"#,
            self.window_ticks[0], self.window_ticks[1], self.window_ticks[2]
        );
        let _ = write!(
            s,
            r#","window_dwell":{{"below":{},"inside":{},"above":{}}}"#,
            self.window_dwell[0].render_json(),
            self.window_dwell[1].render_json(),
            self.window_dwell[2].render_json()
        );
        let _ = write!(
            s,
            r#","saturations":{},"detector_trips":{},"detector_latency_ticks":{},"safe_state_entries":{},"startup_phases":{},"faults_injected":{},"campaign_jobs":{}"#,
            self.saturations,
            self.detector_trips,
            self.detector_latency.render_json(),
            self.safe_state_entries,
            self.startup_phases,
            self.faults_injected,
            self.campaign_jobs
        );
        let _ = write!(
            s,
            r#","solver":{{"runs":{},"steps":{},"newton_iterations":{},"factorizations":{},"factor_reuses":{},"post_warmup_allocations":{},"batched_lanes":{},"symbolic_analyses":{},"symbolic_reuses":{},"steps_accepted":{},"steps_rejected":{},"mode_switches":{},"envelope_permille":{}}}"#,
            self.solver_runs,
            self.solver_steps,
            self.solver_newton_iterations,
            self.solver_factorizations,
            self.solver_factor_reuses,
            self.solver_post_warmup_allocations,
            self.solver_batched_lanes,
            self.solver_symbolic_analyses,
            self.solver_symbolic_reuses,
            self.solver_steps_accepted,
            self.solver_steps_rejected,
            self.solver_mode_switches,
            self.solver_envelope_permille
        );
        let _ = write!(
            s,
            r#","serve_requests":{{"ok":{},"bad_request":{},"timeout":{},"overloaded":{},"shutting_down":{},"error":{}}}"#,
            self.serve_requests[0],
            self.serve_requests[1],
            self.serve_requests[2],
            self.serve_requests[3],
            self.serve_requests[4],
            self.serve_requests[5]
        );
        s.push('}');
        s
    }

    /// Renders the machine-dependent timing aggregates (per-job and
    /// per-request wall-clock buckets, observed queue depths) as a JSON
    /// object for the quarantined timing stream.
    pub fn render_timing_json(&self) -> String {
        format!(
            r#"{{"job_wall_ns":{},"serve_wall_ns":{},"serve_queue_depth":{}}}"#,
            self.job_wall_ns.render_json(),
            self.serve_wall_ns.render_json(),
            self.serve_queue_depth.render_json()
        )
    }
}

/// A sink folding every event into a shared [`TraceMetrics`].
#[derive(Debug, Default)]
pub struct MetricsSink {
    metrics: Mutex<TraceMetrics>,
}

impl MetricsSink {
    /// Creates an empty metrics sink.
    pub fn new() -> Self {
        MetricsSink::default()
    }

    /// Copies out the aggregate, with the open dwell run flushed.
    pub fn snapshot(&self) -> TraceMetrics {
        let mut m = self
            .metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        m.finish();
        m
    }
}

impl TraceSink for MetricsSink {
    fn record(&self, event: &TraceEvent) {
        self.metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .fold(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DetectorId, StepAction};

    fn step(tick: u64, action: StepAction, window: WindowClass) -> TraceEvent {
        TraceEvent::CodeStep {
            tick,
            old: 10,
            new: 10,
            action,
            window,
        }
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1023] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 1023);
        let json = h.render_json();
        // v=0 -> b0, v=1 -> b1, v=2,3 -> b2, v=4,7 -> b3, v=8 -> b4,
        // v=1023 -> b10.
        assert_eq!(
            json,
            r#"{"count":8,"sum":1048,"max":1023,"b0":1,"b1":1,"b2":2,"b3":2,"b4":1,"b10":1}"#
        );
        assert!((h.mean().unwrap() - 131.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_renders_and_has_no_mean() {
        let h = Histogram::new();
        assert_eq!(h.render_json(), r#"{"count":0,"sum":0,"max":0}"#);
        assert!(h.mean().is_none());
    }

    #[test]
    fn dwell_runs_are_flushed_on_transition_and_finish() {
        let mut m = TraceMetrics::default();
        for t in 0..3 {
            m.fold(&step(t, StepAction::Increment, WindowClass::Below));
        }
        for t in 3..8 {
            m.fold(&step(t, StepAction::Hold, WindowClass::Inside));
        }
        // The Below run (3 ticks) is complete; the Inside run is open.
        assert_eq!(m.window_dwell[0].count(), 1);
        assert_eq!(m.window_dwell[0].max(), 3);
        assert_eq!(m.window_dwell[1].count(), 0);
        m.finish();
        assert_eq!(m.window_dwell[1].count(), 1);
        assert_eq!(m.window_dwell[1].max(), 5);
        assert_eq!(m.code_increments, 3);
        assert_eq!(m.code_holds, 5);
        assert_eq!(m.window_ticks, [3, 5, 0]);
    }

    #[test]
    fn metrics_sink_aggregates_and_renders_deterministically() {
        let sink = MetricsSink::new();
        sink.record(&step(1, StepAction::Increment, WindowClass::Below));
        sink.record(&TraceEvent::DetectorTrip {
            tick: 9,
            detector: DetectorId::MissingOscillation,
            latency_ticks: 4,
        });
        sink.record(&TraceEvent::CampaignJob { index: 0, seed: 7 });
        sink.record(&TraceEvent::CampaignJobTiming {
            index: 0,
            wall_ns: 1000,
        });
        let m = sink.snapshot();
        assert_eq!(m.detector_trips, 1);
        assert_eq!(m.campaign_jobs, 1);
        assert_eq!(m.render_json(), sink.snapshot().render_json());
        // Wall-clock data only appears in the timing rendering.
        assert!(!m.render_json().contains("wall"));
        assert!(m.render_timing_json().contains("job_wall_ns"));
        assert_eq!(m.job_wall_ns.count(), 1);
    }

    #[test]
    fn serve_events_fold_into_status_counters_and_timing_histograms() {
        use crate::event::ServeKind;
        let mut m = TraceMetrics::default();
        for (i, status) in [ServeStatus::Ok, ServeStatus::Ok, ServeStatus::Timeout]
            .into_iter()
            .enumerate()
        {
            m.fold(&TraceEvent::ServeRequest {
                index: i as u64,
                kind: ServeKind::Scenario,
                digest: 42,
                status,
            });
        }
        m.fold(&TraceEvent::ServeRequestTiming {
            index: 0,
            wall_ns: 1500,
            queue_depth: 3,
        });
        assert_eq!(m.serve_requests, [2, 0, 1, 0, 0, 0]);
        assert!(m.render_json().contains(
            r#""serve_requests":{"ok":2,"bad_request":0,"timeout":1,"overloaded":0,"shutting_down":0,"error":0}"#
        ));
        // Latency and queue depth are quarantined in the timing stream.
        assert!(!m.render_json().contains("serve_wall_ns"));
        let timing = m.render_timing_json();
        assert!(timing.contains("serve_wall_ns"));
        assert!(timing.contains("serve_queue_depth"));
        assert_eq!(m.serve_wall_ns.count(), 1);
        assert_eq!(m.serve_queue_depth.max(), 3);
    }

    #[test]
    fn solver_stats_fold_into_counters() {
        let mut m = TraceMetrics::default();
        for _ in 0..2 {
            m.fold(&TraceEvent::SolverStats {
                steps: 100,
                newton_iterations: 110,
                factorizations: 1,
                factor_reuses: 99,
                post_warmup_allocations: 0,
                batched_lanes: 8,
                symbolic_analyses: 1,
                symbolic_reuses: 0,
                steps_accepted: 80,
                steps_rejected: 5,
                mode_switches: 6,
                envelope_permille: 950,
            });
        }
        assert_eq!(m.solver_runs, 2);
        assert_eq!(m.solver_steps, 200);
        assert_eq!(m.solver_newton_iterations, 220);
        assert_eq!(m.solver_factorizations, 2);
        assert_eq!(m.solver_factor_reuses, 198);
        assert_eq!(m.solver_post_warmup_allocations, 0);
        assert_eq!(m.solver_batched_lanes, 16);
        assert_eq!(m.solver_symbolic_analyses, 2);
        assert_eq!(m.solver_symbolic_reuses, 0);
        assert_eq!(m.solver_steps_accepted, 160);
        assert_eq!(m.solver_steps_rejected, 10);
        assert_eq!(m.solver_mode_switches, 12);
        assert_eq!(m.solver_envelope_permille, 1900);
        assert!(m.render_json().contains(
            r#""solver":{"runs":2,"steps":200,"newton_iterations":220,"factorizations":2,"factor_reuses":198,"post_warmup_allocations":0,"batched_lanes":16,"symbolic_analyses":2,"symbolic_reuses":0,"steps_accepted":160,"steps_rejected":10,"mode_switches":12,"envelope_permille":1900}"#
        ));
    }
}
