//! Typed structured trace events and their byte-stable JSONL rendering.
//!
//! Every event is a plain value of integers and closed enums — no floats,
//! no strings built at runtime — so a rendered stream is a pure function
//! of the event sequence. The only machine-dependent payload is
//! [`TraceEvent::CampaignJobTiming`], which is excluded from the *golden*
//! stream (see [`TraceEvent::is_golden`]) and quarantined in a separate
//! timing stream, the same split `repro`'s `campaigns.json` already uses
//! for wall-clock statistics.

use std::fmt::Write as _;

/// One regulation decision, as recorded in a [`TraceEvent::CodeStep`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepAction {
    /// Code incremented by one.
    Increment,
    /// Code decremented by one.
    Decrement,
    /// Code held.
    Hold,
}

impl StepAction {
    /// Stable lower-case label used in the JSONL stream.
    pub fn label(self) -> &'static str {
        match self {
            StepAction::Increment => "increment",
            StepAction::Decrement => "decrement",
            StepAction::Hold => "hold",
        }
    }
}

/// Window-comparator classification the decision acted on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowClass {
    /// Amplitude below the window.
    Below,
    /// Amplitude inside the window.
    Inside,
    /// Amplitude above the window.
    Above,
}

impl WindowClass {
    /// Stable lower-case label used in the JSONL stream.
    pub fn label(self) -> &'static str {
        match self {
            WindowClass::Below => "below",
            WindowClass::Inside => "inside",
            WindowClass::Above => "above",
        }
    }
}

/// Which on-chip failure detector an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorId {
    /// Missing-oscillation time-out.
    MissingOscillation,
    /// Low-amplitude threshold (or regulation-code saturation).
    LowAmplitude,
    /// LC1/LC2 asymmetry by synchronous rectification.
    Asymmetry,
}

impl DetectorId {
    /// Stable lower-case label used in the JSONL stream.
    pub fn label(self) -> &'static str {
        match self {
            DetectorId::MissingOscillation => "missing_oscillation",
            DetectorId::LowAmplitude => "low_amplitude",
            DetectorId::Asymmetry => "asymmetry",
        }
    }
}

/// Startup-sequencer phase a [`TraceEvent::StartupPhase`] entered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseId {
    /// POR released; code forced to the preset.
    PorPreset,
    /// NVM value loaded; code forced to the stored value.
    NvmLoaded,
    /// Regulation loop owns the code.
    Regulating,
}

impl PhaseId {
    /// Stable lower-case label used in the JSONL stream.
    pub fn label(self) -> &'static str {
        match self {
            PhaseId::PorPreset => "por_preset",
            PhaseId::NvmLoaded => "nvm_loaded",
            PhaseId::Regulating => "regulating",
        }
    }
}

/// Request kind handled by the batch simulation service (`lcosc-serve`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServeKind {
    /// Circuit-deck transient analysis.
    Transient,
    /// Fault-injection scenario.
    Scenario,
    /// FMEA / yield campaign.
    Campaign,
    /// Static safety proof (`A0xx` obligations) of a preset.
    Prove,
    /// Server counter dump.
    Stats,
    /// Graceful-drain trigger.
    Shutdown,
    /// Unparseable or unrecognized request.
    Invalid,
}

impl ServeKind {
    /// Stable lower-case label used in the JSONL stream.
    pub fn label(self) -> &'static str {
        match self {
            ServeKind::Transient => "transient",
            ServeKind::Scenario => "scenario",
            ServeKind::Campaign => "campaign",
            ServeKind::Prove => "prove",
            ServeKind::Stats => "stats",
            ServeKind::Shutdown => "shutdown",
            ServeKind::Invalid => "invalid",
        }
    }
}

/// Terminal status of one served request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServeStatus {
    /// Request completed and a result was returned.
    Ok,
    /// The request line was malformed or semantically invalid.
    BadRequest,
    /// The request exceeded its compute deadline.
    Timeout,
    /// The bounded queue was full; the request was not admitted.
    Overloaded,
    /// The server was draining and refused the request.
    ShuttingDown,
    /// The simulation itself returned an error.
    Error,
}

impl ServeStatus {
    /// Stable lower-case label used in the JSONL stream (and as the
    /// `"status"` field of protocol responses).
    pub fn label(self) -> &'static str {
        match self {
            ServeStatus::Ok => "ok",
            ServeStatus::BadRequest => "bad_request",
            ServeStatus::Timeout => "timeout",
            ServeStatus::Overloaded => "overloaded",
            ServeStatus::ShuttingDown => "shutting_down",
            ServeStatus::Error => "error",
        }
    }
}

/// A structured trace event.
///
/// `tick` is the regulation-tick counter of the emitting simulation (0
/// before the first tick completes), so event ordering is expressed in the
/// loop's own discrete time rather than in floating-point seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// One regulation-FSM decision (§4): emitted every tick, including
    /// holds, so window-dwell statistics can be derived from the stream.
    CodeStep {
        /// Tick index the decision completed on (1-based, `fsm.ticks()`).
        tick: u64,
        /// Code before the decision.
        old: u8,
        /// Code after the decision.
        new: u8,
        /// Decision taken.
        action: StepAction,
        /// Window state the decision acted on.
        window: WindowClass,
    },
    /// The loop hit a code-range stop while still being pushed past it.
    Saturated {
        /// Tick index.
        tick: u64,
        /// `true` = stuck at the top code, `false` = at the bottom.
        high: bool,
    },
    /// Startup sequencing entered a new phase with a forced code.
    StartupPhase {
        /// Tick index (0 during the first tick).
        tick: u64,
        /// Phase entered.
        phase: PhaseId,
        /// Code forced by the phase.
        code: u8,
    },
    /// A fault was injected into the simulation.
    FaultInjected {
        /// Tick index.
        tick: u64,
    },
    /// A §5 failure detector fired.
    DetectorTrip {
        /// Tick index at evaluation time.
        tick: u64,
        /// Which detector.
        detector: DetectorId,
        /// Ticks elapsed between the fault injection and the detection.
        latency_ticks: u64,
    },
    /// The safe-state controller latched its reaction.
    SafeStateEntry {
        /// Tick index.
        tick: u64,
        /// Detector that won the latch.
        detector: DetectorId,
    },
    /// A campaign job completed (deterministic part: index and seed only).
    CampaignJob {
        /// Job index in the campaign's job list.
        index: u64,
        /// Deterministic per-job RNG seed.
        seed: u64,
    },
    /// Wall-clock of a campaign job. **Machine-dependent** — never part of
    /// the golden stream.
    CampaignJobTiming {
        /// Job index in the campaign's job list.
        index: u64,
        /// Wall-clock duration of the job, nanoseconds.
        wall_ns: u128,
    },
    /// Work counters of one transient solve (PR 4 solver fast path).
    /// Deterministic: pure function of deck, options and solver path.
    SolverStats {
        /// Time steps integrated.
        steps: u64,
        /// Total Newton iterations across all steps.
        newton_iterations: u64,
        /// LU factorizations performed.
        factorizations: u64,
        /// Steps that reused a cached factorization.
        factor_reuses: u64,
        /// Stepping-machinery heap allocations performed after the first
        /// time step (0 on the fast path).
        post_warmup_allocations: u64,
        /// Lanes in the batched solve that produced this result (0 when
        /// the deck was solved on its own). Work accounting only — lane
        /// results are bit-identical to solo solves by contract.
        batched_lanes: u64,
        /// Sparse symbolic analyses performed (0 on dense paths and on
        /// sparse runs served by the symbolic cache).
        symbolic_analyses: u64,
        /// Sparse runs that reused a cached symbolic analysis.
        symbolic_reuses: u64,
        /// Adaptive steps accepted by the LTE controller (0 on fixed-grid
        /// runs).
        steps_accepted: u64,
        /// Adaptive steps rejected by the LTE controller (0 on fixed-grid
        /// runs).
        steps_rejected: u64,
        /// Envelope↔cycle fidelity hand-offs performed by the multi-rate
        /// engine (0 on single-fidelity runs).
        mode_switches: u64,
        /// Fraction of simulated time spent in envelope fidelity, in
        /// permille (integer so the stream stays byte-stable; 0 on
        /// single-fidelity runs).
        envelope_permille: u64,
    },
    /// One request served by the batch simulation service, recorded in
    /// completion-index order. Deterministic: the payload is the request's
    /// content digest and its terminal status, never wall-clock data.
    ServeRequest {
        /// Completion index (0-based order in which responses finished).
        index: u64,
        /// Request kind.
        kind: ServeKind,
        /// Content digest of the canonical request (cache key).
        digest: u64,
        /// Terminal status.
        status: ServeStatus,
    },
    /// Wall-clock and load data of one served request.
    /// **Machine-dependent** — never part of the golden stream.
    ServeRequestTiming {
        /// Completion index (matches the paired [`TraceEvent::ServeRequest`]).
        index: u64,
        /// End-to-end wall-clock latency of the request, nanoseconds.
        wall_ns: u128,
        /// Queue depth observed at admission time.
        queue_depth: u64,
    },
}

impl TraceEvent {
    /// Whether the event is deterministic (bit-identical for every thread
    /// count and machine) and therefore belongs in the golden stream.
    /// Only [`TraceEvent::CampaignJobTiming`] and
    /// [`TraceEvent::ServeRequestTiming`] carry wall-clock data.
    pub fn is_golden(&self) -> bool {
        !matches!(
            self,
            TraceEvent::CampaignJobTiming { .. } | TraceEvent::ServeRequestTiming { .. }
        )
    }

    /// Renders the event as one byte-stable JSON line (no trailing
    /// newline). Keys are emitted in a fixed order and all payloads are
    /// integers or closed-enum labels, so the output is a pure function of
    /// the event value.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        match self {
            TraceEvent::CodeStep {
                tick,
                old,
                new,
                action,
                window,
            } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"code_step","tick":{tick},"old":{old},"new":{new},"action":"{}","window":"{}"}}"#,
                    action.label(),
                    window.label()
                );
            }
            TraceEvent::Saturated { tick, high } => {
                let _ = write!(s, r#"{{"ev":"saturated","tick":{tick},"high":{high}}}"#);
            }
            TraceEvent::StartupPhase { tick, phase, code } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"startup_phase","tick":{tick},"phase":"{}","code":{code}}}"#,
                    phase.label()
                );
            }
            TraceEvent::FaultInjected { tick } => {
                let _ = write!(s, r#"{{"ev":"fault_injected","tick":{tick}}}"#);
            }
            TraceEvent::DetectorTrip {
                tick,
                detector,
                latency_ticks,
            } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"detector_trip","tick":{tick},"detector":"{}","latency_ticks":{latency_ticks}}}"#,
                    detector.label()
                );
            }
            TraceEvent::SafeStateEntry { tick, detector } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"safe_state_entry","tick":{tick},"detector":"{}"}}"#,
                    detector.label()
                );
            }
            TraceEvent::CampaignJob { index, seed } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"campaign_job","index":{index},"seed":{seed}}}"#
                );
            }
            TraceEvent::CampaignJobTiming { index, wall_ns } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"campaign_job_timing","index":{index},"wall_ns":{wall_ns}}}"#
                );
            }
            TraceEvent::SolverStats {
                steps,
                newton_iterations,
                factorizations,
                factor_reuses,
                post_warmup_allocations,
                batched_lanes,
                symbolic_analyses,
                symbolic_reuses,
                steps_accepted,
                steps_rejected,
                mode_switches,
                envelope_permille,
            } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"solver_stats","steps":{steps},"newton_iterations":{newton_iterations},"factorizations":{factorizations},"factor_reuses":{factor_reuses},"post_warmup_allocations":{post_warmup_allocations},"batched_lanes":{batched_lanes},"symbolic_analyses":{symbolic_analyses},"symbolic_reuses":{symbolic_reuses},"steps_accepted":{steps_accepted},"steps_rejected":{steps_rejected},"mode_switches":{mode_switches},"envelope_permille":{envelope_permille}}}"#
                );
            }
            TraceEvent::ServeRequest {
                index,
                kind,
                digest,
                status,
            } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"serve_request","index":{index},"kind":"{}","digest":{digest},"status":"{}"}}"#,
                    kind.label(),
                    status.label()
                );
            }
            TraceEvent::ServeRequestTiming {
                index,
                wall_ns,
                queue_depth,
            } => {
                let _ = write!(
                    s,
                    r#"{{"ev":"serve_request_timing","index":{index},"wall_ns":{wall_ns},"queue_depth":{queue_depth}}}"#
                );
            }
        }
        s
    }
}

/// Renders a slice of events as a JSONL document (one event per line,
/// trailing newline), keeping only events matching `filter`.
pub fn render_jsonl(events: &[TraceEvent], filter: impl Fn(&TraceEvent) -> bool) -> String {
    let mut out = String::new();
    for ev in events.iter().filter(|e| filter(e)) {
        out.push_str(&ev.to_jsonl());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_step_renders_fixed_key_order() {
        let ev = TraceEvent::CodeStep {
            tick: 7,
            old: 60,
            new: 61,
            action: StepAction::Increment,
            window: WindowClass::Below,
        };
        assert_eq!(
            ev.to_jsonl(),
            r#"{"ev":"code_step","tick":7,"old":60,"new":61,"action":"increment","window":"below"}"#
        );
    }

    #[test]
    fn timing_is_the_only_non_golden_event() {
        let golden = [
            TraceEvent::CodeStep {
                tick: 1,
                old: 0,
                new: 1,
                action: StepAction::Increment,
                window: WindowClass::Below,
            },
            TraceEvent::Saturated {
                tick: 1,
                high: true,
            },
            TraceEvent::StartupPhase {
                tick: 0,
                phase: PhaseId::PorPreset,
                code: 105,
            },
            TraceEvent::FaultInjected { tick: 3 },
            TraceEvent::DetectorTrip {
                tick: 5,
                detector: DetectorId::LowAmplitude,
                latency_ticks: 2,
            },
            TraceEvent::SafeStateEntry {
                tick: 5,
                detector: DetectorId::Asymmetry,
            },
            TraceEvent::CampaignJob { index: 0, seed: 9 },
            TraceEvent::SolverStats {
                steps: 10,
                newton_iterations: 11,
                factorizations: 1,
                factor_reuses: 9,
                post_warmup_allocations: 0,
                batched_lanes: 4,
                symbolic_analyses: 1,
                symbolic_reuses: 0,
                steps_accepted: 8,
                steps_rejected: 2,
                mode_switches: 4,
                envelope_permille: 900,
            },
            TraceEvent::ServeRequest {
                index: 0,
                kind: ServeKind::Scenario,
                digest: 0xdead_beef,
                status: ServeStatus::Ok,
            },
        ];
        for ev in golden {
            assert!(ev.is_golden(), "{ev:?}");
        }
        assert!(!TraceEvent::CampaignJobTiming {
            index: 0,
            wall_ns: 1
        }
        .is_golden());
        assert!(!TraceEvent::ServeRequestTiming {
            index: 0,
            wall_ns: 1,
            queue_depth: 3
        }
        .is_golden());
    }

    #[test]
    fn serve_request_renders_fixed_key_order() {
        let ev = TraceEvent::ServeRequest {
            index: 4,
            kind: ServeKind::Transient,
            digest: 1234567,
            status: ServeStatus::Timeout,
        };
        assert_eq!(
            ev.to_jsonl(),
            r#"{"ev":"serve_request","index":4,"kind":"transient","digest":1234567,"status":"timeout"}"#
        );
        let timing = TraceEvent::ServeRequestTiming {
            index: 4,
            wall_ns: 987,
            queue_depth: 2,
        };
        assert_eq!(
            timing.to_jsonl(),
            r#"{"ev":"serve_request_timing","index":4,"wall_ns":987,"queue_depth":2}"#
        );
    }

    #[test]
    fn rendering_is_reproducible() {
        let ev = TraceEvent::DetectorTrip {
            tick: 150,
            detector: DetectorId::MissingOscillation,
            latency_ticks: 150,
        };
        assert_eq!(ev.to_jsonl(), ev.to_jsonl());
        assert_eq!(
            ev.to_jsonl(),
            r#"{"ev":"detector_trip","tick":150,"detector":"missing_oscillation","latency_ticks":150}"#
        );
    }

    #[test]
    fn render_jsonl_filters_and_terminates_lines() {
        let evs = [
            TraceEvent::CampaignJob { index: 0, seed: 1 },
            TraceEvent::CampaignJobTiming {
                index: 0,
                wall_ns: 42,
            },
        ];
        let golden = render_jsonl(&evs, TraceEvent::is_golden);
        assert_eq!(golden, "{\"ev\":\"campaign_job\",\"index\":0,\"seed\":1}\n");
        let timing = render_jsonl(&evs, |e| !e.is_golden());
        assert!(timing.contains("wall_ns"));
        assert!(timing.ends_with('\n'));
    }

    #[test]
    fn labels_are_lower_snake_case() {
        for l in [
            StepAction::Increment.label(),
            WindowClass::Inside.label(),
            DetectorId::MissingOscillation.label(),
            PhaseId::NvmLoaded.label(),
            ServeKind::Transient.label(),
            ServeKind::Prove.label(),
            ServeStatus::BadRequest.label(),
        ] {
            assert!(l.chars().all(|c| c.is_ascii_lowercase() || c == '_'), "{l}");
        }
    }
}
