//! # lcosc-trace — deterministic observability for the lcosc workspace
//!
//! The paper's amplitude-regulation loop (§4) and failure detectors (§5)
//! are temporal state machines: every reproduced claim — "the code never
//! jumps across the window", "missing oscillation trips within the
//! time-out" — is an assertion about *event ordering over time*. This
//! crate gives the workspace structured visibility into those events
//! without giving up the determinism the campaign/golden layers depend
//! on:
//!
//! - [`TraceEvent`] — typed structured events ([`TraceEvent::CodeStep`],
//!   [`TraceEvent::DetectorTrip`], [`TraceEvent::SafeStateEntry`],
//!   [`TraceEvent::StartupPhase`], [`TraceEvent::CampaignJob`], ...),
//!   all integers and closed enums, no runtime-built strings;
//! - [`Trace`] — the cheap cloneable handle instrumented components carry.
//!   The disabled default makes every [`Trace::emit`] a single branch and
//!   never constructs the event;
//! - sinks — unbounded [`MemorySink`], bounded [`RingSink`] (flight
//!   recorder), streaming [`JsonlSink`], broadcasting [`FanoutSink`], and
//!   the aggregate-only [`MetricsSink`] (counters + power-of-two
//!   [`Histogram`]s);
//! - byte-stable JSONL rendering with a hard golden/timing split:
//!   [`TraceEvent::is_golden`] partitions the stream so wall-clock data
//!   ([`TraceEvent::CampaignJobTiming`]) never contaminates the stream
//!   that is byte-compared across thread counts — the same quarantine
//!   `repro` already applies to `campaigns.json`.
//!
//! The crate is dependency-free (`std` only) and sits below every other
//! workspace crate; `lcosc-core`, `lcosc-safety` and `lcosc-campaign` map
//! their domain types onto the closed enums here.
//!
//! ```
//! use lcosc_trace::{MemorySink, StepAction, Trace, TraceEvent, WindowClass};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let trace = Trace::new(sink.clone());
//! trace.emit(|| TraceEvent::CodeStep {
//!     tick: 1,
//!     old: 60,
//!     new: 61,
//!     action: StepAction::Increment,
//!     window: WindowClass::Below,
//! });
//! assert_eq!(sink.len(), 1);
//! // Disabled tracing costs one branch and never builds the event:
//! Trace::off().emit(|| unreachable!());
//! ```

#![warn(missing_docs)]

mod event;
mod metrics;
mod sink;

pub use event::{
    render_jsonl, DetectorId, PhaseId, ServeKind, ServeStatus, StepAction, TraceEvent, WindowClass,
};
pub use metrics::{Histogram, MetricsSink, TraceMetrics};
pub use sink::{
    FanoutSink, JsonlSink, MemorySink, NullSink, RingSink, Trace, TraceLevel, TraceSink,
};
